"""Redundant Residue Number System (RRNS) error detection and correction.

Section VI-E of the paper points to RRNS as the fault-tolerance extension:
augmenting the ``n`` information moduli with ``r`` redundant moduli lets the
system *detect* up to ``r`` corrupted residue channels and *correct* up to
``floor(r / 2)`` of them by majority-logic decoding — every subset of ``n``
channels reconstructs a candidate value, and the candidate agreeing with the
most channels wins.

This module implements that scheme generically so that noisy photonic
channels (see :mod:`repro.photonic.noise`) can be plugged in front of it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .conversion import forward_convert, to_signed
from .moduli import ModuliSet

__all__ = ["RRNSCodec", "DecodeResult"]


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of an RRNS decode.

    Attributes
    ----------
    value:
        Reconstructed representative in ``[0, M_info)`` (``None`` when
        decoding failed, i.e. no candidate was consistent enough).
    agreeing_channels:
        Number of residue channels consistent with ``value``.
    corrected_channels:
        Indices of channels whose received residue disagreed with ``value``
        (the errors that were corrected).
    """

    value: Optional[int]
    agreeing_channels: int
    corrected_channels: Tuple[int, ...]

    @property
    def ok(self) -> bool:
        return self.value is not None


class RRNSCodec:
    """Encoder/decoder for a redundant RNS code.

    Parameters
    ----------
    info_moduli:
        The ``n`` information moduli; their product bounds the legal range.
    redundant_moduli:
        The ``r`` redundant moduli.  All ``n + r`` moduli must be pairwise
        co-prime, and each redundant modulus must exceed every information
        modulus (the standard RRNS validity condition that keeps any
        ``n``-subset's range at least ``M_info``).
    """

    def __init__(self, info_moduli: Iterable[int], redundant_moduli: Iterable[int]):
        info = tuple(sorted(int(m) for m in info_moduli))
        red = tuple(sorted(int(m) for m in redundant_moduli))
        if not red:
            raise ValueError("RRNS needs at least one redundant modulus")
        if max(info) >= min(red):
            raise ValueError(
                "every redundant modulus must exceed every information modulus; "
                f"got info={info}, redundant={red}"
            )
        self.full_set = ModuliSet(info + red)
        self.info_set = ModuliSet(info)
        self.info_moduli = info
        self.redundant_moduli = red
        # Positions of the information/redundant moduli in the (sorted)
        # full set — sorting keeps ModuliSet layouts deterministic.
        full = self.full_set.moduli
        self._index_of = {m: i for i, m in enumerate(full)}

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self.info_moduli)

    @property
    def r(self) -> int:
        return len(self.redundant_moduli)

    @property
    def legal_range(self) -> int:
        """Values must lie in ``[0, M_info)`` to be a legal codeword."""
        return self.info_set.dynamic_range

    def max_correctable(self) -> int:
        """Up to ``floor(r / 2)`` channel errors are correctable."""
        return self.r // 2

    # ------------------------------------------------------------------
    def encode(self, values) -> np.ndarray:
        """Encode non-negative representatives in ``[0, M_info)``.

        Returns residues over all ``n + r`` channels (full-set order).
        """
        arr = np.asarray(values)
        if arr.size and (int(np.min(arr)) < 0 or int(np.max(arr)) >= self.legal_range):
            raise OverflowError(
                f"values must be in [0, {self.legal_range}) for a legal codeword"
            )
        return forward_convert(arr, self.full_set)

    def decode_scalar(self, residues: Sequence[int]) -> DecodeResult:
        """Majority-logic decode of one received residue vector.

        Every ``n``-subset of channels proposes a CRT reconstruction; a
        proposal is accepted when (a) it is a legal codeword
        (``< M_info``) and (b) at least ``n + ceil(r/2)`` channels agree
        with it — which uniquely identifies the codeword when at most
        ``floor(r/2)`` channels are corrupted.
        """
        res = [int(v) for v in residues]
        full = self.full_set.moduli
        if len(res) != len(full):
            raise ValueError(f"expected {len(full)} residues, got {len(res)}")
        needed = self.n + (self.r + 1) // 2
        best: Optional[DecodeResult] = None
        for subset in itertools.combinations(range(len(full)), self.n):
            sub_mods = ModuliSet(tuple(full[i] for i in subset))
            sub_res = np.array([[res[i]] for i in subset], dtype=np.int64)
            candidate = int(np.asarray(_crt(sub_res, sub_mods))[0])
            if candidate >= self.legal_range:
                continue
            agree = [i for i, m in enumerate(full) if candidate % m == res[i]]
            if len(agree) >= needed:
                wrong = tuple(i for i in range(len(full)) if i not in agree)
                cand_result = DecodeResult(candidate, len(agree), wrong)
                if best is None or cand_result.agreeing_channels > best.agreeing_channels:
                    best = cand_result
        if best is None:
            return DecodeResult(None, 0, ())
        return best

    def decode_scalar_signed(self, residues: Sequence[int]) -> DecodeResult:
        """Majority-logic decode for *signed* values in ``[-ψ, ψ]``.

        Hardware computes residues of the true signed integer ``y``
        directly (``y mod m_i``), so the full-set representative is
        ``y mod M_full`` and legal codewords occupy ``[0, ψ]`` together
        with ``[M_sub - ψ, M_sub)`` for every reconstruction modulus.
        The returned ``value`` is the signed integer itself.
        """
        res = [int(v) for v in residues]
        full = self.full_set.moduli
        if len(res) != len(full):
            raise ValueError(f"expected {len(full)} residues, got {len(res)}")
        psi = self.info_set.psi
        needed = self.n + (self.r + 1) // 2
        best: Optional[DecodeResult] = None
        for subset in itertools.combinations(range(len(full)), self.n):
            sub_mods = ModuliSet(tuple(full[i] for i in subset))
            sub_res = np.array([[res[i]] for i in subset], dtype=np.int64)
            candidate = int(np.asarray(_crt(sub_res, sub_mods))[0])
            big_m = sub_mods.dynamic_range
            if candidate <= psi:
                signed = candidate
            elif candidate >= big_m - psi:
                signed = candidate - big_m
            else:
                continue
            agree = [i for i, m in enumerate(full) if signed % m == res[i]]
            if len(agree) >= needed:
                wrong = tuple(i for i in range(len(full)) if i not in agree)
                cand = DecodeResult(signed, len(agree), wrong)
                if best is None or cand.agreeing_channels > best.agreeing_channels:
                    best = cand
        if best is None:
            return DecodeResult(None, 0, ())
        return best

    def decode(self, residues) -> Tuple[np.ndarray, List[DecodeResult]]:
        """Vector decode; returns reconstructed values and per-element results.

        Failed elements are returned as ``-1`` in the value array.
        """
        res = np.asarray(residues)
        flat = res.reshape(res.shape[0], -1)
        out = np.empty(flat.shape[1], dtype=np.int64)
        details: List[DecodeResult] = []
        for j in range(flat.shape[1]):
            d = self.decode_scalar(flat[:, j])
            details.append(d)
            out[j] = d.value if d.ok else -1
        return out.reshape(res.shape[1:]), details

    def decode_signed(self, residues) -> Tuple[np.ndarray, List[DecodeResult]]:
        """Decode then map to the signed range of the information set."""
        values, details = self.decode(residues)
        ok = values >= 0
        signed = np.where(
            ok, np.asarray(to_signed(np.abs(values), self.info_set)), values
        )
        return signed, details

    # ------------------------------------------------------------------
    def detect(self, residues: Sequence[int]) -> bool:
        """Pure detection: True when the received vector is NOT a legal
        codeword (i.e. some channel is corrupted)."""
        res = [int(v) for v in residues]
        candidate = int(np.asarray(_crt(np.array([[v] for v in res]), self.full_set))[0])
        if candidate < self.legal_range:
            return False
        return True


def _crt(res: np.ndarray, mset: ModuliSet) -> np.ndarray:
    # Local import indirection keeps rrns importable without cycles.
    from .conversion import crt_reverse

    return crt_reverse(res, mset)
