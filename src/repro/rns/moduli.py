"""Moduli sets for the Residue Number System.

A Residue Number System is defined by a set of pairwise co-prime moduli
``{m_1, ..., m_n}``.  An integer ``X`` in the dynamic range ``[0, M)`` with
``M = prod(m_i)`` is represented uniquely by its residues ``x_i = X mod m_i``.

Mirage (Section IV-B) uses the *special* three-moduli set
``{2^k - 1, 2^k, 2^k + 1}`` because modulo and reverse-conversion operations
reduce to shifts and adds, keeping the digital conversion circuitry off the
critical path.  This module provides a general :class:`ModuliSet` plus the
special-set constructor and the Eq. 13 sizing rule that links the moduli set
to a Block Floating Point configuration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import reduce
from typing import Iterable, Sequence, Tuple

import numpy as np

__all__ = [
    "ModuliSet",
    "special_moduli_set",
    "required_output_bits",
    "choose_k_min",
    "pairwise_coprime",
]


def _gcd_all_pairs(moduli: Sequence[int]) -> Iterable[Tuple[int, int, int]]:
    for i in range(len(moduli)):
        for j in range(i + 1, len(moduli)):
            yield moduli[i], moduli[j], math.gcd(moduli[i], moduli[j])


def pairwise_coprime(moduli: Sequence[int]) -> bool:
    """Return True when every pair of moduli has gcd 1."""
    return all(g == 1 for _, _, g in _gcd_all_pairs(moduli))


def required_output_bits(bm: int, g: int) -> int:
    """Bits of information in a BFP dot product output (paper Eq. 13 RHS).

    A dot product between two ``g``-long vectors of ``(bm + 1)``-bit signed
    integers (sign + ``bm`` mantissa bits) produces
    ``2 * (bm + 1) + log2(g) - 1`` bits.

    Parameters
    ----------
    bm:
        Number of mantissa bits in the BFP format.
    g:
        Group size, i.e. the dot-product length.
    """
    if bm < 1:
        raise ValueError(f"bm must be >= 1, got {bm}")
    if g < 1:
        raise ValueError(f"g must be >= 1, got {g}")
    return 2 * (bm + 1) + math.ceil(math.log2(g)) - 1


@dataclass(frozen=True)
class ModuliSet:
    """A validated set of pairwise co-prime RNS moduli.

    Attributes
    ----------
    moduli:
        The co-prime moduli, stored in ascending order.
    """

    moduli: Tuple[int, ...]
    _mi: Tuple[int, ...] = field(init=False, repr=False, compare=False)
    _ti: Tuple[int, ...] = field(init=False, repr=False, compare=False)
    _mr_inv: Tuple[Tuple[int, ...], ...] = field(init=False, repr=False, compare=False)

    def __init__(self, moduli: Iterable[int]):
        mods = tuple(sorted(int(m) for m in moduli))
        if len(mods) == 0:
            raise ValueError("a ModuliSet needs at least one modulus")
        if any(m < 2 for m in mods):
            raise ValueError(f"all moduli must be >= 2, got {mods}")
        if len(set(mods)) != len(mods):
            raise ValueError(f"moduli must be distinct, got {mods}")
        if not pairwise_coprime(mods):
            bad = [(a, b) for a, b, g in _gcd_all_pairs(mods) if g != 1]
            raise ValueError(f"moduli must be pairwise co-prime; offending pairs: {bad}")
        object.__setattr__(self, "moduli", mods)
        big_m = reduce(lambda a, b: a * b, mods, 1)
        mi = tuple(big_m // m for m in mods)
        ti = tuple(pow(mi_k % m, -1, m) for mi_k, m in zip(mi, mods))
        object.__setattr__(self, "_mi", mi)
        object.__setattr__(self, "_ti", ti)
        mr_inv = tuple(
            tuple(
                pow(mods[i] % mods[j], -1, mods[j]) if j > i else 0
                for j in range(len(mods))
            )
            for i in range(len(mods))
        )
        object.__setattr__(self, "_mr_inv", mr_inv)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of moduli."""
        return len(self.moduli)

    @property
    def dynamic_range(self) -> int:
        """``M = prod(m_i)`` — the count of uniquely representable integers."""
        return reduce(lambda a, b: a * b, self.moduli, 1)

    @property
    def dynamic_range_bits(self) -> float:
        """``log2(M)``."""
        return math.log2(self.dynamic_range)

    @property
    def psi(self) -> int:
        """Half range ``ψ = floor((M - 1) / 2)`` used for signed mapping.

        Signed values live in ``[-ψ, M - 1 - ψ]`` (symmetric around zero up
        to one unit for even ``M``).
        """
        return (self.dynamic_range - 1) // 2

    @property
    def crt_weights(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """``(M_i, T_i)`` pairs for the Chinese Remainder Theorem (Eq. 5)."""
        return self._mi, self._ti

    @property
    def mixed_radix_inverses(self) -> Tuple[Tuple[int, ...], ...]:
        """Precomputed ``|m_i^{-1}|_{m_j}`` table (``j > i``) for mixed-radix
        conversion; entries with ``j <= i`` are unused and stored as 0."""
        return self._mr_inv

    def residue_bits(self) -> Tuple[int, ...]:
        """Bits needed per residue channel: ``ceil(log2(m_i))``."""
        return tuple(math.ceil(math.log2(m)) for m in self.moduli)

    def max_residue_bits(self) -> int:
        """The DAC/ADC precision implied by the largest modulus."""
        return max(self.residue_bits())

    # ------------------------------------------------------------------
    # Range checks
    # ------------------------------------------------------------------
    def supports_signed(self, value: int) -> bool:
        """True when a signed integer fits in ``[-ψ, M - 1 - ψ]``."""
        return -self.psi <= value <= self.dynamic_range - 1 - self.psi

    def supports_bfp(self, bm: int, g: int) -> bool:
        """Eq. 13: ``log2(M) >= 2 (bm + 1) + log2(g) - 1``.

        Guarantees that a ``g``-long dot product of BFP mantissae never
        overflows the RNS range.
        """
        return self.dynamic_range_bits >= required_output_bits(bm, g)

    def __iter__(self):
        return iter(self.moduli)

    def __len__(self) -> int:
        return self.n

    def as_array(self) -> np.ndarray:
        """Moduli as an int64 numpy vector (for vectorised kernels)."""
        return np.array(self.moduli, dtype=np.int64)


def special_moduli_set(k: int) -> ModuliSet:
    """The Mirage special set ``{2^k - 1, 2^k, 2^k + 1}`` (Section IV-B).

    The three members are pairwise co-prime for any ``k >= 2`` and give
    ``M = 2^{3k} - 2^k``, i.e. close to ``3k`` bits of dynamic range, while
    forward/reverse conversions reduce to shift-and-add circuits.
    """
    if k < 2:
        raise ValueError(f"special moduli set requires k >= 2, got {k}")
    return ModuliSet((2**k - 1, 2**k, 2**k + 1))


def choose_k_min(bm: int, g: int, k_max: int = 24) -> int:
    """Smallest ``k`` whose special set satisfies Eq. 13 for ``(bm, g)``.

    The paper reports ``k_min = 4`` for ``bm=3``, ``5`` for ``bm=4`` and
    ``6`` for ``bm=5`` (all at ``g = 16``); this function reproduces those.
    """
    for k in range(2, k_max + 1):
        if special_moduli_set(k).supports_bfp(bm, g):
            return k
    raise ValueError(f"no k <= {k_max} supports bm={bm}, g={g}")
