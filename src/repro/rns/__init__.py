"""Residue Number System substrate.

Public surface: moduli sets (:class:`ModuliSet`, :func:`special_moduli_set`),
forward/reverse conversions, modular tensor arithmetic (:class:`RnsTensor`)
and the redundant-RNS codec (:class:`RRNSCodec`).
"""

from .arithmetic import (
    RnsTensor,
    mod_add,
    mod_dot,
    mod_matmul,
    mod_mul,
    mod_neg,
    mod_sub,
)
from .conversion import (
    crt_reverse,
    crt_reverse_signed,
    forward_convert,
    forward_convert_signed,
    from_signed,
    mixed_radix_digits,
    mixed_radix_reverse,
    special_set_forward,
    special_set_reverse,
    to_signed,
)
from .moduli import (
    ModuliSet,
    choose_k_min,
    pairwise_coprime,
    required_output_bits,
    special_moduli_set,
)
from .moduli_search import (
    SearchPoint,
    greedy_coprime_set,
    minimal_max_modulus_set,
    search_moduli_sets,
    set_cost_summary,
)
from .base_extension import (
    approx_base_extend,
    approx_crt_rank,
    extension_op_counts,
    mrc_base_extend,
    redundant_modulus_for,
    sk_base_extend,
)
from .nonlinear import (
    FixedPointCodec,
    approximation_error,
    lsq_coefficients,
    rns_polynomial,
    rns_relu,
    taylor_coefficients,
)
from .rrns import DecodeResult, RRNSCodec
from .scaling import (
    approximate_scale,
    exact_power_of_two_scale,
    mrc_compare,
    mrc_sign,
    scale_by_modulus,
)

__all__ = [
    "ModuliSet",
    "special_moduli_set",
    "choose_k_min",
    "required_output_bits",
    "pairwise_coprime",
    "forward_convert",
    "forward_convert_signed",
    "special_set_forward",
    "crt_reverse",
    "crt_reverse_signed",
    "mixed_radix_digits",
    "mixed_radix_reverse",
    "special_set_reverse",
    "to_signed",
    "from_signed",
    "RnsTensor",
    "mod_add",
    "mod_sub",
    "mod_neg",
    "mod_mul",
    "mod_dot",
    "mod_matmul",
    "RRNSCodec",
    "DecodeResult",
    "mrc_compare",
    "mrc_sign",
    "scale_by_modulus",
    "approximate_scale",
    "exact_power_of_two_scale",
    "mrc_base_extend",
    "sk_base_extend",
    "approx_base_extend",
    "approx_crt_rank",
    "redundant_modulus_for",
    "extension_op_counts",
    "FixedPointCodec",
    "rns_polynomial",
    "rns_relu",
    "taylor_coefficients",
    "lsq_coefficients",
    "approximation_error",
    "SearchPoint",
    "greedy_coprime_set",
    "minimal_max_modulus_set",
    "search_moduli_sets",
    "set_cost_summary",
]
