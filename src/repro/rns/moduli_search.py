"""Searching the moduli-set design space (Section IV-B).

Mirage fixes the special set ``{2^k-1, 2^k, 2^k+1}`` because its
conversions reduce to shifts, but the moduli choice is a genuine design
space: more, smaller moduli lower the per-channel DAC/ADC precision and
the SNR the photonic core must hold (laser power grows steeply with the
modulus), at the cost of more MMVMUs and a harder reverse conversion.
This module searches that space:

* :func:`greedy_coprime_set` — largest pairwise-co-prime values below a
  cap (the densest set a cap admits);
* :func:`minimal_max_modulus_set` — for a target dynamic range and
  channel count, the set minimising the largest modulus (binary search
  over the cap + greedy feasibility check);
* :func:`search_moduli_sets` — the (channel count, residue bits) Pareto
  frontier for a dynamic-range target, each point annotated with whether
  a shift-friendly special set could serve instead;
* :func:`set_cost_summary` — converter complexity and data-converter
  precision of a candidate, the quantities the hardware model consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .moduli import ModuliSet, pairwise_coprime, required_output_bits, special_moduli_set

__all__ = [
    "greedy_coprime_set",
    "minimal_max_modulus_set",
    "SearchPoint",
    "search_moduli_sets",
    "set_cost_summary",
]


def greedy_coprime_set(cap: int, count: int) -> Tuple[int, ...]:
    """The ``count`` largest pairwise-co-prime integers ``<= cap``.

    Greedy from the top is optimal for maximising the product at a given
    cap because any candidate skipped for a co-primality conflict is
    smaller than the one that caused the conflict.
    """
    if cap < 2 or count < 1:
        raise ValueError("cap must be >= 2 and count >= 1")
    chosen: List[int] = []
    candidate = cap
    while candidate >= 2 and len(chosen) < count:
        if all(math.gcd(candidate, m) == 1 for m in chosen):
            chosen.append(candidate)
        candidate -= 1
    if len(chosen) < count:
        raise ValueError(f"cannot pick {count} co-prime values <= {cap}")
    return tuple(sorted(chosen))


def minimal_max_modulus_set(
    target_bits: float, count: int, cap_limit: int = 1 << 16
) -> ModuliSet:
    """Smallest-largest-modulus set of ``count`` channels covering
    ``target_bits`` of dynamic range (binary search on the cap)."""
    if target_bits <= 0:
        raise ValueError("target_bits must be positive")

    def feasible(cap: int) -> Optional[Tuple[int, ...]]:
        try:
            mods = greedy_coprime_set(cap, count)
        except ValueError:
            return None
        bits = sum(math.log2(m) for m in mods)
        return mods if bits >= target_bits else None

    lo, hi = 2, cap_limit
    if feasible(hi) is None:
        raise ValueError(
            f"{count} moduli <= {cap_limit} cannot reach {target_bits} bits"
        )
    while lo < hi:
        mid = (lo + hi) // 2
        if feasible(mid) is not None:
            hi = mid
        else:
            lo = mid + 1
    return ModuliSet(feasible(hi))


@dataclass(frozen=True)
class SearchPoint:
    """One Pareto point of the moduli-set search."""

    mset: ModuliSet
    count: int
    max_residue_bits: int
    dynamic_range_bits: float
    special_equivalent_k: Optional[int]

    @property
    def is_special_compatible(self) -> bool:
        """Whether a shift-friendly special set matches this point's
        channel count and residue precision."""
        return self.special_equivalent_k is not None


def _special_k_matching(target_bits: float, max_bits: int) -> Optional[int]:
    """Smallest special-set ``k`` covering the target within ``max_bits``
    residues, if one exists."""
    for k in range(2, max_bits):
        mset = special_moduli_set(k)
        if mset.dynamic_range_bits >= target_bits:
            return k if mset.max_residue_bits() <= max_bits else None
    return None


def search_moduli_sets(
    target_bits: float,
    counts: Sequence[int] = (2, 3, 4, 5, 6),
    cap_limit: int = 1 << 16,
) -> List[SearchPoint]:
    """(count, residue bits) Pareto frontier for a dynamic-range target.

    Each row is the best arbitrary co-prime set at that channel count;
    ``special_equivalent_k`` reports whether the shift-friendly family
    can match it (only ever at ``count == 3``), which is the Section IV-B
    argument for the chosen topology.
    """
    points: List[SearchPoint] = []
    for count in counts:
        try:
            mset = minimal_max_modulus_set(target_bits, count, cap_limit)
        except ValueError:
            continue
        max_bits = mset.max_residue_bits()
        special_k = None
        if count == 3:
            special_k = _special_k_matching(target_bits, max_bits)
        points.append(SearchPoint(
            mset=mset,
            count=count,
            max_residue_bits=max_bits,
            dynamic_range_bits=mset.dynamic_range_bits,
            special_equivalent_k=special_k,
        ))
    # Keep the Pareto frontier over (count asc, max_residue_bits asc).
    frontier: List[SearchPoint] = []
    best_bits = math.inf
    for point in sorted(points, key=lambda p: p.count):
        if point.max_residue_bits < best_bits:
            frontier.append(point)
            best_bits = point.max_residue_bits
    return frontier


def set_cost_summary(mset: ModuliSet, bm: int = 4, g: int = 16) -> dict:
    """Hardware-facing costs of a candidate set for a BFP config.

    ``conversion`` is ``"shift"`` for the special family (forward and
    reverse conversions are shift/add circuits, Section IV-B) and
    ``"crt"`` otherwise (generic multiply-accumulate CRT).
    """
    mods = mset.moduli
    is_special = any(
        mods == special_moduli_set(k).moduli
        for k in range(2, mset.max_residue_bits() + 1)
    )
    return {
        "moduli": mods,
        "channels": mset.n,
        "dac_adc_bits": mset.max_residue_bits(),
        "dynamic_range_bits": mset.dynamic_range_bits,
        "meets_eq13": mset.supports_bfp(bm, g),
        "required_bits": required_output_bits(bm, g),
        "conversion": "shift" if is_special else "crt",
    }
