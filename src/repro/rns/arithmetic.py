"""Modular arithmetic on residue tensors.

The RNS is closed under addition and multiplication, so a GEMM over
``[0, M)`` representatives decomposes into ``n`` independent modular GEMMs
(one per modulus) — this is the mathematical core of Mirage (Section III).

Residue tensors carry a leading *channel* axis of length ``n`` (one slice
per modulus), matching the layout produced by
:func:`repro.rns.conversion.forward_convert`.  A thin :class:`RnsTensor`
wrapper bundles the residues with their moduli set and provides operator
overloads; the free functions below are the vectorised kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .conversion import crt_reverse, crt_reverse_signed, forward_convert_signed
from .moduli import ModuliSet

__all__ = [
    "mod_add",
    "mod_sub",
    "mod_neg",
    "mod_mul",
    "mod_dot",
    "mod_matmul",
    "RnsTensor",
]


def _check_channels(residues: np.ndarray, mset: ModuliSet) -> np.ndarray:
    arr = np.asarray(residues)
    if arr.shape[0] != mset.n:
        raise ValueError(
            f"residue tensor has {arr.shape[0]} channels, moduli set has {mset.n}"
        )
    return arr.astype(np.int64, copy=False)


def _mods_column(mset: ModuliSet, ndim: int) -> np.ndarray:
    """Moduli broadcast against a residue tensor of ``ndim`` trailing dims."""
    return mset.as_array().reshape((mset.n,) + (1,) * ndim)


def mod_add(a, b, mset: ModuliSet) -> np.ndarray:
    """Channel-wise ``(a + b) mod m_i``."""
    a = _check_channels(a, mset)
    b = _check_channels(b, mset)
    mods = _mods_column(mset, max(a.ndim, b.ndim) - 1)
    return np.mod(a + b, mods)


def mod_sub(a, b, mset: ModuliSet) -> np.ndarray:
    """Channel-wise ``(a - b) mod m_i``."""
    a = _check_channels(a, mset)
    b = _check_channels(b, mset)
    mods = _mods_column(mset, max(a.ndim, b.ndim) - 1)
    return np.mod(a - b, mods)


def mod_neg(a, mset: ModuliSet) -> np.ndarray:
    """Channel-wise ``(-a) mod m_i``."""
    a = _check_channels(a, mset)
    mods = _mods_column(mset, a.ndim - 1)
    return np.mod(-a, mods)


def mod_mul(a, b, mset: ModuliSet) -> np.ndarray:
    """Channel-wise elementwise ``(a * b) mod m_i``.

    Residues are bounded by ``max(m_i) - 1`` so products fit comfortably in
    int64 for any practical moduli (``m <= 2^31``).
    """
    a = _check_channels(a, mset)
    b = _check_channels(b, mset)
    mods = _mods_column(mset, max(a.ndim, b.ndim) - 1)
    return np.mod(a * b, mods)


def mod_dot(x, w, mset: ModuliSet) -> np.ndarray:
    """Modular dot product per channel: ``| sum_j x_j w_j |_{m_i}``.

    ``x`` and ``w`` have shape ``(n, g)``; the result has shape ``(n,)``.
    Mirrors one MDPU evaluation (Eq. 12) per modulus.
    """
    x = _check_channels(x, mset)
    w = _check_channels(w, mset)
    out = np.empty(mset.n, dtype=np.int64)
    for i, m in enumerate(mset.moduli):
        out[i] = int(np.sum(x[i].astype(np.int64) * w[i].astype(np.int64))) % m
    return out


def mod_matmul(w, x, mset: ModuliSet) -> np.ndarray:
    """Modular matrix product per channel: ``| w @ x |_{m_i}``.

    ``w`` has shape ``(n, R, K)`` and ``x`` has shape ``(n, K, C)``; output
    is ``(n, R, C)``.  All ``n`` channels run through a single batched
    matmul per chunk; accumulation is chunked along ``K`` with one shared
    chunk size derived from ``max(m)`` so the int64 partial sums cannot
    overflow even for long reductions.
    """
    w = _check_channels(w, mset)
    x = _check_channels(x, mset)
    if w.ndim != 3 or x.ndim != 3:
        raise ValueError(f"expected (n, R, K) @ (n, K, C), got {w.shape} @ {x.shape}")
    if w.shape[2] != x.shape[1]:
        raise ValueError(f"inner dims differ: {w.shape} @ {x.shape}")
    n, r, k = w.shape
    c = x.shape[2]
    mods = _mods_column(mset, 2)
    # Residues are < max(m), so every product is < max(m)^2 and a partial
    # sum of ``chunk`` products plus the running mod-reduced accumulator
    # (< max(m)) stays below 2^62 for the shared chunk size.
    max_m = int(mset.moduli[-1])
    chunk = max(1, (1 << 62) // (max_m * max_m))
    acc = np.zeros((n, r, c), dtype=np.int64)
    for start in range(0, k, chunk):
        stop = min(k, start + chunk)
        acc = np.mod(acc + np.matmul(w[:, :, start:stop], x[:, start:stop, :]), mods)
    return acc


@dataclass(frozen=True)
class RnsTensor:
    """A tensor held in residue form together with its moduli set.

    ``residues`` has shape ``(n, *shape)``.  The wrapper is immutable;
    arithmetic returns new instances.  Construction from signed integers and
    reconstruction back to signed integers round-trip exactly whenever the
    values stay inside the RNS range.
    """

    residues: np.ndarray
    mset: ModuliSet

    def __post_init__(self):
        _check_channels(self.residues, self.mset)

    # ------------------------------------------------------------------
    # Construction / extraction
    # ------------------------------------------------------------------
    @classmethod
    def from_signed(cls, values, mset: ModuliSet) -> "RnsTensor":
        """Encode signed integers (raises if out of ``[-ψ, M-1-ψ]``)."""
        return cls(forward_convert_signed(values, mset), mset)

    def to_signed(self) -> np.ndarray:
        """Decode back to signed integers via CRT."""
        return crt_reverse_signed(self.residues, self.mset)

    def to_unsigned(self) -> np.ndarray:
        """Decode to ``[0, M)`` representatives via CRT."""
        return crt_reverse(self.residues, self.mset)

    @property
    def shape(self) -> tuple:
        return self.residues.shape[1:]

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other) -> np.ndarray:
        if isinstance(other, RnsTensor):
            if other.mset != self.mset:
                raise ValueError("moduli sets differ")
            return other.residues
        return forward_convert_signed(np.asarray(other), self.mset)

    def __add__(self, other) -> "RnsTensor":
        return RnsTensor(mod_add(self.residues, self._coerce(other), self.mset), self.mset)

    def __sub__(self, other) -> "RnsTensor":
        return RnsTensor(mod_sub(self.residues, self._coerce(other), self.mset), self.mset)

    def __neg__(self) -> "RnsTensor":
        return RnsTensor(mod_neg(self.residues, self.mset), self.mset)

    def __mul__(self, other) -> "RnsTensor":
        return RnsTensor(mod_mul(self.residues, self._coerce(other), self.mset), self.mset)

    def matmul(self, other: "RnsTensor") -> "RnsTensor":
        """Modular GEMM: self ``(R, K)`` @ other ``(K, C)``."""
        return RnsTensor(
            mod_matmul(self.residues, self._coerce(other), self.mset), self.mset
        )

    def __matmul__(self, other) -> "RnsTensor":
        return self.matmul(other)
