"""Base extension: recomputing residues for moduli outside the base set.

A pure-RNS accelerator (the Section VII alternatives, Res-DNN / RNSnet)
cannot avoid base extension: after scaling by one modulus the value lives
in a *reduced* base and the dropped channel must be regenerated before the
next multiplication, and overflow-safe rescaling needs the value expressed
in an *extended* base first.  Mirage sidesteps all of this by returning to
binary/BFP after every GEMM; this module implements the classical
algorithms so that the cost Mirage avoids is executable.

Three methods, in increasing hardware friendliness:

* :func:`mrc_base_extend` — Szabo–Tanaka: exact, via mixed-radix digits;
  ``O(n^2)`` sequential modular steps (the mixed-radix recursion is a
  carry chain, so it is slow in hardware).
* :func:`sk_base_extend` — Shenoy–Kumaresan: exact and parallel, but
  requires a *redundant* channel ``x_r = X mod m_r`` (``m_r >= n``) to
  have been carried through every preceding operation.
* :func:`approx_crt_rank` / :func:`approx_base_extend` — the approximate
  CRT method: parallel and redundancy-free, but wrong by one multiple of
  ``M`` for values within ``M / 2^frac_bits`` of a wrap boundary.

All functions are vectorised over trailing axes: residue tensors have
shape ``(n, ...)`` matching :mod:`repro.rns.conversion`.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from .conversion import mixed_radix_digits
from .moduli import ModuliSet, pairwise_coprime

__all__ = [
    "mrc_base_extend",
    "sk_base_extend",
    "approx_crt_rank",
    "approx_base_extend",
    "redundant_modulus_for",
    "extension_op_counts",
]


def _check_target(mset: ModuliSet, new_moduli: Sequence[int]) -> Tuple[int, ...]:
    target = tuple(int(m) for m in new_moduli)
    if any(m < 2 for m in target):
        raise ValueError(f"target moduli must be >= 2, got {target}")
    if not pairwise_coprime(tuple(mset.moduli) + target):
        raise ValueError(
            f"target moduli {target} must be co-prime with the base {mset.moduli}"
        )
    return target


def mrc_base_extend(
    residues: np.ndarray, mset: ModuliSet, new_moduli: Sequence[int]
) -> np.ndarray:
    """Szabo–Tanaka base extension through mixed-radix digits.

    Converts ``X`` (given by ``residues`` over ``mset``) into residues for
    ``new_moduli`` without ever reconstructing ``X``: the mixed-radix
    expansion ``X = a_1 + a_2 m_1 + a_3 m_1 m_2 + ...`` is evaluated
    modulo each target modulus.

    Returns an array of shape ``(len(new_moduli), ...)``.
    """
    target = _check_target(mset, new_moduli)
    digits = mixed_radix_digits(residues, mset)  # (n, ...)
    out = []
    for p in target:
        # Weight of digit i modulo p: prod_{j<i} m_j mod p.
        acc = np.zeros(digits.shape[1:], dtype=np.int64)
        weight = 1
        for i, m in enumerate(mset.moduli):
            acc = (acc + (digits[i] % p) * weight) % p
            weight = (weight * m) % p
        out.append(acc)
    return np.stack(out, axis=0)


def redundant_modulus_for(mset: ModuliSet, minimum: int = 0) -> int:
    """Smallest modulus co-prime with the base and ``>= max(n + 1, minimum)``.

    Shenoy–Kumaresan needs the CRT *rank* (``alpha < n``) to be exactly
    representable modulo the redundant channel, hence ``m_r > n - 1``; we
    use ``n + 1`` for one unit of slack.
    """
    candidate = max(mset.n + 1, minimum, 2)
    while True:
        if all(math.gcd(candidate, m) == 1 for m in mset.moduli):
            return candidate
        candidate += 1


def sk_base_extend(
    residues: np.ndarray,
    mset: ModuliSet,
    redundant_residue: np.ndarray,
    redundant_modulus: int,
    new_moduli: Sequence[int],
) -> np.ndarray:
    """Shenoy–Kumaresan base extension using a redundant channel.

    ``X = sum_i |x_i T_i|_{m_i} M_i - alpha M`` with rank ``alpha < n``.
    The redundant residue pins the rank::

        alpha = | M^{-1} ( sum_i |x_i T_i|_{m_i} |M_i|_{m_r} - x_r ) |_{m_r}

    after which every target residue is a parallel weighted sum — no
    mixed-radix carry chain.  Requires ``m_r > n - 1`` and ``x_r`` to be
    exact (i.e. carried alongside the base channels through every
    preceding operation — the hidden tax on pure-RNS designs).
    """
    target = _check_target(mset, new_moduli)
    m_r = int(redundant_modulus)
    if m_r <= mset.n - 1:
        raise ValueError(f"redundant modulus {m_r} must exceed n-1={mset.n - 1}")
    if math.gcd(m_r, mset.dynamic_range) != 1:
        raise ValueError("redundant modulus must be co-prime with the base")
    mi, ti = mset.crt_weights
    res = np.asarray(residues, dtype=np.int64)
    x_r = np.asarray(redundant_residue, dtype=np.int64) % m_r

    # v_i = |x_i T_i|_{m_i}  (the CRT summand scale factors, < m_i).
    v = np.stack(
        [(res[i] * (ti[i] % m)) % m for i, m in enumerate(mset.moduli)], axis=0
    )

    # Rank from the redundant channel.
    s_r = np.zeros(v.shape[1:], dtype=np.int64)
    for i in range(mset.n):
        s_r = (s_r + v[i] * (mi[i] % m_r)) % m_r
    m_inv_r = pow(mset.dynamic_range % m_r, -1, m_r)
    alpha = ((s_r - x_r) * m_inv_r) % m_r

    out = []
    for p in target:
        s_p = np.zeros(v.shape[1:], dtype=np.int64)
        for i in range(mset.n):
            s_p = (s_p + v[i] * (mi[i] % p)) % p
        out.append((s_p - alpha * (mset.dynamic_range % p)) % p)
    return np.stack(out, axis=0)


def approx_crt_rank(
    residues: np.ndarray, mset: ModuliSet, frac_bits: int = 24
) -> np.ndarray:
    """Approximate CRT rank ``alpha ~= floor(sum_i v_i / m_i)``.

    The fractional sum is evaluated in ``frac_bits``-bit fixed point (what
    a hardware implementation tabulates); values of ``X`` within
    ``~ M * n / 2^frac_bits`` of a multiple-of-``M`` boundary may round to
    the wrong rank — the approximation error the exact methods avoid.
    """
    if frac_bits < 1:
        raise ValueError("frac_bits must be >= 1")
    mi, ti = mset.crt_weights
    res = np.asarray(residues, dtype=np.int64)
    scale = 1 << frac_bits
    acc = np.zeros(res.shape[1:], dtype=np.int64)
    for i, m in enumerate(mset.moduli):
        v = (res[i] * (ti[i] % m)) % m
        # floor(v * 2^frac / m): tabulated per residue value in hardware.
        acc = acc + (v * scale) // m
    return acc >> frac_bits


def approx_base_extend(
    residues: np.ndarray,
    mset: ModuliSet,
    new_moduli: Sequence[int],
    frac_bits: int = 24,
) -> np.ndarray:
    """Base extension with the approximate rank (no redundant channel).

    Exact except for inputs whose fractional CRT sum lands within the
    fixed-point rounding window of an integer — the error probability is
    measured by the related-work bench.
    """
    target = _check_target(mset, new_moduli)
    mi, ti = mset.crt_weights
    res = np.asarray(residues, dtype=np.int64)
    alpha = approx_crt_rank(residues, mset, frac_bits)
    v = np.stack(
        [(res[i] * (ti[i] % m)) % m for i, m in enumerate(mset.moduli)], axis=0
    )
    out = []
    for p in target:
        s_p = np.zeros(v.shape[1:], dtype=np.int64)
        for i in range(mset.n):
            s_p = (s_p + v[i] * (mi[i] % p)) % p
        out.append((s_p - alpha * (mset.dynamic_range % p)) % p)
    return np.stack(out, axis=0)


def extension_op_counts(mset: ModuliSet, num_targets: int = 1) -> dict:
    """Modular-operation counts per extended value, by method.

    The digital-cost yardstick used by the related-work analysis: one
    entry is one modular multiply-accumulate-sized operation.  MRC is
    ``O(n^2)`` *sequential*; SK and approximate CRT are ``O(n)`` deep but
    SK charges every prior operation for the redundant channel.
    """
    n = mset.n
    return {
        "mrc": n * (n - 1) // 2 + n * num_targets,
        "shenoy_kumaresan": 2 * n + (n + 1) * num_targets,
        "approx_crt": 2 * n + (n + 1) * num_targets,
        "mrc_sequential_depth": n,
        "sk_sequential_depth": 2,
    }
