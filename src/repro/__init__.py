"""Mirage reproduction: an RNS-based photonic accelerator for DNN training.

Reproduces Demirkiran et al., ISCA 2024 (arXiv:2311.17323) end to end:

* :mod:`repro.rns` — Residue Number System (moduli sets, conversions,
  modular tensor arithmetic, redundant-RNS error correction);
* :mod:`repro.bfp` — Block Floating Point encoding and exact BFP GEMM;
* :mod:`repro.quant` — baseline number formats (bfloat16, HFP8, INT8/12,
  FMAC) as pluggable GEMM quantisers;
* :mod:`repro.nn` — a from-scratch numpy autograd DNN training framework
  (the PyTorch substitute), with quantised GEMM layers implementing the
  paper's accuracy model;
* :mod:`repro.photonic` — device-level functional models (MMU, MDPU,
  MMVMU), loss budgets, shot/thermal noise, encoding-error analysis;
* :mod:`repro.arch` — architectural simulator (tiling, dataflows, latency,
  energy, area, systolic baselines, iso-energy/iso-area comparisons);
* :mod:`repro.core` — the photonic RNS tensor core executing the full
  Fig. 2 dataflow, bit-exact against the BFP reference when noiseless;
* :mod:`repro.serve` — inference serving runtime (bounded admission,
  dynamic micro-batching, executor pools, traffic scenarios, telemetry);
* :mod:`repro.analysis` — one experiment generator per paper table/figure;
* :mod:`repro.determinism` — RNG discipline (``resolve_rng``: explicit
  seed/Generator, or the one documented nondeterministic opt-in);
* :mod:`repro.checks` — self-hosted static analysis (determinism,
  layering, clock-discipline and hygiene rules; ``python -m repro.checks``).

Quickstart::

    import numpy as np
    from repro.core import PhotonicRnsTensorCore

    core = PhotonicRnsTensorCore()           # bm=4, g=16, k=5, 16x32
    w = np.random.randn(32, 64)
    x = np.random.randn(64, 8)
    y = core.matmul(w, x)                    # full photonic RNS dataflow
"""

from . import (
    analysis,
    arch,
    bfp,
    checks,
    core,
    determinism,
    nn,
    photonic,
    quant,
    rns,
    serve,
)

__version__ = "1.0.0"

__all__ = [
    "rns",
    "bfp",
    "quant",
    "nn",
    "photonic",
    "arch",
    "core",
    "serve",
    "analysis",
    "determinism",
    "checks",
    "__version__",
]
