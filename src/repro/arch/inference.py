"""Inference-mode throughput and the Table III comparison.

Inference runs the forward GEMMs only.  Throughput is reported as
inferences per second (IPS), IPS/W and IPS/mm² for ResNet50 and AlexNet at
batch 1 — matching the published accelerator numbers the paper compares
against, which are reproduced here as reference constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .accelerator import MirageAccelerator
from .area import mirage_footprint_area
from .dataflow import MIRAGE_DATAFLOWS, schedule_opt2
from .latency import mirage_latency_fn
from .workloads import LayerShape, TrainingGemm, training_gemms, workload

__all__ = [
    "inference_latency",
    "inference_metrics",
    "microbatch_latency",
    "per_request_latency",
    "PUBLISHED_INFERENCE_ACCELERATORS",
    "table3_rows",
]


def _forward_gemms(layers: Sequence[LayerShape]) -> List[TrainingGemm]:
    return [tg for layer in layers for tg in training_gemms(layer) if tg.role == "fwd"]


def inference_latency(
    layers: Sequence[LayerShape],
    accelerator: Optional[MirageAccelerator] = None,
) -> float:
    """Seconds for one forward pass (OPT2 dataflow over forward GEMMs)."""
    accelerator = accelerator or MirageAccelerator()
    fn = mirage_latency_fn(accelerator.config)
    gemms = _forward_gemms(layers)
    total = 0.0
    for tg in gemms:
        total += min(fn(tg, df) for df in MIRAGE_DATAFLOWS)
    return total


def inference_metrics(
    name: str,
    batch: int = 16,
    accelerator: Optional[MirageAccelerator] = None,
) -> Dict[str, float]:
    """IPS, IPS/W and IPS/mm² for a named workload at a given batch."""
    accelerator = accelerator or MirageAccelerator()
    layers = workload(name, batch=batch)
    latency = inference_latency(layers, accelerator)
    ips = batch / latency
    fwd_macs = sum(tg.gemm.macs for tg in _forward_gemms(layers))
    energy = accelerator.energy_per_mac * fwd_macs
    power = energy / latency
    area_mm2 = mirage_footprint_area(accelerator.config) / 1e-6
    return {
        "ips": ips,
        "ips_per_w": ips / power,
        "ips_per_mm2": ips / area_mm2,
        "power_w": power,
        "latency_s": latency,
    }


def microbatch_latency(
    layers: Sequence[LayerShape],
    accelerator: Optional[MirageAccelerator] = None,
) -> float:
    """Seconds to serve one micro-batch whose size is baked into ``layers``.

    Identical to :func:`inference_latency`; the alias exists so serving
    code reads as what it means (the batch dimension lives inside each
    layer's ``GemmShape.n``, per the im2col convention).
    """
    return inference_latency(layers, accelerator)


def per_request_latency(
    layers: Sequence[LayerShape],
    batch: int,
    accelerator: Optional[MirageAccelerator] = None,
) -> Dict[str, float]:
    """Per-request latency accounting for a micro-batch of ``batch`` requests.

    ``layers`` must already be shaped at ``batch`` (their forward GEMMs
    carry ``N = batch * spatial``).  Returns the batch service latency
    and the amortized per-request share.  Comparing ``per_request_s``
    across batch sizes exposes the effect dynamic micro-batching
    (:mod:`repro.serve`) is built to exploit: weight-tile reprogramming
    is paid per tile, not per streamed vector, so batching amortizes the
    5 ns phase-shifter settles across requests.
    """
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    accelerator = accelerator or MirageAccelerator()
    batch_s = microbatch_latency(layers, accelerator)
    per_request_s = batch_s / batch
    return {
        "batch": float(batch),
        "batch_latency_s": batch_s,
        "per_request_s": per_request_s,
    }


# Published numbers reproduced from Table III (reference constants; the
# cited accelerators are not re-simulated).  None = not reported (N/A).
PUBLISHED_INFERENCE_ACCELERATORS = {
    "ADEPT": {
        "ResNet50": (35698, 1587.99, 50.57),
        "AlexNet": (217201, 7476.78, 307.64),
    },
    "Albireo-C": {"ResNet50": None, "AlexNet": (7692, 344.17, 61.46)},
    "DNNARA": {"ResNet50": (9345, 100.0, 42.05), "AlexNet": None},
    "HolyLight": {"ResNet50": None, "AlexNet": (50000, 900.0, 2226.11)},
    "Eyeriss": {"ResNet50": None, "AlexNet": (35, 124.80, 2.85)},
    "Eyeriss v2": {"ResNet50": None, "AlexNet": (102, 174.80, None)},
    "TPU v3": {"ResNet50": (32716, 18.18, 18.00), "AlexNet": None},
    "UNPU": {"ResNet50": None, "AlexNet": (346, 1097.50, 21.62)},
    "Res-DNN": {"ResNet50": None, "AlexNet": (386.11, 427.78, None)},
}

# Paper-reported Mirage row of Table III, for shape validation.
PAPER_MIRAGE_TABLE3 = {
    "ResNet50": (10474, 1540.6, 43.2),
    "AlexNet": (64963, 1904.5, 267.67),
}


def table3_rows(accelerator: Optional[MirageAccelerator] = None, batch: int = 16):
    """(accelerator, model, ips, ips_per_w, ips_per_mm2) rows for Table III."""
    accelerator = accelerator or MirageAccelerator()
    rows = []
    for model in ("ResNet50", "AlexNet"):
        metrics = inference_metrics(model, batch=batch, accelerator=accelerator)
        rows.append(
            ("Mirage (measured)", model, metrics["ips"], metrics["ips_per_w"],
             metrics["ips_per_mm2"])
        )
    for name, per_model in PUBLISHED_INFERENCE_ACCELERATORS.items():
        for model, vals in per_model.items():
            if vals is None:
                continue
            rows.append((name, model, vals[0], vals[1], vals[2]))
    return rows
