"""Inference-mode throughput and the Table III comparison.

Inference runs the forward GEMMs only.  Throughput is reported as
inferences per second (IPS), IPS/W and IPS/mm² for ResNet50 and AlexNet at
batch 1 — matching the published accelerator numbers the paper compares
against, which are reproduced here as reference constants.

Besides the one-shot forward-pass helpers, this module carries the
autoregressive-decode latency model the token serving engine
(:mod:`repro.serve.engine`) dispatches against:
:func:`decode_step_latency` prices one iteration-level decode step (one
token per running session, attention read over each session's KV
context) and :func:`prefill_latency` prices the prompt pass that builds
a session's KV state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .accelerator import MirageAccelerator
from .area import mirage_footprint_area
from .dataflow import MIRAGE_DATAFLOWS, schedule_opt2
from .latency import mirage_gemm_components, mirage_latency_fn
from .workloads import GemmShape, LayerShape, TrainingGemm, training_gemms, workload

__all__ = [
    "attention_token_latency",
    "attention_token_components",
    "chunked_prefill_latency",
    "chunked_prefill_components",
    "decode_step_latency",
    "decode_step_components",
    "inference_latency",
    "inference_latency_components",
    "inference_metrics",
    "microbatch_latency",
    "per_request_latency",
    "prefill_latency",
    "PUBLISHED_INFERENCE_ACCELERATORS",
    "table3_rows",
]


def _forward_gemms(layers: Sequence[LayerShape]) -> List[TrainingGemm]:
    return [tg for layer in layers for tg in training_gemms(layer) if tg.role == "fwd"]


def inference_latency(
    layers: Sequence[LayerShape],
    accelerator: Optional[MirageAccelerator] = None,
) -> float:
    """Seconds for one forward pass (OPT2 dataflow over forward GEMMs).

    An empty layer list (or one with no forward GEMMs) is rejected: a
    silent 0.0 here used to propagate into serving dispatch as a
    zero-length busy window, which reads as infinite throughput.
    """
    accelerator = accelerator or MirageAccelerator()
    fn = mirage_latency_fn(accelerator.config)
    gemms = _forward_gemms(layers)
    if not gemms:
        raise ValueError(
            "layers contain no forward GEMMs to price (empty layer list?)"
        )
    total = 0.0
    for tg in gemms:
        total += min(fn(tg, df) for df in MIRAGE_DATAFLOWS)
    return total


def inference_latency_components(
    layers: Sequence[LayerShape],
    accelerator: Optional[MirageAccelerator] = None,
) -> Dict[str, float]:
    """:func:`inference_latency`, split into reprogram vs stream time.

    ``total_s`` is **bit-identical** to :func:`inference_latency`: the
    same per-GEMM min over dataflows, accumulated in the same order with
    the same arithmetic (:func:`mirage_gemm_components` reproduces
    :func:`mirage_gemm_latency` exactly; dataflow ties break the same
    way, and tied totals are equal anyway).  ``reprogram_s`` sums each
    chosen mapping's exact phase-shifter settle time; ``stream_s`` is
    the residual ``total_s - reprogram_s`` — a reporting split, never
    re-added when asserting exactness.
    """
    accelerator = accelerator or MirageAccelerator()
    config = accelerator.config
    gemms = _forward_gemms(layers)
    if not gemms:
        raise ValueError(
            "layers contain no forward GEMMs to price (empty layer list?)"
        )
    total = 0.0
    reprogram = 0.0
    for tg in gemms:
        best = None
        for df in MIRAGE_DATAFLOWS:
            cand = mirage_gemm_components(tg.gemm, config, df)
            if best is None or cand["total_s"] < best["total_s"]:
                best = cand
        total += best["total_s"]
        reprogram += best["reprogram_s"]
    return {
        "total_s": total,
        "reprogram_s": reprogram,
        "stream_s": total - reprogram,
    }


def inference_metrics(
    name: str,
    batch: int = 16,
    accelerator: Optional[MirageAccelerator] = None,
) -> Dict[str, float]:
    """IPS, IPS/W and IPS/mm² for a named workload at a given batch."""
    accelerator = accelerator or MirageAccelerator()
    layers = workload(name, batch=batch)
    latency = inference_latency(layers, accelerator)
    ips = batch / latency
    fwd_macs = sum(tg.gemm.macs for tg in _forward_gemms(layers))
    energy = accelerator.energy_per_mac * fwd_macs
    power = energy / latency
    area_mm2 = mirage_footprint_area(accelerator.config) / 1e-6
    return {
        "ips": ips,
        "ips_per_w": ips / power,
        "ips_per_mm2": ips / area_mm2,
        "power_w": power,
        "latency_s": latency,
    }


def microbatch_latency(
    layers: Sequence[LayerShape],
    accelerator: Optional[MirageAccelerator] = None,
) -> float:
    """Seconds to serve one micro-batch whose size is baked into ``layers``.

    Identical to :func:`inference_latency` (including the explicit
    rejection of empty layer lists); the alias exists so serving code
    reads as what it means (the batch dimension lives inside each
    layer's ``GemmShape.n``, per the im2col convention).
    """
    return inference_latency(layers, accelerator)


def per_request_latency(
    layers: Sequence[LayerShape],
    batch: int,
    accelerator: Optional[MirageAccelerator] = None,
) -> Dict[str, float]:
    """Per-request latency accounting for a micro-batch of ``batch`` requests.

    ``layers`` must already be shaped at ``batch`` (their forward GEMMs
    carry ``N = batch * spatial``).  Returns the batch service latency
    and the amortized per-request share.  Comparing ``per_request_s``
    across batch sizes exposes the effect dynamic micro-batching
    (:mod:`repro.serve`) is built to exploit: weight-tile reprogramming
    is paid per tile, not per streamed vector, so batching amortizes the
    5 ns phase-shifter settles across requests.
    """
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    accelerator = accelerator or MirageAccelerator()
    batch_s = microbatch_latency(layers, accelerator)
    per_request_s = batch_s / batch
    return {
        "batch": float(batch),
        "batch_latency_s": batch_s,
        "per_request_s": per_request_s,
    }


# ----------------------------------------------------------------------
# Autoregressive decode (token serving engine)
# ----------------------------------------------------------------------
def _check_kv_spec(kv) -> None:
    """``kv`` is duck-typed (``repro.nn.attention.KVCacheSpec`` in
    practice; ``arch`` stays import-independent of ``nn``)."""
    for attr in ("num_layers", "num_heads", "head_dim"):
        value = getattr(kv, attr, None)
        if not isinstance(value, int) or value < 1:
            raise ValueError(
                f"kv.{attr} must be a positive int, got {value!r}"
            )


def attention_token_latency(
    kv,
    context_len: int,
    accelerator: Optional[MirageAccelerator] = None,
) -> float:
    """Seconds of attention work to decode **one token** of one session.

    Per transformer layer and head, the new query reads its KV context:
    a score GEMM ``(1, head_dim) @ (head_dim, L)`` and a context GEMM
    ``(1, L) @ (L, head_dim)`` with ``L = context_len`` — the part of a
    decode step that grows with the session's sequence length (the
    token-parallel projections are priced separately by
    :func:`decode_step_latency`).  All heads and layers ride in one GEMM
    descriptor via ``count = num_layers * num_heads``, whose tiles the
    latency model spreads across the ``num_arrays`` RNS-MMVMUs.
    """
    return inference_latency(
        _decode_attention_layers(kv, context_len), accelerator
    )


def _decode_attention_layers(kv, context_len: int) -> List[LayerShape]:
    _check_kv_spec(kv)
    if context_len < 1:
        raise ValueError(f"context_len must be >= 1, got {context_len}")
    count = kv.num_layers * kv.num_heads
    return [
        LayerShape(
            "decode.scores",
            GemmShape(1, kv.head_dim, context_len, count=count),
            "attention",
        ),
        LayerShape(
            "decode.context",
            GemmShape(1, context_len, kv.head_dim, count=count),
            "attention",
        ),
    ]


def attention_token_components(
    kv,
    context_len: int,
    accelerator: Optional[MirageAccelerator] = None,
) -> Dict[str, float]:
    """:func:`attention_token_latency` split into reprogram vs stream.

    ``total_s`` is bit-identical to :func:`attention_token_latency`
    (same layer shapes through :func:`inference_latency_components`).
    """
    return inference_latency_components(
        _decode_attention_layers(kv, context_len), accelerator
    )


def decode_step_latency(
    layers: Sequence[LayerShape],
    context_lens: Sequence[int],
    kv=None,
    accelerator: Optional[MirageAccelerator] = None,
) -> Dict[str, float]:
    """Price one iteration-level decode step of a continuous batch.

    ``layers`` are the model's token-parallel GEMMs shaped at
    ``batch = len(context_lens)`` (one new token per running session);
    ``context_lens[i]`` is session *i*'s resident KV length, each adding
    the per-session attention read of :func:`attention_token_latency`.
    ``kv=None`` models a KV-free network (pure MLP surrogate): the step
    is just the batched token GEMMs.

    The attention term sums in ``context_lens`` order with a per-``L``
    memo, so a caller that memoises :func:`attention_token_latency` per
    distinct length and sums in the same order reproduces this number
    bit-exactly — that is the serving engine's cross-check contract.
    """
    batch = len(context_lens)
    if batch < 1:
        raise ValueError("context_lens must name at least one session")
    accelerator = accelerator or MirageAccelerator()
    token_parallel_s = microbatch_latency(layers, accelerator)
    attention_s = 0.0
    if kv is not None:
        per_len: Dict[int, float] = {}
        for length in context_lens:
            if length not in per_len:
                per_len[length] = attention_token_latency(
                    kv, length, accelerator
                )
            attention_s += per_len[length]
    step_s = token_parallel_s + attention_s
    return {
        "batch": float(batch),
        "token_parallel_s": token_parallel_s,
        "attention_s": attention_s,
        "step_latency_s": step_s,
        "per_token_s": step_s / batch,
    }


def decode_step_components(
    layers: Sequence[LayerShape],
    context_lens: Sequence[int],
    kv=None,
    accelerator: Optional[MirageAccelerator] = None,
) -> Dict[str, float]:
    """:func:`decode_step_latency` with reprogram/stream attribution.

    ``step_latency_s`` is bit-identical to the plain pricing: the token
    GEMM total and the order-preserving memoised attention sum reproduce
    the same floats, and the final add matches.  The ``*_reprogram_s``
    fields attribute each part's phase-shifter settle time (streams are
    the residuals; see :func:`inference_latency_components`).
    """
    batch = len(context_lens)
    if batch < 1:
        raise ValueError("context_lens must name at least one session")
    accelerator = accelerator or MirageAccelerator()
    token = inference_latency_components(layers, accelerator)
    attention_s = 0.0
    attention_reprogram_s = 0.0
    if kv is not None:
        per_len: Dict[int, Dict[str, float]] = {}
        for length in context_lens:
            if length not in per_len:
                per_len[length] = attention_token_components(
                    kv, length, accelerator
                )
            attention_s += per_len[length]["total_s"]
            attention_reprogram_s += per_len[length]["reprogram_s"]
    return {
        "batch": float(batch),
        "token_parallel_s": token["total_s"],
        "token_reprogram_s": token["reprogram_s"],
        "attention_s": attention_s,
        "attention_reprogram_s": attention_reprogram_s,
        "step_latency_s": token["total_s"] + attention_s,
    }


def chunked_prefill_latency(
    layers: Sequence[LayerShape],
    chunk_len: int,
    context_len: int = 0,
    kv=None,
    accelerator: Optional[MirageAccelerator] = None,
) -> float:
    """Seconds to prefill one ``chunk_len``-token slice of a prompt.

    Chunked prefill splits a long prompt into slices interleaved with
    running decode steps (bounding the TTFT jitter a monolithic prefill
    inflicts on co-scheduled sessions).  ``context_len`` tokens of KV
    are already resident — from earlier chunks *or* from a shared-prefix
    cache hit — so the slice's cost is its token-parallel GEMMs
    (``layers`` shaped at ``batch = chunk_len``) plus causal attention
    of the chunk's queries over everything resident so far: per layer
    and head a ``(Q, head_dim) @ (head_dim, C + Q)`` score GEMM and a
    ``(Q, C + Q) @ (C + Q, head_dim)`` context GEMM.

    ``chunk_len = 0`` — a fully cached slice — is **defined** as zero
    seconds (no GEMMs stream; ``layers`` and ``kv`` are not consulted):
    the scheduling step it rides in still happens, it just adds no
    prefill time.  With ``context_len = 0`` and the whole prompt as one
    chunk this reproduces :func:`prefill_latency` exactly, which is the
    engine's chunked-step cross-check contract.
    """
    if chunk_len < 0:
        raise ValueError(f"chunk_len must be >= 0, got {chunk_len}")
    if context_len < 0:
        raise ValueError(f"context_len must be >= 0, got {context_len}")
    if chunk_len == 0:
        return 0.0
    accelerator = accelerator or MirageAccelerator()
    total = microbatch_latency(layers, accelerator)
    if kv is not None:
        attn = _prefill_attention_layers(kv, chunk_len, context_len)
        total += inference_latency(attn, accelerator)
    return total


def _prefill_attention_layers(
    kv, chunk_len: int, context_len: int
) -> List[LayerShape]:
    _check_kv_spec(kv)
    count = kv.num_layers * kv.num_heads
    span = context_len + chunk_len
    return [
        LayerShape(
            "prefill.scores",
            GemmShape(chunk_len, kv.head_dim, span, count=count),
            "attention",
        ),
        LayerShape(
            "prefill.context",
            GemmShape(chunk_len, span, kv.head_dim, count=count),
            "attention",
        ),
    ]


def chunked_prefill_components(
    layers: Sequence[LayerShape],
    chunk_len: int,
    context_len: int = 0,
    kv=None,
    accelerator: Optional[MirageAccelerator] = None,
) -> Dict[str, float]:
    """:func:`chunked_prefill_latency` with reprogram/stream attribution.

    ``total_s`` is bit-identical to the plain pricing (same shapes, same
    single add of the attention term); a ``chunk_len`` of zero returns
    all-zero components, matching the defined-zero fully-cached slice.
    """
    if chunk_len < 0:
        raise ValueError(f"chunk_len must be >= 0, got {chunk_len}")
    if context_len < 0:
        raise ValueError(f"context_len must be >= 0, got {context_len}")
    zero = {
        "total_s": 0.0,
        "gemm_s": 0.0,
        "gemm_reprogram_s": 0.0,
        "attention_s": 0.0,
        "attention_reprogram_s": 0.0,
    }
    if chunk_len == 0:
        return zero
    accelerator = accelerator or MirageAccelerator()
    gemm = inference_latency_components(layers, accelerator)
    total = gemm["total_s"]
    attention_s = 0.0
    attention_reprogram_s = 0.0
    if kv is not None:
        attn = inference_latency_components(
            _prefill_attention_layers(kv, chunk_len, context_len), accelerator
        )
        attention_s = attn["total_s"]
        attention_reprogram_s = attn["reprogram_s"]
        total += attention_s
    return {
        "total_s": total,
        "gemm_s": gemm["total_s"],
        "gemm_reprogram_s": gemm["reprogram_s"],
        "attention_s": attention_s,
        "attention_reprogram_s": attention_reprogram_s,
    }


def prefill_latency(
    layers: Sequence[LayerShape],
    prompt_len: int,
    kv=None,
    accelerator: Optional[MirageAccelerator] = None,
) -> float:
    """Seconds to run a session's prompt pass and build its KV state.

    ``layers`` are the model's GEMMs shaped at ``batch = prompt_len``
    (all prompt tokens stream token-parallel, which is why prefill is
    throughput-bound while decode is latency-bound), plus the quadratic
    attention over the prompt: per layer and head a
    ``(P, head_dim) @ (head_dim, P)`` score GEMM and a
    ``(P, P) @ (P, head_dim)`` context GEMM.

    ``prompt_len = 0`` — every prompt token already resident from a
    shared-prefix cache hit — is **defined** as zero seconds: no GEMM
    streams, but the engine still spends a scheduling step admitting
    the session (the step's cost is its decode batch, not the prefill).
    Negative lengths raise.  Implemented as the single-chunk case of
    :func:`chunked_prefill_latency` with no resident context, so the
    two are bit-identical where they overlap.
    """
    if prompt_len < 0:
        raise ValueError(f"prompt_len must be >= 0, got {prompt_len}")
    return chunked_prefill_latency(
        layers, prompt_len, context_len=0, kv=kv, accelerator=accelerator
    )


# Published numbers reproduced from Table III (reference constants; the
# cited accelerators are not re-simulated).  None = not reported (N/A).
PUBLISHED_INFERENCE_ACCELERATORS = {
    "ADEPT": {
        "ResNet50": (35698, 1587.99, 50.57),
        "AlexNet": (217201, 7476.78, 307.64),
    },
    "Albireo-C": {"ResNet50": None, "AlexNet": (7692, 344.17, 61.46)},
    "DNNARA": {"ResNet50": (9345, 100.0, 42.05), "AlexNet": None},
    "HolyLight": {"ResNet50": None, "AlexNet": (50000, 900.0, 2226.11)},
    "Eyeriss": {"ResNet50": None, "AlexNet": (35, 124.80, 2.85)},
    "Eyeriss v2": {"ResNet50": None, "AlexNet": (102, 174.80, None)},
    "TPU v3": {"ResNet50": (32716, 18.18, 18.00), "AlexNet": None},
    "UNPU": {"ResNet50": None, "AlexNet": (346, 1097.50, 21.62)},
    "Res-DNN": {"ResNet50": None, "AlexNet": (386.11, 427.78, None)},
}

# Paper-reported Mirage row of Table III, for shape validation.
PAPER_MIRAGE_TABLE3 = {
    "ResNet50": (10474, 1540.6, 43.2),
    "AlexNet": (64963, 1904.5, 267.67),
}


def table3_rows(accelerator: Optional[MirageAccelerator] = None, batch: int = 16):
    """(accelerator, model, ips, ips_per_w, ips_per_mm2) rows for Table III."""
    accelerator = accelerator or MirageAccelerator()
    rows = []
    for model in ("ResNet50", "AlexNet"):
        metrics = inference_metrics(model, batch=batch, accelerator=accelerator)
        rows.append(
            ("Mirage (measured)", model, metrics["ips"], metrics["ips_per_w"],
             metrics["ips_per_mm2"])
        )
    for name, per_model in PUBLISHED_INFERENCE_ACCELERATORS.items():
        for model, vals in per_model.items():
            if vals is None:
                continue
            rows.append((name, model, vals[0], vals[1], vals[2]))
    return rows
