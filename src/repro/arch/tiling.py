"""GEMM tiling and spatial-utilisation accounting.

A Mirage tile is a ``v x g`` weight block programmed into one MMVMU; a
GEMM ``(M, K) @ (K, N)`` therefore needs ``ceil(M/v) * ceil(K/g)`` tiles
(stationary-operand mapping), each streaming one vector per cycle.
Utilisation has two components the paper's Fig. 6 sweeps expose:

* **spatial fill** — real operand cells over padded tile cells (drops when
  layer dimensions don't divide the array; catastrophic for depthwise
  convolutions, hence MobileNet's curve);
* **array balance** — tiles distributed over ``A`` arrays leave some idle
  in the last round (drops when tile count isn't a multiple of ``A``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List

from .workloads import GemmShape, LayerShape, TrainingGemm, training_gemms

__all__ = ["TileMapping", "map_gemm", "spatial_utilization", "workload_utilization"]


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


@dataclass(frozen=True)
class TileMapping:
    """How one GEMM maps onto stationary ``v x g`` tiles.

    Attributes
    ----------
    gemm:
        The GEMM being mapped.
    stationary_rows / stationary_cols:
        Dimensions of the stationary operand (rows -> MDPUs, cols -> MMUs).
    stream_len:
        Vectors streamed through each tile (cycles per tile).
    row_tiles / col_tiles:
        Tile grid; total tiles include the GEMM ``count``.
    v, g:
        Array geometry used for the mapping.
    """

    gemm: GemmShape
    stationary_rows: int
    stationary_cols: int
    stream_len: int
    v: int
    g: int

    @property
    def row_tiles(self) -> int:
        return _ceil_div(self.stationary_rows, self.v)

    @property
    def col_tiles(self) -> int:
        return _ceil_div(self.stationary_cols, self.g)

    @property
    def tiles(self) -> int:
        return self.row_tiles * self.col_tiles * self.gemm.count

    @property
    def cycles_per_tile(self) -> int:
        return self.stream_len

    @property
    def useful_macs(self) -> int:
        return self.gemm.macs

    @property
    def padded_macs(self) -> int:
        """MACs if every tile cell were busy for every stream cycle."""
        return self.tiles * self.v * self.g * self.stream_len

    @property
    def fill(self) -> float:
        return self.useful_macs / self.padded_macs


def map_gemm(gemm: GemmShape, v: int, g: int, stationary: str = "first") -> TileMapping:
    """Map a GEMM with the chosen operand stationary.

    ``stationary="first"`` holds ``A(M, K)`` in the arrays and streams the
    ``N`` columns of ``B`` (DF1); ``"second"`` holds ``B^T(N, K)`` and
    streams the ``M`` rows of ``A`` (DF2), producing the transposed output.
    """
    if stationary == "first":
        return TileMapping(gemm, gemm.m, gemm.k, gemm.n, v, g)
    if stationary == "second":
        return TileMapping(gemm, gemm.n, gemm.k, gemm.m, v, g)
    raise ValueError(f"stationary must be 'first' or 'second', got {stationary!r}")


def spatial_utilization(
    gemms: Iterable[GemmShape], v: int, g: int, num_arrays: int = 1
) -> float:
    """Work-weighted utilisation of the MMU cells across a GEMM list.

    Combines spatial fill with array balance: a GEMM occupying ``t`` tiles
    runs in ``ceil(t / A)`` rounds of ``A`` arrays.
    """
    useful = 0
    provisioned = 0
    for gemm in gemms:
        mapping = map_gemm(gemm, v, g, "first")
        rounds = _ceil_div(mapping.tiles, num_arrays)
        useful += mapping.useful_macs
        provisioned += rounds * num_arrays * v * g * mapping.stream_len
    if provisioned == 0:
        raise ValueError("empty GEMM list")
    return useful / provisioned


def workload_utilization(
    layers: Iterable[LayerShape], v: int, g: int, num_arrays: int = 1
) -> float:
    """Utilisation over all three training GEMMs of every layer (Fig. 6)."""
    gemms = [tg.gemm for layer in layers for tg in training_gemms(layer)]
    return spatial_utilization(gemms, v, g, num_arrays)
