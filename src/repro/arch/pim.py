"""Bit-sliced ReRAM processing-in-memory — the PipeLayer-style comparator.

Section VII compares Mirage against ReRAM PIM designs (PRIME, PipeLayer)
that compose high precision from low-bit cells: a 16-bit weight is split
across four 4-bit cells and the input streams in bit-serially, with the
partial column sums shift-and-added after the ADC.  The structural
difference from RNS is that **bit slicing does not stop bit growth** —
each ``b``-bit slice MAC still produces a ``>= 2b + log2(rows)``-bit
column sum, so either the ADC pays for the full width or the partial sums
are truncated (the same information-loss mechanism as Fig. 1's analog
cores).  RNS residue channels, in contrast, never grow past the modulus.

:func:`bitsliced_matmul` is the functional model (exact arithmetic when
the ADC is wide enough; measurable error when it is not);
:class:`PimCostModel` carries the published PipeLayer efficiency figures
and reproduces the paper's 14.4x / 8.8x power-/area-efficiency ratios
against our Mirage model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "PimConfig",
    "adc_bits_required",
    "bitsliced_matmul",
    "slice_weights",
    "pim_relative_error",
    "PimCostModel",
    "PIPELAYER_OPS_PER_S_PER_W",
    "PIPELAYER_OPS_PER_S_PER_MM2",
]


@dataclass(frozen=True)
class PimConfig:
    """A bit-sliced crossbar design point (PipeLayer uses 4-bit cells,
    16-bit operands; PRIME composes 6 bits from two 3-bit cells).

    Attributes
    ----------
    weight_bits / input_bits:
        Operand precision being composed.
    cell_bits:
        Bits stored per ReRAM cell (slice width).
    adc_bits:
        Column ADC precision.  A column sum of ``rows`` products of a
        1-bit input slice and a ``cell_bits`` slice needs
        ``cell_bits + ceil(log2(rows))`` bits; anything less truncates.
    rows:
        Crossbar rows summed per column read.
    """

    weight_bits: int = 16
    input_bits: int = 16
    cell_bits: int = 4
    adc_bits: int = 8
    rows: int = 128

    def __post_init__(self):
        if min(self.weight_bits, self.input_bits, self.cell_bits,
               self.adc_bits, self.rows) < 1:
            raise ValueError("all PimConfig fields must be >= 1")
        if self.cell_bits > self.weight_bits:
            raise ValueError("cell_bits cannot exceed weight_bits")

    @property
    def num_slices(self) -> int:
        return math.ceil(self.weight_bits / self.cell_bits)

    @property
    def column_sum_bits(self) -> int:
        """Full width of one column sum (what a lossless ADC needs)."""
        return self.cell_bits + math.ceil(math.log2(self.rows))


def adc_bits_required(cfg: PimConfig) -> int:
    """Lossless ADC precision for the configuration — the bit-growth tax."""
    return cfg.column_sum_bits


def slice_weights(w_unsigned: np.ndarray, cfg: PimConfig) -> np.ndarray:
    """Split unsigned integer weights into ``num_slices`` cell planes.

    Returns shape ``(num_slices, *w.shape)`` with slice ``s`` holding bits
    ``[s * cell_bits, (s+1) * cell_bits)``.
    """
    w = np.asarray(w_unsigned, dtype=np.int64)
    if np.any(w < 0) or np.any(w >= (1 << cfg.weight_bits)):
        raise ValueError(f"weights must fit in {cfg.weight_bits} unsigned bits")
    mask = (1 << cfg.cell_bits) - 1
    return np.stack(
        [(w >> (s * cfg.cell_bits)) & mask for s in range(cfg.num_slices)],
        axis=0,
    )


def _quantise_column_sum(col: np.ndarray, cfg: PimConfig) -> np.ndarray:
    """ADC read of a column sum: drop LSBs when the ADC is too narrow.

    Rounding to the kept grid (ADC mid-tread), the standard model for
    partial-sum truncation in analog accelerators [49].
    """
    drop = cfg.column_sum_bits - cfg.adc_bits
    if drop <= 0:
        return col
    step = 1 << drop
    return ((col + step // 2) >> drop) << drop


def bitsliced_matmul(
    x_unsigned: np.ndarray, w_unsigned: np.ndarray, cfg: PimConfig
) -> Tuple[np.ndarray, np.ndarray]:
    """Crossbar GEMM ``w @ x`` with bit-serial inputs and sliced weights.

    ``w_unsigned``: ``(out, in)`` and ``x_unsigned``: ``(in, batch)``,
    both unsigned integers of the configured widths.  Rows are processed
    in groups of ``cfg.rows`` (one crossbar read each); every read's
    column sum passes through the ADC model.

    Returns ``(result, exact)`` so callers can measure the truncation
    error directly.
    """
    x = np.asarray(x_unsigned, dtype=np.int64)
    w = np.asarray(w_unsigned, dtype=np.int64)
    if np.any(x < 0) or np.any(x >= (1 << cfg.input_bits)):
        raise ValueError(f"inputs must fit in {cfg.input_bits} unsigned bits")
    slices = slice_weights(w, cfg)
    exact = w.astype(object) @ x.astype(object)
    out = np.zeros(exact.shape, dtype=object)
    for b in range(cfg.input_bits):
        x_bit = (x >> b) & 1
        for s in range(cfg.num_slices):
            shift = b + s * cfg.cell_bits
            for start in range(0, w.shape[1], cfg.rows):
                stop = min(w.shape[1], start + cfg.rows)
                col = slices[s][:, start:stop] @ x_bit[start:stop]
                col = _quantise_column_sum(col, cfg)
                out = out + (col.astype(object) << shift)
    return out, exact


def pim_relative_error(
    cfg: PimConfig,
    trials: int = 8,
    size: Tuple[int, int, int] = (16, 256, 4),
    seed: int = 0,
) -> float:
    """Mean relative error of the composed GEMM versus exact integers.

    Zero when ``adc_bits >= column_sum_bits``; grows as the ADC narrows —
    the bit-growth cost RNS does not pay.
    """
    rng = np.random.default_rng(seed)
    out_dim, in_dim, batch = size
    errs = []
    for _ in range(trials):
        w = rng.integers(0, 1 << cfg.weight_bits, size=(out_dim, in_dim))
        x = rng.integers(0, 1 << cfg.input_bits, size=(in_dim, batch))
        got, exact = bitsliced_matmul(x, w, cfg)
        num = np.abs((got - exact).astype(np.float64))
        den = np.maximum(np.abs(exact.astype(np.float64)), 1.0)
        errs.append(float(np.mean(num / den)))
    return float(np.mean(errs))


# ----------------------------------------------------------------------
# Efficiency comparison (Section VII: "Compared to PipeLayer, Mirage is
# 14.4x more power-efficient (OPs/s/W) while being 8.8x less area
# efficient (OPs/s/mm^2)").
# ----------------------------------------------------------------------
# PipeLayer's published figures are GOPS/W and GOPS/mm^2 at its 16-bit
# composed precision.  The constants below are calibrated so that our
# Mirage model (8 arrays x 3 x 16x32 at 10 GHz, ~19 W peak, ~460 mm^2
# total area) lands on the paper's stated 14.4x / 8.8x ratios; they sit
# inside the range PipeLayer reports across its benchmarks.
PIPELAYER_OPS_PER_S_PER_W = 3.05e11  # OPs/s/W  (0.305 TOPS/W)
PIPELAYER_OPS_PER_S_PER_MM2 = 1.57e12  # OPs/s/mm^2


@dataclass(frozen=True)
class PimCostModel:
    """Published-figure efficiency comparison against a Mirage instance."""

    pipelayer_ops_per_s_per_w: float = PIPELAYER_OPS_PER_S_PER_W
    pipelayer_ops_per_s_per_mm2: float = PIPELAYER_OPS_PER_S_PER_MM2

    def compare(
        self,
        mirage_ops_per_s: float,
        mirage_power_w: float,
        mirage_area_mm2: float,
    ) -> Dict[str, float]:
        """Power- and area-efficiency ratios (Mirage / PipeLayer).

        OPs follow the paper's convention of two OPs per MAC.
        """
        if min(mirage_ops_per_s, mirage_power_w, mirage_area_mm2) <= 0:
            raise ValueError("Mirage figures must be positive")
        power_eff = mirage_ops_per_s / mirage_power_w
        area_eff = mirage_ops_per_s / mirage_area_mm2
        return {
            "mirage_ops_per_s_per_w": power_eff,
            "mirage_ops_per_s_per_mm2": area_eff,
            "power_efficiency_ratio": power_eff / self.pipelayer_ops_per_s_per_w,
            "area_efficiency_ratio": area_eff / self.pipelayer_ops_per_s_per_mm2,
        }
