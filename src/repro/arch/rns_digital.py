"""Stay-in-RNS digital inference — the Res-DNN / RNSnet alternative.

Section VII contrasts Mirage's hybrid arithmetic (RNS for the GEMM,
binary/FP for everything else) with digital accelerators that keep the
*whole* network in residue form.  Staying in RNS saves the per-GEMM
reverse conversions but forces three awkward operations:

1. **periodic rescaling** — after every GEMM the fixed-point result
   carries twice the fractional bits and must be scaled back *in residue
   form* (an approximate, reconstruct-class operation);
2. **polynomial nonlinearities** — no comparisons in RNS, so sigmoids
   and tanhs become Taylor/least-squares polynomials whose every
   multiply needs another rescale (:mod:`repro.rns.nonlinear`);
3. **wide moduli** — the value never leaves the RNS, so the moduli set
   must absorb the worst-case layer output; the related works use
   >= 16-bit operand precision where Mirage needs 5.

:class:`PureRnsNetwork` runs a float-trained MLP end-to-end in the RNS
domain under a given :class:`PureRnsConfig`, counting every modular MAC,
rescale and sign detection, and flagging silent range overflows.
:class:`HybridRnsNetwork` is the Mirage-style reference: the *same*
quantised weights and the same moduli, but each GEMM result is decoded,
activated exactly in float and re-encoded.  The accuracy gap between the
two, at matched bit budgets, is the paper's Section VII argument made
runnable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..rns.arithmetic import mod_add, mod_matmul
from ..rns.conversion import crt_reverse_signed, forward_convert_signed
from ..rns.moduli import ModuliSet, special_moduli_set
from ..rns.nonlinear import (
    REFERENCE_FUNCTIONS,
    FixedPointCodec,
    lsq_coefficients,
    rns_polynomial,
    rns_relu,
)
from ..rns.scaling import approximate_scale

__all__ = [
    "PureRnsConfig",
    "DenseLayer",
    "OpCounters",
    "PureRnsNetwork",
    "HybridRnsNetwork",
    "float_reference_forward",
]


@dataclass(frozen=True)
class PureRnsConfig:
    """Numeric configuration of a stay-in-RNS inference pipeline.

    Attributes
    ----------
    k:
        Special-moduli parameter; the set is ``{2^k-1, 2^k, 2^k+1}``
        giving ~``3k`` bits of dynamic range that must hold the
        worst-case GEMM output.
    activation_frac_bits / weight_frac_bits:
        Fixed-point fractional bits for activations and weights.
    activation:
        ``"relu"`` (exact, via sign detection) or a name from
        :data:`repro.rns.nonlinear.REFERENCE_FUNCTIONS` (polynomial).
    poly_degree / poly_interval:
        Least-squares fit parameters for polynomial activations.
    """

    k: int = 8
    activation_frac_bits: int = 8
    weight_frac_bits: int = 8
    activation: str = "relu"
    poly_degree: int = 5
    poly_interval: Tuple[float, float] = (-4.0, 4.0)

    def __post_init__(self):
        if self.activation != "relu" and self.activation not in REFERENCE_FUNCTIONS:
            raise ValueError(
                f"unknown activation {self.activation!r}; use 'relu' or one of "
                f"{sorted(REFERENCE_FUNCTIONS)}"
            )
        if self.activation_frac_bits < 1 or self.weight_frac_bits < 1:
            raise ValueError("fractional bit widths must be >= 1")

    @property
    def mset(self) -> ModuliSet:
        return special_moduli_set(self.k)

    @property
    def operand_bits(self) -> int:
        """Residue-channel operand precision (the >= 16-bit claim)."""
        return self.mset.max_residue_bits()


@dataclass(frozen=True)
class DenseLayer:
    """One float-trained dense layer: ``y = act(W x + b)``."""

    weight: np.ndarray  # (out, in)
    bias: np.ndarray  # (out,)
    apply_activation: bool = True

    def __post_init__(self):
        if self.weight.ndim != 2 or self.bias.ndim != 1:
            raise ValueError("weight must be (out, in) and bias (out,)")
        if self.weight.shape[0] != self.bias.shape[0]:
            raise ValueError(
                f"bias length {self.bias.shape[0]} != rows {self.weight.shape[0]}"
            )


@dataclass
class OpCounters:
    """Digital-operation census of one inference pass."""

    modular_macs: int = 0
    rescales: int = 0
    sign_detections: int = 0
    overflows: int = 0
    reverse_conversions: int = 0
    forward_conversions: int = 0

    def merge(self, other: "OpCounters") -> None:
        self.modular_macs += other.modular_macs
        self.rescales += other.rescales
        self.sign_detections += other.sign_detections
        self.overflows += other.overflows
        self.reverse_conversions += other.reverse_conversions
        self.forward_conversions += other.forward_conversions

    def as_dict(self) -> Dict[str, int]:
        return {
            "modular_macs": self.modular_macs,
            "rescales": self.rescales,
            "sign_detections": self.sign_detections,
            "overflows": self.overflows,
            "reverse_conversions": self.reverse_conversions,
            "forward_conversions": self.forward_conversions,
        }


class _RnsMlpBase:
    """Shared weight quantisation and bookkeeping for both pipelines."""

    def __init__(self, layers: Sequence[DenseLayer], config: PureRnsConfig):
        if not layers:
            raise ValueError("need at least one layer")
        self.layers = list(layers)
        self.config = config
        self.mset = config.mset
        self.codec = FixedPointCodec(self.mset, config.activation_frac_bits)
        w_scale = 1 << config.weight_frac_bits
        self._w_int = [
            np.clip(
                np.rint(layer.weight * w_scale),
                -self.mset.psi,
                self.mset.psi,
            ).astype(np.int64)
            for layer in self.layers
        ]
        # Biases join the accumulator before rescaling, so they carry
        # activation + weight fractional bits.
        b_scale = 1 << (config.activation_frac_bits + config.weight_frac_bits)
        self._b_int = [
            np.clip(np.rint(layer.bias * b_scale), -self.mset.psi, self.mset.psi)
            .astype(np.int64)
            for layer in self.layers
        ]
        self._poly = None
        if config.activation != "relu":
            self._poly = lsq_coefficients(
                REFERENCE_FUNCTIONS[config.activation],
                config.poly_interval,
                config.poly_degree,
            )

    # ------------------------------------------------------------------
    def _gemm_residues(
        self, layer_idx: int, x_res: np.ndarray, counters: OpCounters
    ) -> np.ndarray:
        """Modular ``W x + b`` on residues; x_res is ``(n, in, batch)``."""
        w_res = forward_convert_signed(self._w_int[layer_idx], self.mset)
        out = mod_matmul(w_res, x_res, self.mset)
        b_res = forward_convert_signed(
            self._b_int[layer_idx][:, None], self.mset
        )
        out = mod_add(out, np.broadcast_to(b_res, out.shape), self.mset)
        rows, cols = out.shape[1], out.shape[2]
        counters.modular_macs += self.mset.n * rows * cols * x_res.shape[1]
        return out

    def _count_overflows(
        self, layer_idx: int, x_int: np.ndarray, counters: OpCounters
    ) -> np.ndarray:
        """Exact integer accumulator (simulator's eye view) for overflow
        detection; returns the exact pre-rescale integers."""
        exact = self._w_int[layer_idx].astype(object) @ x_int.astype(object)
        exact = exact + self._b_int[layer_idx][:, None]
        wrapped = np.abs(exact.astype(np.float64)) > self.mset.psi
        counters.overflows += int(np.count_nonzero(wrapped))
        return exact


class PureRnsNetwork(_RnsMlpBase):
    """MLP inference that never leaves the RNS domain until the output.

    The forward pass per layer: modular GEMM -> in-RNS rescale by the
    weight fractional bits -> in-RNS activation (sign-detected ReLU or a
    fixed-point polynomial).  One single reverse conversion at the very
    end — the selling point of the Section VII designs, bought at the
    cost counted in :class:`OpCounters`.
    """

    def forward(self, x: np.ndarray) -> Tuple[np.ndarray, OpCounters]:
        """Run ``x`` of shape ``(features, batch)``; returns logits and
        the operation census."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError(f"expected (features, batch), got {x.shape}")
        counters = OpCounters(forward_conversions=x.size)
        res = self.codec.encode(x)
        x_int = np.rint(np.clip(x, -self.codec.max_value, self.codec.max_value)
                        * self.codec.scale).astype(np.int64)
        for idx, layer in enumerate(self.layers):
            out = self._gemm_residues(idx, res, counters)
            exact = self._count_overflows(idx, x_int, counters)
            # Rescale the accumulator (fa + fw fractional bits) back to fa.
            out = approximate_scale(out, self.mset, self.config.weight_frac_bits)
            counters.rescales += out.shape[1] * out.shape[2]
            exact = exact >> self.config.weight_frac_bits
            if layer.apply_activation:
                if self.config.activation == "relu":
                    out = rns_relu(out, self.mset)
                    counters.sign_detections += out.shape[1] * out.shape[2]
                    exact = np.where(exact > 0, exact, 0)
                else:
                    out, per_value = rns_polynomial(out, self.codec, self._poly)
                    counters.rescales += per_value * out.shape[1] * out.shape[2]
                    fn = REFERENCE_FUNCTIONS[self.config.activation]
                    rounded = np.rint(
                        fn(exact.astype(np.float64) / self.codec.scale)
                        * self.codec.scale
                    )
                    exact = np.frompyfunc(int, 1, 1)(rounded)
            res = out
            x_int = np.asarray(exact, dtype=object)
        counters.reverse_conversions += res.shape[1] * res.shape[2]
        logits = crt_reverse_signed(res, self.mset).astype(np.float64)
        return logits / self.codec.scale, counters


class HybridRnsNetwork(_RnsMlpBase):
    """Mirage-style hybrid: RNS GEMM, float rescale/activation outside.

    Identical quantised weights and moduli; after each modular GEMM the
    result is reverse-converted, rescaled and activated exactly in
    FP64, then re-encoded.  Conversion counts grow, awkward in-RNS ops
    disappear — the other side of the Section VII trade.
    """

    def forward(self, x: np.ndarray) -> Tuple[np.ndarray, OpCounters]:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError(f"expected (features, batch), got {x.shape}")
        counters = OpCounters()
        act = np.clip(x, -self.codec.max_value, self.codec.max_value)
        for idx, layer in enumerate(self.layers):
            res = self.codec.encode(act)
            counters.forward_conversions += act.size
            out = self._gemm_residues(idx, res, counters)
            self._count_overflows(
                idx,
                np.rint(act * self.codec.scale).astype(np.int64),
                counters,
            )
            ints = crt_reverse_signed(out, self.mset).astype(np.float64)
            counters.reverse_conversions += ints.size
            scale = float(
                1 << (self.config.activation_frac_bits + self.config.weight_frac_bits)
            )
            act = ints / scale
            if layer.apply_activation:
                if self.config.activation == "relu":
                    act = np.maximum(act, 0.0)
                else:
                    act = REFERENCE_FUNCTIONS[self.config.activation](act)
        return act, counters


def float_reference_forward(
    layers: Sequence[DenseLayer], x: np.ndarray, activation: str = "relu"
) -> np.ndarray:
    """FP64 forward pass (the accuracy ceiling for both pipelines)."""
    act = np.asarray(x, dtype=np.float64)
    fn = (lambda v: np.maximum(v, 0.0)) if activation == "relu" else (
        REFERENCE_FUNCTIONS[activation]
    )
    for layer in layers:
        act = layer.weight @ act + layer.bias[:, None]
        if layer.apply_activation:
            act = fn(act)
    return act
