"""Systolic-array baseline and the iso-energy / iso-area scaling rules.

Following Section VI-C: the baseline's energy consists of its MAC units
only (a deliberately generous baseline); the array geometry stays 16x32 and
the *number* of arrays scales —

* **iso-energy**: the baseline gets as many MAC units as match Mirage's
  energy per (logical) MAC, i.e. ``N_sa = N_mirage * E_mirage / E_fmt``;
* **iso-area**: the baseline gets as many MAC units as fit in Mirage's
  total area, ``N_sa = A_mirage / a_fmt``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from .config import DataFormat, MirageConfig, SystolicConfig, TABLE_II_FORMATS
from .dataflow import SYSTOLIC_DATAFLOWS
from .latency import step_latency, systolic_latency_fn
from .workloads import LayerShape, total_training_macs

__all__ = [
    "systolic_step_energy",
    "systolic_step_latency",
    "iso_energy_config",
    "iso_area_config",
    "SystolicResult",
    "evaluate_systolic",
]


def systolic_step_energy(layers: Sequence[LayerShape], fmt: DataFormat) -> float:
    """Energy (J) of one training step: MAC energy for the useful work."""
    return total_training_macs(layers) * fmt.energy_per_mac


def systolic_step_latency(
    layers: Sequence[LayerShape],
    config: SystolicConfig,
    policy: str = "OPT2",
) -> float:
    """Latency (s) of one training step under a scheduling policy."""
    return step_latency(
        layers, systolic_latency_fn(config), SYSTOLIC_DATAFLOWS, policy
    )


def _arrays_for_macs(target_macs: float, rows: int, cols: int) -> int:
    return max(1, round(target_macs / (rows * cols)))


def iso_energy_config(
    fmt: DataFormat,
    mirage: MirageConfig,
    mirage_energy_per_mac: float,
    rows: int = 32,
    cols: int = 16,
) -> SystolicConfig:
    """Baseline sized to the same energy per MAC operation as Mirage."""
    target = mirage.macs_per_cycle * (mirage_energy_per_mac / fmt.energy_per_mac)
    return SystolicConfig(fmt, _arrays_for_macs(target, rows, cols), rows, cols)


def iso_area_config(
    fmt: DataFormat,
    mirage_area: float,
    rows: int = 32,
    cols: int = 16,
) -> SystolicConfig:
    """Baseline sized to the same silicon area as Mirage."""
    if not (fmt.area_per_mac > 0):  # NaN (FMAC) or zero
        raise ValueError(f"format {fmt.name} has no published area per MAC")
    target = mirage_area / fmt.area_per_mac
    return SystolicConfig(fmt, _arrays_for_macs(target, rows, cols), rows, cols)


@dataclass(frozen=True)
class SystolicResult:
    """Training-step metrics of one baseline design point."""

    fmt: str
    num_arrays: int
    runtime_s: float
    energy_j: float

    @property
    def edp(self) -> float:
        return self.runtime_s * self.energy_j

    @property
    def power_w(self) -> float:
        return self.energy_j / self.runtime_s


def evaluate_systolic(
    layers: Sequence[LayerShape],
    config: SystolicConfig,
    policy: str = "OPT2",
) -> SystolicResult:
    """Run the latency + energy models for one baseline configuration."""
    runtime = systolic_step_latency(layers, config, policy)
    energy = systolic_step_energy(layers, config.fmt)
    return SystolicResult(config.fmt.name, config.num_arrays, runtime, energy)
