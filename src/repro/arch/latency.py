"""Cycle-accounting latency models for Mirage and the systolic baseline.

Mirage (Section V-B1): each tile load reprograms the phase shifters (5 ns,
core inoperable), then one modular MVM completes every 0.1 ns; tiles are
spread across the RNS-MMVMUs; SRAM/digital stages are 10-way interleaved
and pipelined so they never limit throughput (Section IV-C) — the model
asserts that property instead of simulating each sub-array.

Systolic baseline: ``R x C`` MAC grids with fill/drain overheads per output
or stationary tile, clocked per data format.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from .config import MirageConfig, SystolicConfig
from .dataflow import MIRAGE_DATAFLOWS, SYSTOLIC_DATAFLOWS
from .tiling import map_gemm
from .workloads import GemmShape, LayerShape, TrainingGemm, training_gemms

__all__ = [
    "mirage_gemm_latency",
    "mirage_gemm_components",
    "mirage_latency_fn",
    "systolic_gemm_latency",
    "systolic_latency_fn",
    "step_latency",
    "LayerLatency",
    "per_layer_latencies",
]


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


# ----------------------------------------------------------------------
# Mirage
# ----------------------------------------------------------------------
def mirage_gemm_latency(
    gemm: GemmShape, config: MirageConfig, dataflow: str = "DF1"
) -> float:
    """Seconds to run one GEMM on Mirage under DF1 or DF2.

    Tiles of the stationary operand are distributed over the
    ``num_arrays`` RNS-MMVMUs; each costs one reprogram plus one cycle per
    streamed vector.
    """
    if dataflow not in MIRAGE_DATAFLOWS:
        raise ValueError(
            f"Mirage supports {MIRAGE_DATAFLOWS} (DF3 would need per-cycle "
            f"phase-shifter updates); got {dataflow!r}"
        )
    stationary = "first" if dataflow == "DF1" else "second"
    mapping = map_gemm(gemm, config.v, config.g, stationary)
    rounds = _ceil_div(mapping.tiles, config.num_arrays)
    per_tile = config.reprogram_time_s + mapping.stream_len * config.cycle_time_s
    return rounds * per_tile


def mirage_gemm_components(
    gemm: GemmShape, config: MirageConfig, dataflow: str = "DF1"
) -> Dict[str, float]:
    """Split one Mirage GEMM's latency into its physical components.

    Returns ``total_s`` (**bit-identical** to
    :func:`mirage_gemm_latency` — same mapping, same arithmetic),
    ``reprogram_s`` (phase-shifter settles: ``rounds * reprogram_time``,
    exact by construction) and ``stream_s`` defined as the residual
    ``total_s - reprogram_s``.  The residual convention matters for the
    hardware-attribution profiler: re-adding ``reprogram_s + stream_s``
    reproduces ``total_s`` only up to rounding, so exactness gates are
    stated on ``total_s``; the split is a reporting view.
    """
    if dataflow not in MIRAGE_DATAFLOWS:
        raise ValueError(
            f"Mirage supports {MIRAGE_DATAFLOWS}; got {dataflow!r}"
        )
    stationary = "first" if dataflow == "DF1" else "second"
    mapping = map_gemm(gemm, config.v, config.g, stationary)
    rounds = _ceil_div(mapping.tiles, config.num_arrays)
    per_tile = config.reprogram_time_s + mapping.stream_len * config.cycle_time_s
    total = rounds * per_tile
    reprogram = rounds * config.reprogram_time_s
    return {
        "total_s": total,
        "reprogram_s": reprogram,
        "stream_s": total - reprogram,
        "rounds": float(rounds),
    }


def mirage_latency_fn(config: MirageConfig):
    """Latency function for the dataflow schedulers."""

    def fn(tg: TrainingGemm, dataflow: str) -> float:
        return mirage_gemm_latency(tg.gemm, config, dataflow)

    return fn


# ----------------------------------------------------------------------
# Systolic baseline
# ----------------------------------------------------------------------
def systolic_gemm_latency(
    gemm: GemmShape, config: SystolicConfig, dataflow: str = "DF3"
) -> float:
    """Seconds for one GEMM on the systolic baseline.

    * DF3 (output stationary): an output tile of ``R x C`` accumulates for
      ``K`` cycles with ``R + C`` fill/drain.
    * DF1/DF2 (stationary first/second operand): loading the stationary
      tile costs ``R`` cycles, then the counter-operand streams with ``C``
      drain cycles.
    """
    r, c = config.rows, config.cols
    if dataflow == "DF3":
        tiles = _ceil_div(gemm.m, r) * _ceil_div(gemm.n, c) * gemm.count
        per_tile = gemm.k + r + c
    elif dataflow == "DF1":
        tiles = _ceil_div(gemm.m, r) * _ceil_div(gemm.k, c) * gemm.count
        per_tile = r + gemm.n + c
    elif dataflow == "DF2":
        tiles = _ceil_div(gemm.n, r) * _ceil_div(gemm.k, c) * gemm.count
        per_tile = r + gemm.m + c
    else:
        raise ValueError(f"dataflow must be one of {SYSTOLIC_DATAFLOWS}")
    rounds = _ceil_div(tiles, config.num_arrays)
    return rounds * per_tile * config.cycle_time_s


def systolic_latency_fn(config: SystolicConfig):
    """Latency function for the dataflow schedulers."""

    def fn(tg: TrainingGemm, dataflow: str) -> float:
        return systolic_gemm_latency(tg.gemm, config, dataflow)

    return fn


# ----------------------------------------------------------------------
# Step-level aggregation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LayerLatency:
    """Per-layer, per-role latency under each dataflow (Fig. 7a rows)."""

    layer: str
    role: str
    latency_by_dataflow: Dict[str, float]

    def best(self) -> float:
        return min(self.latency_by_dataflow.values())


def per_layer_latencies(
    layers: Sequence[LayerShape],
    latency_fn,
    allowed: Sequence[str],
) -> List[LayerLatency]:
    """Latency of every training GEMM under every allowed dataflow."""
    out: List[LayerLatency] = []
    for layer in layers:
        for tg in training_gemms(layer):
            out.append(
                LayerLatency(
                    tg.layer,
                    tg.role,
                    {df: latency_fn(tg, df) for df in allowed},
                )
            )
    return out


def step_latency(
    layers: Sequence[LayerShape],
    latency_fn,
    allowed: Sequence[str],
    policy: str = "OPT2",
) -> float:
    """Latency of one training step under a scheduling policy.

    ``policy`` is a fixed dataflow name, ``"OPT1"`` or ``"OPT2"``.
    """
    from .dataflow import schedule_fixed, schedule_opt1, schedule_opt2

    if policy == "OPT1":
        return schedule_opt1(layers, latency_fn, allowed).total_latency
    if policy == "OPT2":
        return schedule_opt2(layers, latency_fn, allowed).total_latency
    return schedule_fixed(layers, latency_fn, policy, allowed).total_latency
