"""Roofline analysis of Mirage and the systolic baselines.

The paper sizes Mirage's digital side so that SRAM and conversion
bandwidth exactly feed the 10 GHz photonic core (Section IV-C) and notes
that SRAM dominates power because everything is stored in FP32.  A
roofline view makes both statements quantitative: each training GEMM has
an *arithmetic intensity* (MACs per byte moved between SRAM and the
compute units), and the achievable throughput is
``min(peak_macs, intensity * bandwidth)``.

* :func:`gemm_intensity` — MACs/byte for one tiled training GEMM under
  Mirage's dataflow (stationary operand loaded once per tile, streaming
  operand re-read per tile row, partial outputs read+written per tile
  column).
* :func:`mirage_bandwidth` — the interleaved-SRAM bandwidth the
  Section IV-C design provides.
* :func:`roofline_point` / :func:`workload_roofline` — where each layer
  of a workload lands: photonic-bound or SRAM-bound, and the utilisation
  the memory system permits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .config import MirageConfig, SystolicConfig
from .tiling import map_gemm
from .workloads import LayerShape, TrainingGemm, training_gemms

__all__ = [
    "BYTES_PER_VALUE",
    "gemm_traffic_bytes",
    "gemm_intensity",
    "mirage_bandwidth",
    "systolic_bandwidth",
    "RooflinePoint",
    "roofline_point",
    "workload_roofline",
]

BYTES_PER_VALUE = 4  # everything is stored in FP32 (Section IV-C)


def gemm_traffic_bytes(gemm, v: int, g: int) -> int:
    """SRAM bytes moved for one tiled GEMM (``m x k @ k x n``).

    Accounting mirrors the Fig. 2 dataflow:

    * the stationary operand tile is loaded once per tile:
      ``m * k`` values in total;
    * the streaming operand is re-read for every tile row it meets:
      ``k * n * ceil(m / v)`` values;
    * every partial output is read-accumulate-written per tile column:
      ``2 * m * n * ceil(k / g)`` values.
    """
    mapping = map_gemm(gemm, v, g)
    stationary = gemm.m * gemm.k
    streaming = gemm.k * gemm.n * mapping.row_tiles
    # The reduction (k) axis is tiled across the g columns of the array:
    # each output element accumulates one partial per column tile.
    partials = 2 * gemm.m * gemm.n * mapping.col_tiles
    return (stationary + streaming + partials) * BYTES_PER_VALUE


def gemm_intensity(gemm, v: int, g: int) -> float:
    """Arithmetic intensity (MACs per SRAM byte) of one tiled GEMM."""
    return gemm.macs / gemm_traffic_bytes(gemm, v, g)


def mirage_bandwidth(config: MirageConfig, line_words: Optional[int] = None) -> float:
    """Aggregate SRAM bandwidth (bytes/s) of the interleaved design.

    Each RNS-MMVMU owns ``interleave_factor`` sub-arrays per SRAM type
    (three types), each completing one *vector-wide* transaction per
    digital clock (the Section IV-C provisioning rule and the unit used
    by :class:`repro.arch.memory.MemorySystemModel`).  ``line_words``
    defaults to the ``v``-wide output line, the widest transaction.
    """
    if line_words is None:
        line_words = config.v
    words_per_s = (
        config.num_arrays
        * config.interleave_factor
        * 3  # activation / weight / gradient arrays
        * config.digital_clock_hz
        * line_words
    )
    return words_per_s * BYTES_PER_VALUE


def systolic_bandwidth(config: SystolicConfig) -> float:
    """Edge bandwidth of the systolic baseline: one word per row and per
    column per cycle (input skew + output drain)."""
    words_per_s = config.num_arrays * (config.rows + config.cols) * config.fmt.clock_hz
    return words_per_s * BYTES_PER_VALUE


@dataclass(frozen=True)
class RooflinePoint:
    """One GEMM's position on the roofline."""

    layer: str
    role: str
    intensity: float  # MACs/byte
    peak_macs_per_s: float
    bandwidth_bound: float  # MACs/s allowed by SRAM traffic
    attainable: float  # min(peak, bound)

    @property
    def memory_bound(self) -> bool:
        return self.bandwidth_bound < self.peak_macs_per_s

    @property
    def efficiency(self) -> float:
        """Fraction of peak the memory system permits."""
        return self.attainable / self.peak_macs_per_s


def roofline_point(
    tg: TrainingGemm, config: MirageConfig
) -> RooflinePoint:
    """Roofline placement of one training GEMM on a Mirage instance."""
    intensity = gemm_intensity(tg.gemm, config.v, config.g)
    peak = config.peak_macs_per_s
    bound = intensity * mirage_bandwidth(config)
    return RooflinePoint(
        layer=tg.layer,
        role=tg.role,
        intensity=intensity,
        peak_macs_per_s=peak,
        bandwidth_bound=bound,
        attainable=min(peak, bound),
    )


def workload_roofline(
    layers: Sequence[LayerShape],
    config: Optional[MirageConfig] = None,
) -> List[RooflinePoint]:
    """Roofline points for every training GEMM of a workload."""
    config = config or MirageConfig()
    points = []
    for layer in layers:
        for tg in training_gemms(layer):
            points.append(roofline_point(tg, config))
    return points
