"""Design-space sweep: the Section VI-A methodology as a reusable tool.

Enumerates Mirage configurations over (bm, g, v, number of arrays),
filters by the Eq. 13 moduli constraint, evaluates energy-per-MAC, area,
peak power and workload-weighted utilisation, and extracts the Pareto
frontier — the machinery behind the paper's choice of bm=4, g=16, 16x32,
8 arrays, packaged so downstream users can re-run it for their own
workload mixes or device assumptions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..rns.moduli import choose_k_min
from .area import mirage_total_area
from .config import MirageConfig
from .energy import EnergyParams, mirage_energy_per_mac, peak_power_breakdown
from .tiling import workload_utilization
from .workloads import workload, workload_names

__all__ = ["DesignPoint", "sweep_designs", "pareto_frontier", "default_design_space"]


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated Mirage configuration."""

    bm: int
    g: int
    v: int
    num_arrays: int
    k: int
    energy_per_mac: float  # J
    area: float  # m^2
    peak_power: float  # W
    utilization: float  # [0, 1], workload-weighted
    peak_macs_per_s: float

    @property
    def accurate(self) -> bool:
        """Accuracy feasibility from the paper's Fig. 5a: bm=4 holds FP32
        parity up to g=16, bm>=5 up to g=64; bm<=3 never does."""
        if self.bm >= 5:
            return self.g <= 64
        if self.bm == 4:
            return self.g <= 16
        return False

    @property
    def effective_macs_per_s(self) -> float:
        return self.peak_macs_per_s * self.utilization

    @property
    def effective_macs_per_joule(self) -> float:
        return 1.0 / self.energy_per_mac * self.utilization

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance on (energy/MAC ↓, area ↓, eff. throughput ↑)."""
        no_worse = (
            self.energy_per_mac <= other.energy_per_mac
            and self.area <= other.area
            and self.effective_macs_per_s >= other.effective_macs_per_s
        )
        strictly = (
            self.energy_per_mac < other.energy_per_mac
            or self.area < other.area
            or self.effective_macs_per_s > other.effective_macs_per_s
        )
        return no_worse and strictly


def default_design_space() -> dict:
    """The grid the paper's sensitivity analysis walks."""
    return {
        "bm": (3, 4, 5),
        "g": (8, 16, 32),
        "v": (16, 32, 64),
        "num_arrays": (4, 8, 16),
    }


def sweep_designs(
    space: Optional[dict] = None,
    workloads: Optional[Sequence[str]] = None,
    params: Optional[EnergyParams] = None,
) -> List[DesignPoint]:
    """Evaluate every Eq.-13-feasible point of the design space."""
    space = space or default_design_space()
    params = params or EnergyParams()
    names = list(workloads or workload_names())
    layer_sets = [workload(n) for n in names]
    points: List[DesignPoint] = []
    for bm in space["bm"]:
        for g in space["g"]:
            try:
                k = choose_k_min(bm, g)
            except ValueError:
                continue
            for v in space["v"]:
                for arrays in space["num_arrays"]:
                    cfg = MirageConfig(num_arrays=arrays, v=v, g=g, k=k, bm=bm)
                    util = sum(
                        workload_utilization(layers, v, g, arrays)
                        for layers in layer_sets
                    ) / len(layer_sets)
                    points.append(
                        DesignPoint(
                            bm=bm,
                            g=g,
                            v=v,
                            num_arrays=arrays,
                            k=k,
                            energy_per_mac=mirage_energy_per_mac(cfg, params),
                            area=mirage_total_area(cfg),
                            peak_power=sum(
                                peak_power_breakdown(cfg, params).values()
                            ),
                            utilization=util,
                            peak_macs_per_s=cfg.peak_macs_per_s,
                        )
                    )
    return points


def pareto_frontier(
    points: Iterable[DesignPoint], require_accurate: bool = True
) -> List[DesignPoint]:
    """Non-dominated subset under (energy ↓, area ↓, eff. throughput ↑).

    ``require_accurate`` restricts the search to points that meet the
    Fig. 5a accuracy bar first — the paper's selection procedure (bm=3 is
    always cheapest but never accurate).
    """
    pts = list(points)
    if require_accurate:
        pts = [p for p in pts if p.accurate]
    frontier = [
        p for p in pts if not any(q.dominates(p) for q in pts if q is not p)
    ]
    frontier.sort(key=lambda p: (p.energy_per_mac, p.area))
    return frontier
