"""Top-level Mirage accelerator model and the Fig. 8 comparison harness.

Combines the latency, energy and area models into training-step metrics
(runtime, energy, EDP, power) and runs the iso-energy and iso-area
comparisons against the systolic baselines of Table II.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from .area import mirage_total_area
from .config import DataFormat, MirageConfig, SystolicConfig, TABLE_II_FORMATS
from .dataflow import MIRAGE_DATAFLOWS
from .energy import EnergyParams, MirageEnergyModel
from .latency import mirage_latency_fn, step_latency
from .systolic import (
    SystolicResult,
    evaluate_systolic,
    iso_area_config,
    iso_energy_config,
)
from .workloads import LayerShape, total_training_macs, workload

__all__ = ["MirageResult", "MirageAccelerator", "ComparisonRow", "compare_workload"]


@dataclass(frozen=True)
class MirageResult:
    """Training-step metrics of a Mirage instance."""

    runtime_s: float
    energy_j: float
    area_m2: float

    @property
    def edp(self) -> float:
        return self.runtime_s * self.energy_j

    @property
    def power_w(self) -> float:
        return self.energy_j / self.runtime_s


class MirageAccelerator:
    """Facade over the architectural models for a single configuration."""

    def __init__(
        self,
        config: Optional[MirageConfig] = None,
        energy_params: Optional[EnergyParams] = None,
    ):
        self.config = config or MirageConfig()
        if not self.config.validate_bfp():
            raise ValueError(
                f"configuration violates Eq. 13: bm={self.config.bm}, "
                f"g={self.config.g}, k={self.config.k}"
            )
        self.energy_model = MirageEnergyModel(
            self.config, energy_params or EnergyParams()
        )

    # ------------------------------------------------------------------
    def step_latency(self, layers: Sequence[LayerShape], policy: str = "OPT2") -> float:
        """Seconds per training step (batch of the workload's batch size)."""
        return step_latency(
            layers, mirage_latency_fn(self.config), MIRAGE_DATAFLOWS, policy
        )

    def step_energy(self, layers: Sequence[LayerShape], runtime_s: float) -> float:
        return self.energy_model.step_energy(total_training_macs(layers), runtime_s)

    def evaluate(self, layers: Sequence[LayerShape], policy: str = "OPT2") -> MirageResult:
        runtime = self.step_latency(layers, policy)
        energy = self.step_energy(layers, runtime)
        return MirageResult(runtime, energy, mirage_total_area(self.config))

    # ------------------------------------------------------------------
    @property
    def energy_per_mac(self) -> float:
        return self.energy_model.energy_per_mac()

    @property
    def total_area(self) -> float:
        return mirage_total_area(self.config)


@dataclass(frozen=True)
class ComparisonRow:
    """Mirage-normalised metrics of one baseline in one scenario."""

    workload: str
    fmt: str
    scenario: str  # iso_energy | iso_area
    num_arrays: int
    runtime_ratio: float  # baseline / Mirage (>1 => Mirage faster)
    edp_ratio: float
    power_ratio: float


def compare_workload(
    name: str,
    accelerator: Optional[MirageAccelerator] = None,
    formats: Optional[Dict[str, DataFormat]] = None,
    policy: str = "OPT2",
) -> Dict[str, object]:
    """Run the full Fig. 8 comparison for one workload.

    Returns the Mirage result plus one :class:`ComparisonRow` per
    (format, scenario).  FMAC has no published area, so it appears in the
    iso-energy scenario only — as in the paper's Fig. 8.
    """
    accelerator = accelerator or MirageAccelerator()
    formats = formats or TABLE_II_FORMATS
    layers = workload(name)
    mirage_result = accelerator.evaluate(layers, policy)
    rows = []
    for fmt in formats.values():
        cfg_e = iso_energy_config(fmt, accelerator.config, accelerator.energy_per_mac)
        res_e = evaluate_systolic(layers, cfg_e, policy)
        rows.append(
            ComparisonRow(
                name,
                fmt.name,
                "iso_energy",
                cfg_e.num_arrays,
                res_e.runtime_s / mirage_result.runtime_s,
                res_e.edp / mirage_result.edp,
                res_e.power_w / mirage_result.power_w,
            )
        )
        if fmt.area_per_mac > 0:  # NaN-safe: excludes FMAC
            cfg_a = iso_area_config(fmt, accelerator.total_area)
            res_a = evaluate_systolic(layers, cfg_a, policy)
            rows.append(
                ComparisonRow(
                    name,
                    fmt.name,
                    "iso_area",
                    cfg_a.num_arrays,
                    res_a.runtime_s / mirage_result.runtime_s,
                    res_a.edp / mirage_result.edp,
                    res_a.power_w / mirage_result.power_w,
                )
            )
    return {"mirage": mirage_result, "rows": rows}
