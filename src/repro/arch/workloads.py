"""Full-size layer shapes of the paper's seven benchmark DNNs.

The performance/energy simulation operates on GEMM dimensions only, so the
real (paper-scale) models are represented exactly: ImageNet CNNs at
224x224, YOLOv2 at 416x416, and the 12-layer / 12-head / hidden-768
transformer.  Each layer yields the three training GEMMs (forward,
input-gradient, weight-gradient) of Section II-A.

GEMM convention: ``C(M, N) = A(M, K) @ B(K, N)``; convolutions are lowered
im2col-style (``M = C_out``, ``K = C_in k^2``, ``N = batch * H_out W_out``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

__all__ = [
    "GemmShape",
    "LayerShape",
    "training_gemms",
    "WORKLOADS",
    "workload",
    "workload_names",
    "total_training_macs",
]

DEFAULT_BATCH = 256


@dataclass(frozen=True)
class GemmShape:
    """One GEMM instance: ``(M, K) @ (K, N)``, repeated ``count`` times."""

    m: int
    k: int
    n: int
    count: int = 1

    @property
    def macs(self) -> int:
        return self.m * self.k * self.n * self.count

    def transpose(self) -> "GemmShape":
        return GemmShape(self.n, self.k, self.m, self.count)


@dataclass(frozen=True)
class LayerShape:
    """A DNN layer reduced to its forward GEMM."""

    name: str
    gemm: GemmShape
    kind: str = "conv"  # conv | linear | attention | depthwise


@dataclass(frozen=True)
class TrainingGemm:
    """A GEMM instance tagged with its role in the training step."""

    layer: str
    role: str  # fwd | dx | dw
    gemm: GemmShape


def training_gemms(layer: LayerShape, include_dx_first_layer: bool = True) -> List[TrainingGemm]:
    """The three training GEMMs of a layer (Eqs. 1-3).

    * forward: ``O(M,N) = W(M,K) X(K,N)``
    * input grad: ``dX(K,N) = W^T(K,M) dO(M,N)``
    * weight grad: ``dW(M,K) = dO(M,N) X^T(N,K)``
    """
    g = layer.gemm
    out = [TrainingGemm(layer.name, "fwd", g)]
    if include_dx_first_layer:
        out.append(TrainingGemm(layer.name, "dx", GemmShape(g.k, g.m, g.n, g.count)))
    out.append(TrainingGemm(layer.name, "dw", GemmShape(g.m, g.n, g.k, g.count)))
    return out


def _conv(name: str, cout: int, cin: int, k: int, out_hw: int,
          batch: int, kind: str = "conv") -> LayerShape:
    return LayerShape(name, GemmShape(cout, cin * k * k, batch * out_hw * out_hw), kind)


def _fc(name: str, cout: int, cin: int, batch: int) -> LayerShape:
    return LayerShape(name, GemmShape(cout, cin, batch), "linear")


# ----------------------------------------------------------------------
# Model definitions
# ----------------------------------------------------------------------
def alexnet(batch: int = DEFAULT_BATCH) -> List[LayerShape]:
    """AlexNet (8 learned layers, as plotted in Fig. 7a)."""
    return [
        _conv("conv1", 96, 3, 11, 55, batch),
        _conv("conv2", 256, 96, 5, 27, batch),
        _conv("conv3", 384, 256, 3, 13, batch),
        _conv("conv4", 384, 384, 3, 13, batch),
        _conv("conv5", 256, 384, 3, 13, batch),
        _fc("fc6", 4096, 256 * 6 * 6, batch),
        _fc("fc7", 4096, 4096, batch),
        _fc("fc8", 1000, 4096, batch),
    ]


def _resnet_stage(layers, name, blocks, cin, width, hw, batch, bottleneck):
    for b in range(blocks):
        stride_hw = hw
        if bottleneck:
            cout = width * 4
            layers.append(_conv(f"{name}.{b}.conv1", width, cin, 1, stride_hw, batch))
            layers.append(_conv(f"{name}.{b}.conv2", width, width, 3, stride_hw, batch))
            layers.append(_conv(f"{name}.{b}.conv3", cout, width, 1, stride_hw, batch))
            if b == 0:
                layers.append(_conv(f"{name}.{b}.down", cout, cin, 1, stride_hw, batch))
            cin = cout
        else:
            layers.append(_conv(f"{name}.{b}.conv1", width, cin, 3, stride_hw, batch))
            layers.append(_conv(f"{name}.{b}.conv2", width, width, 3, stride_hw, batch))
            if b == 0 and cin != width:
                layers.append(_conv(f"{name}.{b}.down", width, cin, 1, stride_hw, batch))
            cin = width
    return cin


def resnet18(batch: int = DEFAULT_BATCH) -> List[LayerShape]:
    layers = [_conv("conv1", 64, 3, 7, 112, batch)]
    cin = 64
    for i, (blocks, width, hw) in enumerate([(2, 64, 56), (2, 128, 28),
                                             (2, 256, 14), (2, 512, 7)]):
        cin = _resnet_stage(layers, f"layer{i+1}", blocks, cin, width, hw, batch, False)
    layers.append(_fc("fc", 1000, 512, batch))
    return layers


def resnet50(batch: int = DEFAULT_BATCH) -> List[LayerShape]:
    layers = [_conv("conv1", 64, 3, 7, 112, batch)]
    cin = 64
    for i, (blocks, width, hw) in enumerate([(3, 64, 56), (4, 128, 28),
                                             (6, 256, 14), (3, 512, 7)]):
        cin = _resnet_stage(layers, f"layer{i+1}", blocks, cin, width, hw, batch, True)
    layers.append(_fc("fc", 1000, 2048, batch))
    return layers


def vgg16(batch: int = DEFAULT_BATCH) -> List[LayerShape]:
    cfg = [  # (cout, cin, out_hw, convs)
        (64, 3, 224, 1), (64, 64, 224, 1),
        (128, 64, 112, 1), (128, 128, 112, 1),
        (256, 128, 56, 1), (256, 256, 56, 2),
        (512, 256, 28, 1), (512, 512, 28, 2),
        (512, 512, 14, 3),
    ]
    layers: List[LayerShape] = []
    idx = 1
    for cout, cin, hw, convs in cfg:
        for _ in range(convs):
            layers.append(_conv(f"conv{idx}", cout, cin, 3, hw, batch))
            cin = cout
            idx += 1
    layers.append(_fc("fc1", 4096, 512 * 7 * 7, batch))
    layers.append(_fc("fc2", 4096, 4096, batch))
    layers.append(_fc("fc3", 1000, 4096, batch))
    return layers


def mobilenet_v2(batch: int = DEFAULT_BATCH) -> List[LayerShape]:
    """MobileNetV2 inverted residual stacks (expand / depthwise / project)."""
    layers = [_conv("stem", 32, 3, 3, 112, batch)]
    cin, hw = 32, 112
    cfg = [  # (expansion t, cout, repeats, stride)
        (1, 16, 1, 1), (6, 24, 2, 2), (6, 32, 3, 2), (6, 64, 4, 2),
        (6, 96, 3, 1), (6, 160, 3, 2), (6, 320, 1, 1),
    ]
    idx = 0
    for t, cout, reps, stride in cfg:
        for r in range(reps):
            s = stride if r == 0 else 1
            out_hw = hw // s
            cmid = cin * t
            if t != 1:
                layers.append(_conv(f"block{idx}.expand", cmid, cin, 1, hw, batch))
            # Depthwise: one k^2-deep dot product per channel.
            layers.append(
                LayerShape(
                    f"block{idx}.dw",
                    GemmShape(1, 9, batch * out_hw * out_hw, count=cmid),
                    "depthwise",
                )
            )
            layers.append(_conv(f"block{idx}.project", cout, cmid, 1, out_hw, batch))
            cin, hw = cout, out_hw
            idx += 1
    layers.append(_conv("head", 1280, 320, 1, 7, batch))
    layers.append(_fc("fc", 1000, 1280, batch))
    return layers


def yolo_v2(batch: int = DEFAULT_BATCH) -> List[LayerShape]:
    """Darknet-19 backbone + YOLOv2 detection head at 416x416."""
    seq = [  # (cout, cin, k, out_hw)
        (32, 3, 3, 416), (64, 32, 3, 208),
        (128, 64, 3, 104), (64, 128, 1, 104), (128, 64, 3, 104),
        (256, 128, 3, 52), (128, 256, 1, 52), (256, 128, 3, 52),
        (512, 256, 3, 26), (256, 512, 1, 26), (512, 256, 3, 26),
        (256, 512, 1, 26), (512, 256, 3, 26),
        (1024, 512, 3, 13), (512, 1024, 1, 13), (1024, 512, 3, 13),
        (512, 1024, 1, 13), (1024, 512, 3, 13),
        (1024, 1024, 3, 13), (1024, 1024, 3, 13),  # detection convs
        (1024, 3072, 3, 13),  # after passthrough concat
    ]
    layers = [
        _conv(f"conv{i+1}", cout, cin, k, hw, batch)
        for i, (cout, cin, k, hw) in enumerate(seq)
    ]
    layers.append(_conv("detect", 425, 1024, 1, 13, batch))  # 5*(5+80)
    return layers


def transformer(batch: int = 32, seq_len: int = 128, hidden: int = 768,
                heads: int = 12, num_layers: int = 12,
                ff_mult: int = 4) -> List[LayerShape]:
    """12-layer 12-head hidden-768 transformer (IWSLT14 setup)."""
    tokens = batch * seq_len
    head_dim = hidden // heads
    layers: List[LayerShape] = []
    for i in range(num_layers):
        for proj in ("q", "k", "v", "o"):
            layers.append(
                LayerShape(f"layer{i}.{proj}_proj",
                           GemmShape(hidden, hidden, tokens), "linear")
            )
        layers.append(
            LayerShape(f"layer{i}.scores",
                       GemmShape(seq_len, head_dim, seq_len, count=batch * heads),
                       "attention")
        )
        layers.append(
            LayerShape(f"layer{i}.context",
                       GemmShape(seq_len, seq_len, head_dim, count=batch * heads),
                       "attention")
        )
        layers.append(
            LayerShape(f"layer{i}.ff1",
                       GemmShape(ff_mult * hidden, hidden, tokens), "linear")
        )
        layers.append(
            LayerShape(f"layer{i}.ff2",
                       GemmShape(hidden, ff_mult * hidden, tokens), "linear")
        )
    layers.append(LayerShape("lm_head", GemmShape(32768, hidden, tokens), "linear"))
    return layers


WORKLOADS = {
    "AlexNet": alexnet,
    "ResNet18": resnet18,
    "ResNet50": resnet50,
    "VGG16": vgg16,
    "MobileNet": mobilenet_v2,
    "YOLO": yolo_v2,
    "Transformer": transformer,
}


def workload_names() -> List[str]:
    return list(WORKLOADS)


def workload(name: str, **kwargs) -> List[LayerShape]:
    """Layer shapes of a named workload (paper-scale dimensions)."""
    if name not in WORKLOADS:
        raise KeyError(f"unknown workload {name!r}; known: {workload_names()}")
    return WORKLOADS[name](**kwargs)


def total_training_macs(layers: Iterable[LayerShape]) -> int:
    """MACs of one training step (3 GEMMs per layer)."""
    return sum(tg.gemm.macs for layer in layers for tg in training_gemms(layer))
