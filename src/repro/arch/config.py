"""Accelerator configurations.

Defaults reproduce the paper's chosen design point (Section VI-A): eight
RNS-MMVMUs, each holding three 16x32 MMVMUs (one per modulus of the
``{2^k-1, 2^k, 2^k+1}`` set with ``k = 5``), a 10 GHz photonic clock, a
1 GHz digital clock with 10-way interleaving, and a 5 ns phase-shifter
reprogramming time per tile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Tuple

from ..rns.moduli import ModuliSet, special_moduli_set

__all__ = ["MirageConfig", "SystolicConfig", "DataFormat", "TABLE_II_FORMATS"]


@dataclass(frozen=True)
class MirageConfig:
    """Architecture parameters of a Mirage instance.

    Attributes
    ----------
    num_arrays:
        Number of RNS-MMVMUs.
    v:
        MDPUs per MMVMU (vertical size — output rows per tile).
    g:
        MMUs per MDPU (horizontal size — dot-product length / BFP group).
    k:
        Special-moduli parameter; moduli are ``{2^k-1, 2^k, 2^k+1}``.
    bm:
        BFP mantissa bits.
    photonic_clock_hz / digital_clock_hz:
        Clock rates; ``interleave_factor`` digital copies bridge the gap.
    reprogram_time_s:
        Phase-shifter settle time per weight-tile load (5 ns).
    sram_bytes:
        Per-type on-chip SRAM (three arrays: activations/weights/gradients).
    """

    num_arrays: int = 8
    v: int = 32
    g: int = 16
    k: int = 5
    bm: int = 4
    photonic_clock_hz: float = 10e9
    digital_clock_hz: float = 1e9
    interleave_factor: int = 10
    reprogram_time_s: float = 5e-9
    sram_bytes: int = 8 * 2**20
    dac_bits_override: int = 0  # 0 = derive from moduli (Sec. VI-E uses 8)

    @property
    def moduli(self) -> ModuliSet:
        return special_moduli_set(self.k)

    @property
    def cycle_time_s(self) -> float:
        return 1.0 / self.photonic_clock_hz

    @property
    def macs_per_cycle(self) -> int:
        """Logical (full-precision) MACs per photonic cycle."""
        return self.num_arrays * self.v * self.g

    @property
    def peak_macs_per_s(self) -> float:
        return self.macs_per_cycle * self.photonic_clock_hz

    @property
    def residue_bits(self) -> Tuple[int, ...]:
        return self.moduli.residue_bits()

    @property
    def dac_bits(self) -> Tuple[int, ...]:
        if self.dac_bits_override:
            return tuple(self.dac_bits_override for _ in self.moduli)
        return self.residue_bits

    def validate_bfp(self) -> bool:
        """Eq. 13 check for the configured ``(bm, g, k)``."""
        return self.moduli.supports_bfp(self.bm, self.g)


@dataclass(frozen=True)
class DataFormat:
    """A MAC-unit implementation point for the systolic baseline (Table II).

    ``energy_per_mac`` in J, ``area_per_mac`` in m², ``clock_hz`` in Hz.
    ``trains_accurately`` marks formats meeting the paper's accuracy bar
    (INT8 does not).
    """

    name: str
    energy_per_mac: float
    area_per_mac: float
    clock_hz: float
    trains_accurately: bool = True


# Table II constants (paper; synthesis at TSMC 40 nm, FMAC from [69]).
_MM2 = 1e-6  # mm^2 in m^2
TABLE_II_FORMATS = {
    "FP32": DataFormat("FP32", 12.42e-12, 9.6e-3 * _MM2, 500e6),
    "BFLOAT16": DataFormat("BFLOAT16", 3.20e-12, 3.5e-3 * _MM2, 500e6),
    "HFP8": DataFormat("HFP8", 1.47e-12, 1.4e-3 * _MM2, 500e6),
    "INT12": DataFormat("INT12", 0.71e-12, 7.7e-4 * _MM2, 1e9),
    "INT8": DataFormat("INT8", 0.42e-12, 4.1e-4 * _MM2, 1e9, trains_accurately=False),
    "FMAC": DataFormat("FMAC", 0.11e-12, float("nan"), 500e6),
}


@dataclass(frozen=True)
class SystolicConfig:
    """A systolic-array baseline: ``num_arrays`` arrays of ``rows x cols``
    MAC units running ``fmt``.

    The paper keeps the 16x32 array geometry fixed and scales the *number*
    of arrays for iso-energy / iso-area comparisons (Section VI-C).
    """

    fmt: DataFormat
    num_arrays: int = 8
    rows: int = 32
    cols: int = 16

    @property
    def macs_per_cycle(self) -> int:
        return self.num_arrays * self.rows * self.cols

    @property
    def cycle_time_s(self) -> float:
        return 1.0 / self.fmt.clock_hz

    @property
    def peak_macs_per_s(self) -> float:
        return self.macs_per_cycle * self.fmt.clock_hz

    def with_num_arrays(self, num_arrays: int) -> "SystolicConfig":
        return SystolicConfig(self.fmt, max(1, num_arrays), self.rows, self.cols)
