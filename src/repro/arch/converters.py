"""Data-converter energy models (Fig. 1b; Murmann [40]).

ADC energy per conversion follows the two-regime Murmann picture:

* low/medium resolution — technology (Walden) limited, ``E ∝ 2^b``;
* high resolution — thermal-noise (Schreier) limited, ``E ∝ 4^b``
  (the paper's "roughly 4x higher energy per conversion for each
  additional bit").

The Walden coefficient is calibrated to the paper's cited 6-bit / 24 GS/s
part (23 mW → ≈0.96 pJ/conversion, Xu et al. [66]); the thermal
coefficient is calibrated so a 16-bit conversion costs ≈1 nJ — the paper's
"a single A-to-D conversion would require >= 1 nJ" example.  DACs are two
orders of magnitude cheaper at equal resolution (Fig. 1b), calibrated to
the 6-bit / 20 GS/s part of Kim et al. [32] with capacitive ``E ∝ 2^b``
scaling.
"""

from __future__ import annotations

import math

__all__ = [
    "adc_energy_per_conversion",
    "dac_energy_per_conversion",
    "adc_power",
    "dac_power",
    "fig1b_series",
]

# 6-bit, 24 GS/s, 23 mW -> 23e-3 / 24e9 J per conversion.
_ADC_6BIT_ENERGY = 23e-3 / 24e9
_ADC_WALDEN_COEFF = _ADC_6BIT_ENERGY / 2**6  # ~15 fJ per conversion-step
# 16-bit conversion ~1 nJ in the thermal regime.
_ADC_THERMAL_COEFF = 1e-9 / 4**16

# 6-bit, 20 GS/s, 136 mW DAC -> 6.8 pJ/conv; but that part drives a 50-ohm
# link.  On-chip capacitive DACs sit ~2 orders below the ADC curve
# (Fig. 1b): calibrate at 6 bits to 1/100 of the ADC energy.
_DAC_6BIT_ENERGY = _ADC_6BIT_ENERGY / 100.0
_DAC_COEFF = _DAC_6BIT_ENERGY / 2**6


def adc_energy_per_conversion(bits: int) -> float:
    """Energy (J) of one A-to-D conversion at ``bits`` resolution."""
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    walden = _ADC_WALDEN_COEFF * 2**bits
    thermal = _ADC_THERMAL_COEFF * 4**bits
    return max(walden, thermal)


def dac_energy_per_conversion(bits: int) -> float:
    """Energy (J) of one D-to-A conversion at ``bits`` resolution."""
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    return _DAC_COEFF * 2**bits


def adc_power(bits: int, sample_rate_hz: float) -> float:
    """Average ADC power at a given conversion rate (W)."""
    return adc_energy_per_conversion(bits) * sample_rate_hz


def dac_power(bits: int, sample_rate_hz: float) -> float:
    """Average DAC power at a given conversion rate (W)."""
    return dac_energy_per_conversion(bits) * sample_rate_hz


def fig1b_series(max_bits: int = 16):
    """(bits, E_ADC, E_DAC) rows reproducing the Fig. 1b curves."""
    rows = []
    for b in range(1, max_bits + 1):
        rows.append((b, adc_energy_per_conversion(b), dac_energy_per_conversion(b)))
    return rows
