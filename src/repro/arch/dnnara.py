"""DNNARA-style one-hot RNS photonic arithmetic — the Section VII comparator.

DNNARA (Peng et al. [45]) also computes modular arithmetic with photonics
but encodes *no* information in an analog property: a residue ``a``
activates one of ``m`` waveguides (one-hot), and a network of 2x2 optical
switches — configured from the second operand ``b`` — routes the light so
that it exits on port ``|a op b|_m``.  The result is digital-in/digital-out
(no DACs/ADCs), at the price of ``O(m log m)`` switches *per operation*
versus Mirage's ``O(log m)`` devices per MAC.  This module builds the
switching networks functionally and puts both cost scalings side by side.

Construction (the standard one-hot modular unit):

* **addition** — a barrel rotator: stage ``d`` rotates all ``m`` lines by
  ``2^d mod m`` when bit ``d`` of ``b`` is set; ``ceil(log2 m)`` stages of
  ``m`` switches each.
* **multiplication** — index mapping: for a *prime* modulus the nonzero
  residues form a cyclic group, so ``|a b|_m`` becomes index addition
  through the same rotator on ``m - 1`` lines (discrete-log in, power-of-
  generator out), with a dedicated zero line.  This is why one-hot RNS
  designs want prime moduli, while Mirage's special set
  ``{2^k-1, 2^k, 2^k+1}`` needs no such restriction.

:class:`OneHotModularUnit` simulates the stage-by-stage routing;
:class:`DnnaraCostModel` counts devices, area and energy;
:func:`scaling_comparison` tabulates DNNARA vs Mirage device counts as the
modulus grows (the paper's scalability argument).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..photonic import constants as PC

__all__ = [
    "is_prime",
    "find_generator",
    "prime_moduli_set",
    "OneHotModularUnit",
    "DnnaraCostModel",
    "mirage_mmu_device_count",
    "dnnara_mac_device_count",
    "scaling_comparison",
]

# Representative 2x2 MZI switch metrics (DNNARA builds its networks from
# broadband 2x2 MZI switches; these are typical silicon-photonic figures,
# used for order-of-magnitude area/energy — the *scaling* with the modulus
# is the reproduced claim, Table III carries DNNARA's published end-to-end
# numbers).
MZI_SWITCH_LENGTH = 300e-6  # m
MZI_SWITCH_WIDTH = 50e-6  # m
MZI_SWITCH_AREA = MZI_SWITCH_LENGTH * MZI_SWITCH_WIDTH  # m^2
MZI_SWITCH_ENERGY = 0.5e-12  # J per reconfiguration (thermo-optic-free drive)
MZI_SWITCH_LOSS_DB = 0.15  # insertion loss per traversed switch


def is_prime(n: int) -> bool:
    """Deterministic primality for the small moduli used here."""
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True


def find_generator(p: int) -> int:
    """Smallest generator of the multiplicative group mod prime ``p``."""
    if not is_prime(p):
        raise ValueError(f"{p} is not prime; one-hot multiplication needs "
                         "a cyclic multiplicative group")
    if p == 2:
        return 1
    order = p - 1
    factors = set()
    n, f = order, 2
    while f * f <= n:
        while n % f == 0:
            factors.add(f)
            n //= f
        f += 1
    if n > 1:
        factors.add(n)
    for g in range(2, p):
        if all(pow(g, order // q, p) != 1 for q in factors):
            return g
    raise ArithmeticError(f"no generator found for {p}")  # pragma: no cover


def prime_moduli_set(target_bits: float, max_candidates: int = 64) -> Tuple[int, ...]:
    """Descending primes whose product reaches ``target_bits`` of range.

    The moduli set a DNNARA-style design would pick to match a given
    dynamic range (Mirage's special set is not all-prime, so the two
    architectures cannot share one).
    """
    if target_bits <= 0:
        raise ValueError("target_bits must be positive")
    chosen: List[int] = []
    bits = 0.0
    candidate = 2**8 - 1  # keep residues within 8 bits, like the paper's era
    while bits < target_bits and candidate >= 2:
        if is_prime(candidate):
            chosen.append(candidate)
            bits += math.log2(candidate)
        candidate -= 1
        if len(chosen) >= max_candidates:
            raise ValueError(f"cannot reach {target_bits} bits with "
                             f"{max_candidates} primes below 256")
    if bits < target_bits:
        raise ValueError(f"cannot reach {target_bits} bits")
    return tuple(chosen)


class OneHotModularUnit:
    """Functional model of one DNNARA routing network for modulus ``m``.

    ``op`` is ``"add"`` or ``"mul"``.  The unit is exercised through
    :meth:`route`, which walks the light through every switch stage the
    way the hardware would; :attr:`switch_count` and
    :attr:`stages` expose the hardware footprint.
    """

    def __init__(self, modulus: int, op: str = "add"):
        if modulus < 2:
            raise ValueError("modulus must be >= 2")
        if op not in ("add", "mul"):
            raise ValueError(f"op must be 'add' or 'mul', got {op!r}")
        self.modulus = modulus
        self.op = op
        if op == "mul":
            # Index-mapped multiplication: log/antilog tables + rotator
            # over the m-1 nonzero lines.
            g = find_generator(modulus)
            self._exp = [pow(g, i, modulus) for i in range(modulus - 1)]
            self._log = {v: i for i, v in enumerate(self._exp)}
            self._lines = modulus - 1
        else:
            self._lines = modulus
        self.stages = max(1, math.ceil(math.log2(self._lines)))

    # ------------------------------------------------------------------
    @property
    def switch_count(self) -> int:
        """2x2 switches in the network: ``lines`` per stage."""
        return self._lines * self.stages

    @property
    def worst_case_loss_db(self) -> float:
        """Loss for light traversing every stage."""
        return self.stages * MZI_SWITCH_LOSS_DB

    # ------------------------------------------------------------------
    def _rotate(self, index: np.ndarray, amount: np.ndarray) -> np.ndarray:
        """Stage-by-stage barrel rotation of one-hot line indices."""
        index = index.copy()
        for d in range(self.stages):
            take = ((amount >> d) & 1).astype(bool)
            rotated = (index + (1 << d)) % self._lines
            index = np.where(take, rotated, index)
        return index

    def route(self, a, b) -> np.ndarray:
        """Route one-hot operand ``a`` through switches set by ``b``.

        Returns ``|a + b|_m`` or ``|a * b|_m`` element-wise; inputs are
        integer arrays of residues in ``[0, m)``.
        """
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        if np.any((a < 0) | (a >= self.modulus) | (b < 0) | (b >= self.modulus)):
            raise ValueError(f"residues must lie in [0, {self.modulus})")
        if self.op == "add":
            return self._rotate(a, b % self._lines)
        zero = (a == 0) | (b == 0)
        log = np.vectorize(lambda v: self._log.get(int(v), 0))
        idx = self._rotate(log(np.where(zero, 1, a)),
                           log(np.where(zero, 1, b)))
        exp = np.asarray(self._exp, dtype=np.int64)
        return np.where(zero, 0, exp[idx])


def mirage_mmu_device_count(modulus: int) -> Dict[str, int]:
    """Optical devices in one Mirage MMU (one modular MAC per cycle)."""
    digits = max(1, math.ceil(math.log2(modulus)))
    return {"phase_shifters": digits, "mrr_switches": 2 * digits,
            "total": 3 * digits}


def dnnara_mac_device_count(modulus: int) -> Dict[str, int]:
    """Switches for one DNNARA MAC (one multiply network + one add network)."""
    mul = OneHotModularUnit(modulus, "mul") if is_prime(modulus) else None
    add = OneHotModularUnit(modulus, "add")
    mul_count = mul.switch_count if mul else (modulus - 1) * max(
        1, math.ceil(math.log2(max(2, modulus - 1))))
    return {"mul_switches": mul_count, "add_switches": add.switch_count,
            "total": mul_count + add.switch_count}


@dataclass(frozen=True)
class DnnaraCostModel:
    """Area / energy / loss for a DNNARA-style core at a given modulus.

    ``wdm_factor`` wavelengths share one network (the paper's parallelism
    lever); device count is unchanged, throughput multiplies.
    """

    modulus: int
    wdm_factor: int = 1

    def __post_init__(self):
        if self.wdm_factor < 1:
            raise ValueError("wdm_factor must be >= 1")

    @property
    def devices_per_mac(self) -> int:
        return dnnara_mac_device_count(self.modulus)["total"]

    @property
    def area_per_mac(self) -> float:
        """m^2 of switches serving one MAC-per-cycle slot."""
        return self.devices_per_mac * MZI_SWITCH_AREA / self.wdm_factor

    @property
    def energy_per_mac(self) -> float:
        """J per MAC: every stage's switch row is reconfigured per op."""
        mul_stages = max(1, math.ceil(math.log2(max(2, self.modulus - 1))))
        add_stages = max(1, math.ceil(math.log2(self.modulus)))
        switches_toggled = (self.modulus - 1) * mul_stages + self.modulus * add_stages
        return switches_toggled * MZI_SWITCH_ENERGY / self.wdm_factor

    @property
    def worst_case_loss_db(self) -> float:
        mul_stages = max(1, math.ceil(math.log2(max(2, self.modulus - 1))))
        add_stages = max(1, math.ceil(math.log2(self.modulus)))
        return (mul_stages + add_stages) * MZI_SWITCH_LOSS_DB


def scaling_comparison(moduli: Optional[Sequence[int]] = None) -> List[Dict[str, float]]:
    """Device-count scaling rows: DNNARA ``O(m log m)`` vs Mirage ``O(log m)``.

    Default moduli ladder: primes near successive powers of two, the
    fairest like-for-like growth axis.
    """
    if moduli is None:
        moduli = (7, 13, 31, 61, 127, 251)
    rows = []
    for m in moduli:
        dnnara = dnnara_mac_device_count(m)["total"]
        mirage = mirage_mmu_device_count(m)["total"]
        rows.append({
            "modulus": m,
            "dnnara_devices": dnnara,
            "mirage_devices": mirage,
            "ratio": dnnara / mirage,
        })
    return rows
