"""Fig. 9 power and area breakdowns with pretty aggregation."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .area import area_breakdown, mirage_footprint_area, mirage_total_area
from .config import MirageConfig
from .energy import EnergyParams, peak_power_breakdown

__all__ = ["power_pie", "area_pie", "PAPER_POWER_SHARES", "PAPER_AREA_SHARES"]

# Fig. 9 percentages as printed in the paper (for shape validation).
PAPER_POWER_SHARES = {
    "laser": 14.4,
    "bfp_conversion": 0.5,
    "rns_conversion": 6.2,
    "sram": 61.9,
    "accumulator": 1.4,
    "tia": 14.4,
    "dac_adc": 1.1,
}
PAPER_AREA_SHARES = {
    "photonic": 49.1,
    "sram": 36.0,
    "adc": 9.7,
    "dac": 4.0,
    "others": 1.2,
}
PAPER_TOTAL_POWER_W = 19.95
PAPER_TOTAL_AREA_MM2 = 476.6


def power_pie(
    config: Optional[MirageConfig] = None,
    params: Optional[EnergyParams] = None,
) -> Tuple[float, Dict[str, float]]:
    """(total W, {component: percent}) matching the Fig. 9 left pie."""
    config = config or MirageConfig()
    parts = peak_power_breakdown(config, params or EnergyParams())
    # Merge the negligible MRR tuning into the laser slice, as the paper
    # groups photonic supply power.
    merged = dict(parts)
    merged["laser"] = merged.pop("laser") + merged.pop("mrr_tuning")
    total = sum(merged.values())
    return total, {k: 100.0 * v / total for k, v in merged.items()}


def area_pie(
    config: Optional[MirageConfig] = None,
) -> Tuple[float, float, Dict[str, float]]:
    """(total mm², footprint mm², {component: percent}) — Fig. 9 right."""
    config = config or MirageConfig()
    parts = area_breakdown(config)
    total = sum(parts.values())
    shares = {k: 100.0 * v / total for k, v in parts.items()}
    shares["others"] = shares.pop("digital_conversion")
    return (
        total / 1e-6,
        mirage_footprint_area(config) / 1e-6,
        shares,
    )
