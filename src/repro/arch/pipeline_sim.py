"""Cycle-level discrete-event simulation of the Fig. 2 pipeline.

The closed-form latency model (:mod:`repro.arch.latency`) and the static
demand/capacity model (:mod:`repro.arch.memory`) both *assume* the
Section IV-C pipeline reaches one modular MVM per 0.1 ns once the
interleaved digital copies are provisioned.  This module checks the
assumption by actually simulating the pipeline: every streamed vector is
a job flowing through the stage chain

    SRAM read -> FP->BFP -> BNS->RNS -> [MVM] -> detect+ADC
    -> RNS->BNS -> accumulate -> SRAM write

where each digital stage is a multi-server FIFO queue with
``interleave_factor`` 1 GHz servers (1 ns service each) and the MVM
stage is a single 10 GHz server that stalls for the 5 ns phase-shifter
reprogram at every tile boundary.

* :class:`PipelineSimulator` — generic multi-server stage-chain engine;
* :func:`simulate_gemm` — a tiled GEMM through the chain, returning
  total cycles and per-stage busy fractions;
* :func:`validate_closed_form` — simulated vs analytic latency (they
  must agree to within the pipeline fill/drain constant).

Units: one simulator cycle = one photonic cycle (0.1 ns).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .config import MirageConfig
from .latency import mirage_gemm_latency
from .tiling import map_gemm
from .workloads import GemmShape

__all__ = [
    "Stage",
    "StageStats",
    "PipelineSimulator",
    "mirage_stage_chain",
    "simulate_gemm",
    "validate_closed_form",
]


@dataclass(frozen=True)
class Stage:
    """One pipeline stage: ``copies`` identical servers, FIFO service.

    ``service_cycles`` is the occupancy of one server per job (a 1 GHz
    digital unit holds its server for 10 photonic cycles).
    """

    name: str
    service_cycles: int
    copies: int

    def __post_init__(self):
        if self.service_cycles < 1 or self.copies < 1:
            raise ValueError(f"stage {self.name!r}: service_cycles and "
                             "copies must be >= 1")


@dataclass
class StageStats:
    """Aggregate occupancy of one stage after a simulation run."""

    name: str
    jobs: int = 0
    busy_cycles: int = 0
    total_wait: int = 0

    def utilisation(self, makespan: int, copies: int) -> float:
        """Busy fraction of the stage's aggregate server capacity."""
        if makespan <= 0:
            return 0.0
        return self.busy_cycles / (makespan * copies)


class PipelineSimulator:
    """Jobs flow through the stage chain in order; stages never reorder.

    Each stage keeps a min-heap of server free times.  A job entering a
    stage starts at ``max(arrival, earliest_free_server)`` and departs
    ``service_cycles`` later; the departure is its arrival at the next
    stage.  This is the standard tandem-queue recurrence, so a full GEMM
    simulates in O(jobs * stages * log copies).
    """

    def __init__(self, stages: Sequence[Stage]):
        if not stages:
            raise ValueError("need at least one stage")
        self.stages = list(stages)

    def run(self, arrivals: Iterable[int]) -> Tuple[int, Dict[str, StageStats]]:
        """Push jobs arriving at the given cycles; return
        ``(makespan_cycles, stats_by_stage)``."""
        servers: List[List[int]] = [[0] * s.copies for s in self.stages]
        stats = {s.name: StageStats(s.name) for s in self.stages}
        for heap in servers:
            heapq.heapify(heap)
        makespan = 0
        for arrival in arrivals:
            t = int(arrival)
            for stage, heap in zip(self.stages, servers):
                free = heapq.heappop(heap)
                start = max(t, free)
                depart = start + stage.service_cycles
                heapq.heappush(heap, depart)
                st = stats[stage.name]
                st.jobs += 1
                st.busy_cycles += stage.service_cycles
                st.total_wait += start - t
                t = depart
            makespan = max(makespan, t)
        return makespan, stats


def mirage_stage_chain(config: Optional[MirageConfig] = None) -> List[Stage]:
    """The Fig. 2 / Section IV-C stage chain for one RNS-MMVMU."""
    config = config or MirageConfig()
    digital_cycles = max(
        1, round(config.photonic_clock_hz / config.digital_clock_hz)
    )
    copies = config.interleave_factor
    return [
        Stage("sram_read", digital_cycles, copies),
        Stage("fp_bfp", digital_cycles, copies),
        Stage("bns_rns", digital_cycles, copies),
        Stage("mvm", 1, 1),  # the photonic core: one MVM per 0.1 ns
        Stage("detect_adc", 1, 2),  # I/Q pair, pipelined at >= 10 GS/s
        Stage("rns_bns", digital_cycles, copies),
        Stage("accumulate", digital_cycles, copies),
        Stage("sram_write", digital_cycles, copies),
    ]


def _tile_arrivals(stream_len: int, tiles: int, reprogram_cycles: int) -> List[int]:
    """Vector issue times: one per cycle within a tile, with a reprogram
    gap between tiles."""
    arrivals: List[int] = []
    t = 0
    for _ in range(tiles):
        t += reprogram_cycles
        for _ in range(stream_len):
            arrivals.append(t)
            t += 1
    return arrivals


def simulate_gemm(
    gemm: GemmShape,
    config: Optional[MirageConfig] = None,
    dataflow: str = "DF1",
    max_jobs: int = 200_000,
) -> Tuple[float, Dict[str, StageStats]]:
    """Simulate one GEMM on one array-round basis; returns
    ``(seconds, stage_stats)``.

    Tiles are distributed over ``num_arrays`` identical arrays exactly as
    the closed-form model assumes, so simulating the per-array round
    sequence suffices.  ``max_jobs`` guards against accidentally
    simulating a billion-vector layer cycle-by-cycle.
    """
    config = config or MirageConfig()
    stationary = "first" if dataflow == "DF1" else "second"
    mapping = map_gemm(gemm, config.v, config.g, stationary)
    rounds = math.ceil(mapping.tiles / config.num_arrays)
    jobs = rounds * mapping.stream_len
    if jobs > max_jobs:
        raise ValueError(
            f"simulation would enqueue {jobs} vectors (> {max_jobs}); "
            "use the closed-form model for layers this large"
        )
    reprogram_cycles = round(config.reprogram_time_s / config.cycle_time_s)
    arrivals = _tile_arrivals(mapping.stream_len, rounds, reprogram_cycles)
    sim = PipelineSimulator(mirage_stage_chain(config))
    makespan, stats = sim.run(arrivals)
    return makespan * config.cycle_time_s, stats


def validate_closed_form(
    gemm: GemmShape,
    config: Optional[MirageConfig] = None,
    dataflow: str = "DF1",
) -> Dict[str, float]:
    """Simulated vs analytic GEMM latency.

    The closed form counts issue slots; the simulation adds the constant
    pipeline fill/drain (8 stages' worth), so the two agree to within
    that constant — returned as ``gap_cycles`` for inspection.
    """
    config = config or MirageConfig()
    simulated, _ = simulate_gemm(gemm, config, dataflow)
    analytic = mirage_gemm_latency(gemm, config, dataflow)
    gap_cycles = (simulated - analytic) / config.cycle_time_s
    return {
        "simulated_s": simulated,
        "analytic_s": analytic,
        "ratio": simulated / analytic,
        "gap_cycles": gap_cycles,
    }
