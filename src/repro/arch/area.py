"""Area model (Fig. 9 right; Section VI-C).

The photonic chiplet holds the MMU arrays (phase shifters + MRR switches +
detection); the electronic chiplet holds SRAM, data converters and the
digital conversion circuitry.  3D integration stacks the two, so the
package footprint is the larger of the pair — the paper quotes 234 mm²
photonic, 242.7 mm² electronic, 476.6 mm² combined.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from ..photonic import constants as PC
from ..photonic.devices import MMUGeometry, PhaseShifterBank
from .config import MirageConfig

__all__ = ["area_breakdown", "mirage_total_area", "mirage_footprint_area",
           "MM2", "AreaParams"]

MM2 = 1e-6  # m^2 per mm^2

# Converter areas (Section V-B2).
DAC_AREA = 0.072 * MM2  # 6-bit 20 GS/s DAC [32]
ADC_AREA = 0.03 * MM2  # 6-bit 24 GS/s ADC [66]
BFP_UNIT_AREA = 1318.4e-12  # m^2 per FP-BFP unit
FWD_RNS_UNIT_AREA = 231.7e-12  # m^2 per BNS-RNS unit
REV_RNS_UNIT_AREA = 1545.8e-12  # m^2 per RNS-BNS unit
# SRAM macro density, calibrated to Fig. 9 (36% of 476.6 mm^2 for 24 MB).
SRAM_AREA_PER_BYTE = 171.6 * MM2 / (24 * 2**20)
# Waveguide row pitch on the photonic chiplet (MRR diameter + clearance),
# calibrated so the default config lands on the paper's 234 mm^2.
ROW_PITCH = 23.5e-6


@dataclass(frozen=True)
class AreaParams:
    row_pitch: float = ROW_PITCH
    dac_per_mdpu: bool = True  # one weight DAC per MDPU (time-shared per tile)


def area_breakdown(config: MirageConfig, params: AreaParams = AreaParams()) -> Dict[str, float]:
    """Component areas (m²) for a Mirage instance."""
    arrays, v, g = config.num_arrays, config.v, config.g
    mset = config.moduli

    photonic = 0.0
    adc_count = 0
    for m in mset.moduli:
        geom = MMUGeometry(PhaseShifterBank(m))
        # One MMVMU: v rows of g MMUs laid on the row pitch.
        photonic += arrays * v * g * geom.horizontal_length * params.row_pitch
        adc_count += arrays * v * 2  # I and Q per MDPU
    # One weight DAC per MDPU, time-shared across moduli and the g columns
    # during the 5 ns reprogram window (matches the paper's ~4% DAC share).
    dac_count = arrays * (v if params.dac_per_mdpu else v * g)
    # Interleaved digital circuitry (Section IV-C): 10 copies per array.
    copies = arrays * config.interleave_factor
    bfp_area = copies * BFP_UNIT_AREA
    rns_area = copies * (FWD_RNS_UNIT_AREA + REV_RNS_UNIT_AREA)
    sram = 3 * config.sram_bytes * SRAM_AREA_PER_BYTE

    return {
        "photonic": photonic,
        "adc": adc_count * ADC_AREA,
        "dac": dac_count * DAC_AREA,
        "sram": sram,
        "digital_conversion": bfp_area + rns_area,
    }


def mirage_total_area(config: MirageConfig, params: AreaParams = AreaParams()) -> float:
    """Sum of all component areas (the paper's 476.6 mm² figure)."""
    return sum(area_breakdown(config, params).values())


def mirage_footprint_area(config: MirageConfig, params: AreaParams = AreaParams()) -> float:
    """Package footprint under 3D stacking: max(photonic, electronic)."""
    parts = area_breakdown(config, params)
    photonic = parts["photonic"]
    electronic = sum(v for k, v in parts.items() if k != "photonic")
    return max(photonic, electronic)
