"""Interleaved SRAM and digital-pipeline model (Section IV-C).

The photonic core retires one modular MVM every 0.1 ns, but SRAM banks and
the digital conversion circuits run at 1 GHz.  Mirage bridges the gap with
``interleave_factor`` (10) copies of each digital resource per RNS-MMVMU,
phase-offset by 0.1 ns, so in aggregate one digital *transaction* —
vector-wide: a whole ``v``-long output vector or ``g``-long input vector —
completes per photonic cycle.

This module makes that sizing argument executable: per photonic cycle it
computes the transaction demand on every digital resource, the capacity
the interleaved copies provide, and the resulting throughput bound on the
photonic core.  With the paper's parameters every resource sits at
utilisation <= 1.0 (the design is *exactly* balanced); the ablation bench
sweeps the interleave factor to show where the digital side would start
throttling the optics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .config import MirageConfig

__all__ = ["ResourceDemand", "MemorySystemModel", "pipeline_stage_names"]

_STAGES = (
    "sram_read",
    "sram_write",
    "fp_bfp",
    "bns_rns",
    "rns_bns",
    "accumulate",
)


def pipeline_stage_names():
    """Names of the modelled digital pipeline stages."""
    return _STAGES


@dataclass(frozen=True)
class ResourceDemand:
    """Demand vs capacity of one digital resource class (per RNS-MMVMU).

    Units are vector-wide transactions per 0.1 ns photonic cycle.
    """

    name: str
    demand_per_cycle: float
    capacity_per_cycle: float

    @property
    def utilisation(self) -> float:
        return self.demand_per_cycle / self.capacity_per_cycle

    @property
    def is_bottleneck(self) -> bool:
        return self.demand_per_cycle > self.capacity_per_cycle * (1 + 1e-12)


class MemorySystemModel:
    """Demand/capacity accounting for the electronic chiplet.

    Per streaming cycle one RNS-MMVMU needs (Fig. 2 steps 2-3 and 7-9):

    * one ``g``-wide activation read + FP→BFP + BNS→RNS on the input side,
      amortised over ``input_reuse`` row tiles that share the vector;
    * one ``v``-wide partial-output read, one ``v``-wide write
      (read-accumulate-write), one ``v``-wide RNS→BNS conversion and one
      ``v``-wide FP32 accumulation on the output side.

    Parameters
    ----------
    config:
        The Mirage configuration (interleave factor, clocks, geometry).
    input_reuse:
        Photonic cycles an input-side conversion is reused for (matches
        :class:`repro.arch.energy.EnergyParams.input_conversion_reuse`).
    """

    def __init__(self, config: Optional[MirageConfig] = None,
                 input_reuse: float = 16.0):
        self.config = config or MirageConfig()
        if input_reuse < 1:
            raise ValueError("input_reuse must be >= 1")
        self.input_reuse = input_reuse

    # ------------------------------------------------------------------
    def capacity_per_cycle(self) -> float:
        """Transactions per photonic cycle from the interleaved copies."""
        cfg = self.config
        speedup = cfg.photonic_clock_hz / cfg.digital_clock_hz
        return cfg.interleave_factor / speedup

    def demands(self) -> Dict[str, ResourceDemand]:
        """Per-RNS-MMVMU demand vs capacity for every pipeline stage."""
        cap = self.capacity_per_cycle()
        inv_reuse = 1.0 / self.input_reuse
        per_cycle = {
            "sram_read": 1.0 + inv_reuse,  # output partials + input vectors
            "sram_write": 1.0,  # accumulated partials
            "fp_bfp": inv_reuse,
            "bns_rns": inv_reuse,
            "rns_bns": 1.0,
            "accumulate": 1.0,
        }
        # The SRAM provides interleave_factor banks per *type* and there
        # are three types (activation / weight / gradient, Section IV-C),
        # so read traffic spreads over two types and writes over one.
        out: Dict[str, ResourceDemand] = {}
        for name in _STAGES:
            capacity = cap * (2.0 if name == "sram_read" else 1.0)
            out[name] = ResourceDemand(name, per_cycle[name], capacity)
        return out

    # ------------------------------------------------------------------
    def throughput_bound(self) -> float:
        """Achievable photonic-core throughput fraction in (0, 1].

        1.0 means the digital side keeps up (the paper's design point);
        below 1.0 the worst-utilised resource throttles the core.
        """
        worst = max(d.utilisation for d in self.demands().values())
        return min(1.0, 1.0 / worst) if worst > 0 else 1.0

    def bottlenecks(self) -> List[ResourceDemand]:
        """Resources whose demand exceeds capacity."""
        return [d for d in self.demands().values() if d.is_bottleneck]

    def effective_macs_per_s(self) -> float:
        """Peak MAC rate after the digital throughput bound."""
        return self.config.peak_macs_per_s * self.throughput_bound()
