"""Component-level energy/power model for Mirage.

Accounts for every component of Fig. 9 / Table II / Fig. 5b: lasers, MRR
tuning, TIAs, DACs/ADCs, FP↔BFP and BNS↔RNS converters, FP32 accumulators
and SRAM.  Constants cited in the paper are used directly; constants the
paper leaves implicit are module-level calibration values, each documented
in place and probed by the ablation benches.

Two views of the same model:

* :func:`mac_energy_breakdown` — pJ/MAC of the *compute path* (what Table
  II and Fig. 5b report; excludes SRAM, like the paper's Table II),
  parameterised by ``(bm, g)`` so the Fig. 5b sweep falls out.
* :func:`peak_power_breakdown` — whole-accelerator peak power including
  SRAM (the Fig. 9 pie).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from ..photonic import constants as PC
from ..photonic.noise import laser_power_for_modulus
from ..rns.moduli import choose_k_min, special_moduli_set
from .config import MirageConfig
from .converters import adc_energy_per_conversion, dac_energy_per_conversion

__all__ = [
    "EnergyParams",
    "mac_energy_breakdown",
    "mirage_energy_per_mac",
    "peak_power_breakdown",
    "MirageEnergyModel",
]

# ----------------------------------------------------------------------
# Digital-unit constants (Section V-B2; RTL synthesis at TSMC 40 nm)
# ----------------------------------------------------------------------
BFP_CONVERSION_ENERGY = 1.32e-12  # J per FP<->BFP conversion
FWD_RNS_CONVERSION_ENERGY = 0.17e-12  # J per BNS->RNS conversion
REV_RNS_CONVERSION_ENERGY = 0.48e-12  # J per RNS->BNS conversion
ACCUMULATOR_ENERGY = 0.11e-12  # J per FP32 read-accumulate-write (calibrated
# to Fig. 9's 1.4% accumulator share; the paper does not state it directly)
SRAM_ENERGY_PER_ACCESS = 1.93e-12  # J per 32-bit access (calibrated to
# Fig. 9's 61.9% SRAM share for the stated access pattern; consistent with
# 32 kB banks at TSMC 40 nm)
TIA_ENERGY_PER_BIT = PC.TIA_ENERGY_PER_BIT

# The Fig. 9 breakdown (DAC & ADC = 1.1% of 19.95 W over ~1536 ADCs at
# 10 GS/s) implies an *effective* ~14 fJ/conversion at 6 bits — far below
# the 0.96 pJ/conversion of the cited stand-alone part.  We expose the
# discrepancy: `adc_energy_scale` defaults to the paper-implied effective
# value; the ablation bench re-runs the breakdown with the conservative
# part energy.
ADC_EFFECTIVE_SCALE = 0.015
# Input-side FP->BFP/BNS->RNS conversions are reused across the row tiles
# of a GEMM (the same input vector meets every weight-row tile), so their
# rate is divided by a typical reuse factor.
INPUT_CONVERSION_REUSE = 16.0


@dataclass(frozen=True)
class EnergyParams:
    """Tunable calibration knobs (defaults reproduce the paper)."""

    adc_energy_scale: float = ADC_EFFECTIVE_SCALE
    input_conversion_reuse: float = INPUT_CONVERSION_REUSE
    cycles_per_tile: float = 256.0  # DAC amortisation horizon (batch size)
    duty: float = PC.AVERAGE_INPUT_DUTY
    snr_margin: float = PC.SNR_MARGIN


def mac_energy_breakdown(
    bm: int,
    g: int,
    v: int = 32,
    k: Optional[int] = None,
    params: EnergyParams = EnergyParams(),
) -> Dict[str, float]:
    """Energy per logical MAC (J) by component, for a BFP/RNS design point.

    A *logical* MAC covers all ``n`` modular MACs (one per modulus).  This
    is the Fig. 5b quantity: lasers, MRR tuning, DACs/ADCs, TIAs, FP-BFP
    and RNS-BNS conversions (SRAM excluded, as in the paper's Table II).

    ``k`` defaults to the smallest special-set parameter satisfying Eq. 13
    for ``(bm, g)`` — the paper's k_min rule.
    """
    if k is None:
        k = choose_k_min(bm, g)
    mset = special_moduli_set(k)
    if not mset.supports_bfp(bm, g):
        raise ValueError(f"k={k} violates Eq. 13 for bm={bm}, g={g}")
    cycle = 1.0 / PC.PHOTONIC_CLOCK_HZ
    macs_per_mdpu_cycle = float(g)

    laser = 0.0
    adc = 0.0
    tia = 0.0
    dac = 0.0
    mrr = 0.0
    for m in mset.moduli:
        bits = max(1, math.ceil(math.log2(m)))
        # Laser power feeds one MDPU path; it performs g MACs per cycle.
        laser += (
            laser_power_for_modulus(m, g, duty=params.duty, snr_margin=params.snr_margin)
            * cycle
            / macs_per_mdpu_cycle
        )
        # Two I/Q conversions per MDPU output per cycle.
        adc += 2 * adc_energy_per_conversion(bits) * params.adc_energy_scale / g
        # One balanced TIA drives each output conversion; the 57 fJ/bit
        # figure is charged per output bit (I/Q splitting shares the pair).
        tia += TIA_ENERGY_PER_BIT * bits / g
        # One weight DAC load per MMU per tile, amortised over the tile's
        # stream cycles; each MMU does one MAC per cycle.
        dac += dac_energy_per_conversion(bits) / params.cycles_per_tile
        # MRR switching energy: 2*bits rings per MMU.
        mrr += PC.MRR_SWITCH_POWER * cycle * 2 * bits
    # Digital conversions (per logical value, not per modulus):
    # input-side FP->BFP + BNS->RNS, reused across v rows and row tiles.
    # The output-side BFP->FP reconstruction (Fig. 2 step 8) is an exponent
    # add folded into the FP32 accumulator cost.
    bfp = BFP_CONVERSION_ENERGY / (v * params.input_conversion_reuse)
    fwd_rns = FWD_RNS_CONVERSION_ENERGY / (v * params.input_conversion_reuse)
    rev_rns = REV_RNS_CONVERSION_ENERGY / g
    acc = ACCUMULATOR_ENERGY / g
    return {
        "laser": laser,
        "adc": adc,
        "dac": dac,
        "tia": tia,
        "mrr_tuning": mrr,
        "bfp_conversion": bfp,
        "rns_conversion": fwd_rns + rev_rns,
        "accumulator": acc,
    }


def mirage_energy_per_mac(
    config: MirageConfig, params: EnergyParams = EnergyParams()
) -> float:
    """Total compute-path energy per logical MAC (J) — the Table II entry."""
    parts = mac_energy_breakdown(config.bm, config.g, config.v, config.k, params)
    return sum(parts.values())


# ----------------------------------------------------------------------
# Whole-accelerator peak power (Fig. 9)
# ----------------------------------------------------------------------
def peak_power_breakdown(
    config: MirageConfig, params: EnergyParams = EnergyParams()
) -> Dict[str, float]:
    """Peak power (W) by component for a full Mirage instance.

    SRAM traffic per photonic cycle per RNS-MMVMU: ``g`` FP32 input reads
    plus ``2 v`` FP32 partial-output read+write (the read-accumulate-write
    of Fig. 2 step 9); weight reads are amortised over tiles.
    """
    mset = config.moduli
    cycle = config.cycle_time_s
    arrays = config.num_arrays
    v, g = config.v, config.g

    laser = sum(
        laser_power_for_modulus(m, g, duty=params.duty, snr_margin=params.snr_margin)
        for m in mset.moduli
    ) * v * arrays

    adc = tia = dac = mrr = 0.0
    rate = config.photonic_clock_hz
    for m in mset.moduli:
        bits = max(1, math.ceil(math.log2(m)))
        adc += 2 * v * arrays * adc_energy_per_conversion(bits) * params.adc_energy_scale * rate
        tia += v * arrays * TIA_ENERGY_PER_BIT * bits * rate
        dac += (
            v * g * arrays * dac_energy_per_conversion(bits)
            / (params.cycles_per_tile * cycle)
        )
        mrr += v * g * arrays * PC.MRR_SWITCH_POWER * 2 * bits

    values_per_s_in = g * arrays * rate / params.input_conversion_reuse
    values_per_s_out = v * arrays * rate
    bfp = BFP_CONVERSION_ENERGY * values_per_s_in
    rns = (
        FWD_RNS_CONVERSION_ENERGY * values_per_s_in
        + REV_RNS_CONVERSION_ENERGY * values_per_s_out
    )
    acc = ACCUMULATOR_ENERGY * values_per_s_out

    accesses_per_s = (g + 2 * v) * arrays * rate
    sram = SRAM_ENERGY_PER_ACCESS * accesses_per_s

    return {
        "laser": laser,
        "mrr_tuning": mrr,
        "tia": tia,
        "dac_adc": adc + dac,
        "bfp_conversion": bfp,
        "rns_conversion": rns,
        "accumulator": acc,
        "sram": sram,
    }


class MirageEnergyModel:
    """Convenience wrapper bundling config + params with cached totals."""

    def __init__(self, config: MirageConfig, params: EnergyParams = EnergyParams()):
        self.config = config
        self.params = params

    def energy_per_mac(self) -> float:
        return mirage_energy_per_mac(self.config, self.params)

    def mac_breakdown(self) -> Dict[str, float]:
        return mac_energy_breakdown(
            self.config.bm, self.config.g, self.config.v, self.config.k, self.params
        )

    def peak_power(self) -> float:
        return sum(peak_power_breakdown(self.config, self.params).values())

    def power_breakdown(self) -> Dict[str, float]:
        return peak_power_breakdown(self.config, self.params)

    def step_energy(self, total_macs: int, runtime_s: float = 0.0,
                    include_sram: bool = False) -> float:
        """Energy of a training step.

        The default matches the paper's Fig. 8 accounting: compute-path
        energy (lasers, photonic devices, TIAs, converters, accumulators)
        for the useful MACs, with SRAM excluded — the systolic baseline is
        likewise charged for its MAC units only.  Pass
        ``include_sram=True`` (with the runtime) for whole-chip energy.
        """
        compute = self.energy_per_mac() * total_macs
        if include_sram:
            compute += self.power_breakdown()["sram"] * runtime_s
        return compute
