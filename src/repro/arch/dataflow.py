"""Dataflow definitions and schedulers (Section VI-A3).

Training renames the classic stationarity choices:

* **DF1** (weight-stationary analogue): the *first* GEMM operand is held in
  the arrays — ``W`` for the forward pass, ``W^T`` for the input-gradient
  GEMM, ``dO`` for the weight-gradient GEMM.
* **DF2** (input-stationary analogue): the *second* operand is held.
* **DF3** (output-stationary): outputs accumulate in place.  Only systolic
  arrays support it; in Mirage both operands would need per-cycle phase
  shifter updates, which the MRR-switched design exists to avoid.

Schedulers:

* fixed dataflow (DF1/DF2/DF3 for every GEMM);
* **OPT1** — best dataflow per computation *role* (fwd / dx / dw), chosen
  once per model;
* **OPT2** — best dataflow per individual layer GEMM.

Both optimisations run offline from the analytical latency model, exactly
as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from .workloads import LayerShape, TrainingGemm, training_gemms

__all__ = [
    "MIRAGE_DATAFLOWS",
    "SYSTOLIC_DATAFLOWS",
    "Schedule",
    "schedule_fixed",
    "schedule_opt1",
    "schedule_opt2",
]

MIRAGE_DATAFLOWS = ("DF1", "DF2")
SYSTOLIC_DATAFLOWS = ("DF1", "DF2", "DF3")
_ROLES = ("fwd", "dx", "dw")

# A latency function maps (TrainingGemm, dataflow) -> seconds.
LatencyFn = Callable[[TrainingGemm, str], float]


@dataclass(frozen=True)
class Schedule:
    """A dataflow assignment for every training GEMM of a workload."""

    assignments: Tuple[Tuple[str, str, str], ...]  # (layer, role, dataflow)
    total_latency: float

    def dataflow_for(self, layer: str, role: str) -> str:
        for lname, lrole, df in self.assignments:
            if lname == layer and lrole == role:
                return df
        raise KeyError(f"no assignment for ({layer}, {role})")

    def histogram(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for _, _, df in self.assignments:
            counts[df] = counts.get(df, 0) + 1
        return counts


def _all_gemms(layers: Iterable[LayerShape]) -> List[TrainingGemm]:
    return [tg for layer in layers for tg in training_gemms(layer)]


def schedule_fixed(
    layers: Sequence[LayerShape],
    latency_fn: LatencyFn,
    dataflow: str,
    allowed: Sequence[str] = MIRAGE_DATAFLOWS,
) -> Schedule:
    """Use one dataflow everywhere."""
    if dataflow not in allowed:
        raise ValueError(f"dataflow {dataflow!r} not in {allowed}")
    gemms = _all_gemms(layers)
    assigns = tuple((tg.layer, tg.role, dataflow) for tg in gemms)
    total = sum(latency_fn(tg, dataflow) for tg in gemms)
    return Schedule(assigns, total)


def schedule_opt1(
    layers: Sequence[LayerShape],
    latency_fn: LatencyFn,
    allowed: Sequence[str] = MIRAGE_DATAFLOWS,
) -> Schedule:
    """OPT1: best dataflow per role (fwd/dx/dw), same across layers."""
    gemms = _all_gemms(layers)
    best_per_role: Dict[str, str] = {}
    for role in _ROLES:
        role_gemms = [tg for tg in gemms if tg.role == role]
        if not role_gemms:
            continue
        best_per_role[role] = min(
            allowed, key=lambda df: sum(latency_fn(tg, df) for tg in role_gemms)
        )
    assigns = tuple((tg.layer, tg.role, best_per_role[tg.role]) for tg in gemms)
    total = sum(latency_fn(tg, best_per_role[tg.role]) for tg in gemms)
    return Schedule(assigns, total)


def schedule_opt2(
    layers: Sequence[LayerShape],
    latency_fn: LatencyFn,
    allowed: Sequence[str] = MIRAGE_DATAFLOWS,
) -> Schedule:
    """OPT2: best dataflow independently for every layer GEMM."""
    gemms = _all_gemms(layers)
    assigns = []
    total = 0.0
    for tg in gemms:
        best = min(allowed, key=lambda df: latency_fn(tg, df))
        assigns.append((tg.layer, tg.role, best))
        total += latency_fn(tg, best)
    return Schedule(tuple(assigns), total)
