"""Architectural cost of Redundant RNS protection (Section VI-E).

The paper closes its noise discussion with: *"Adding redundant moduli to
the set increases the power and area roughly linearly with the number of
moduli as the number of components scales linearly with the number of
moduli, while throughput stays the same."*  This module prices that
statement against our own power/area models: every redundant modulus
adds one MMVMU per RNS-MMVMU array (its lasers, MRRs, TIAs, ADCs and
RNS-converter slice) while the SRAM, BFP conversion and accumulator
sides are untouched, and the added MMVMUs work in parallel so the
latency of every GEMM is unchanged.

* :func:`redundant_ladder` — pick ``r`` redundant moduli co-prime with
  the base special set (largest-first, so correction strength per added
  bit is maximal);
* :func:`rrns_overhead` — power/area/EDP ratios versus the unprotected
  design plus the error-correction capability bought;
* :func:`rrns_design_table` — one row per ``r`` (the Section VI-E
  trade study).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..photonic import constants as PC
from ..photonic.noise import laser_power_for_modulus
from ..rns.moduli import pairwise_coprime
from ..rns.rrns import RRNSCodec
from .area import AreaParams, area_breakdown
from .config import MirageConfig
from .converters import adc_energy_per_conversion
from .energy import EnergyParams, peak_power_breakdown

__all__ = [
    "redundant_ladder",
    "RrnsOverhead",
    "rrns_overhead",
    "rrns_design_table",
]


def redundant_ladder(config: MirageConfig, r: int) -> Tuple[int, ...]:
    """``r`` redundant moduli for the configured special set.

    RRNS error correction needs every redundant modulus to exceed the
    information moduli (so any corrupted legal value stays inside the
    redundant range); we walk upward from ``2^k + 1`` keeping pairwise
    co-primality.
    """
    if r < 0:
        raise ValueError("r must be >= 0")
    base = list(config.moduli.moduli)
    chosen: List[int] = []
    candidate = max(base) + 1
    while len(chosen) < r:
        if pairwise_coprime(base + chosen + [candidate]):
            chosen.append(candidate)
        candidate += 1
    return tuple(chosen)


def _per_modulus_power(config: MirageConfig, moduli: Sequence[int],
                       params: EnergyParams) -> float:
    """Power (W) of the modulus-proportional components for ``moduli``.

    Mirrors the per-modulus loop of
    :func:`repro.arch.energy.peak_power_breakdown`: lasers, MRR tuning,
    TIAs and ADCs, plus the per-channel share of the RNS converters.
    """
    v, g, arrays = config.v, config.g, config.num_arrays
    rate = config.photonic_clock_hz
    total = 0.0
    for m in moduli:
        bits = max(1, math.ceil(math.log2(m)))
        total += (
            laser_power_for_modulus(m, g, duty=params.duty,
                                    snr_margin=params.snr_margin)
            * v * arrays
        )
        total += 2 * v * arrays * adc_energy_per_conversion(bits) \
            * params.adc_energy_scale * rate
        total += v * arrays * PC.TIA_ENERGY_PER_BIT * bits * rate
        total += v * g * arrays * PC.MRR_SWITCH_POWER * 2 * bits
    return total


@dataclass(frozen=True)
class RrnsOverhead:
    """Cost/benefit of ``r`` redundant moduli on one Mirage instance."""

    r: int
    redundant_moduli: Tuple[int, ...]
    power_ratio: float
    area_ratio: float
    detectable_errors: int
    correctable_errors: int

    @property
    def edp_ratio(self) -> float:
        """Throughput is unchanged, so EDP scales with power alone."""
        return self.power_ratio

    @property
    def throughput_ratio(self) -> float:
        return 1.0


def rrns_overhead(
    config: Optional[MirageConfig] = None,
    r: int = 1,
    params: EnergyParams = EnergyParams(),
) -> RrnsOverhead:
    """Price ``r`` redundant moduli against the unprotected design."""
    config = config or MirageConfig()
    redundant = redundant_ladder(config, r)
    base_moduli = config.moduli.moduli

    base_power = sum(peak_power_breakdown(config, params).values())
    extra_power = _per_modulus_power(config, redundant, params)
    # The RNS reverse converter grows with the channel count.
    rns_share = peak_power_breakdown(config, params)["rns_conversion"]
    extra_power += rns_share * r / len(base_moduli)

    areas = area_breakdown(config)
    base_area = sum(areas.values())
    # Photonic area and ADCs scale per modulus; one extra reverse-
    # converter slice per added channel.
    per_modulus_area = (areas["photonic"] + areas["adc"]) / len(base_moduli)
    extra_area = per_modulus_area * r \
        + areas["digital_conversion"] * r / len(base_moduli)

    codec = RRNSCodec(base_moduli, redundant) if r else None
    return RrnsOverhead(
        r=r,
        redundant_moduli=redundant,
        power_ratio=(base_power + extra_power) / base_power,
        area_ratio=(base_area + extra_area) / base_area,
        detectable_errors=r,
        correctable_errors=codec.max_correctable() if codec else 0,
    )


def rrns_design_table(
    config: Optional[MirageConfig] = None,
    r_values: Sequence[int] = (0, 1, 2, 3, 4),
) -> List[RrnsOverhead]:
    """The Section VI-E trade study: protection vs power/area, per ``r``."""
    config = config or MirageConfig()
    return [rrns_overhead(config, r) for r in r_values]
