"""RNG discipline for the simulation stack.

Every stochastic component (photonic noise models, nn init/dropout,
stochastic BFP rounding, traffic generators) takes an ``rng`` argument
and resolves it through :func:`resolve_rng`:

* a :class:`numpy.random.Generator` is used as-is (callers thread one
  stream through a whole experiment);
* an ``int`` (or any numpy seed spec) builds a seeded generator, so the
  component is bit-reproducible in isolation;
* ``None`` is the **documented nondeterministic opt-in**: a fresh
  OS-entropy generator.  This is the single sanctioned seedless
  ``default_rng()`` call in the codebase — the determinism linter
  (``repro.checks``, rule ``determinism-seedless-rng``) flags every
  other one, and this one carries the waiver.

:func:`spawn_rng` derives an independent child stream from a parent
generator; with a seeded parent the children are deterministic, so
multi-unit components (one RNG per modulus lane) stay bit-reproducible.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

__all__ = ["RngLike", "resolve_rng", "spawn_rng"]

# What components accept for their ``rng`` argument.
RngLike = Union[None, int, np.random.Generator]


def resolve_rng(
    rng: RngLike = None, *, seed: Optional[int] = None
) -> np.random.Generator:
    """Resolve an ``rng`` argument to a :class:`numpy.random.Generator`.

    Precedence: an explicit generator/seed in ``rng``, then ``seed``,
    then the nondeterministic fallback (``rng=None, seed=None`` — fresh
    OS entropy, run-to-run irreproducible *by choice*).
    """
    if rng is not None:
        if isinstance(rng, np.random.Generator):
            return rng
        return np.random.default_rng(rng)
    if seed is not None:
        return np.random.default_rng(seed)
    return np.random.default_rng()  # repro: waive[determinism-seedless-rng] -- the one documented seed=None => fresh-OS-entropy opt-in


def spawn_rng(rng: np.random.Generator) -> np.random.Generator:
    """Independent child stream, deterministic given a seeded parent."""
    return np.random.default_rng(rng.integers(2**63))
