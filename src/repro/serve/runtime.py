"""The serving runtime: admission → micro-batching → executor pool.

:class:`ServingRuntime` is a discrete-event simulator over the
:class:`~repro.serve.clock.SimulatedClock`: scenario arrivals enter the
bounded :class:`~repro.serve.request.AdmissionQueue`, the
:class:`~repro.serve.batcher.MicroBatcher` coalesces them into per-model
micro-batches, and the :class:`~repro.serve.pool.ExecutorPool` dispatches
each batch through a weight-programmed photonic executor as one batched
GEMM stream.

Two control knobs turn the batcher into a serving system:

* **priority classes** — arrivals may carry a priority (see
  :class:`~repro.serve.request.Priority`); admission sheds the lowest
  class first, and the batcher dispatches by effective priority with an
  aging term (:class:`~repro.serve.batcher.BatchPolicy`
  ``aging_rate_per_s``) so low classes cannot starve;
* **SLO-driven autoscaling** — an :class:`Autoscaler`
  (:class:`AutoscalerPolicy` knobs) watches each model's windowed p99
  latency against its SLO and its queue depth at a fixed simulated-clock
  cadence, growing the replica set ahead of a ramp (charging the
  weight-tile reprogramming latency from ``arch.latency`` to the new
  replica) and draining replicas back when the tail is comfortably
  inside the SLO.

Two notions of time coexist deliberately:

* **functional execution** — each micro-batch really runs through the
  photonic core model (outputs are exact, programmed-cache hits are
  measured);
* **simulated hardware time** — the batch's service latency comes from
  the analytic :mod:`repro.arch` model
  (:func:`repro.arch.inference.per_request_latency` over the model's
  forward GEMMs at the dispatched batch size), which is what advances
  the clock and what every latency percentile is measured in.

So the telemetry answers "what SLO would this traffic see on the
hardware", while the outputs prove the batched dataflow is the same
computation.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..arch.accelerator import MirageAccelerator
from ..arch.inference import per_request_latency
from ..arch.tiling import map_gemm
from ..arch.workloads import GemmShape, LayerShape
from ..nn.conv import Conv2d, conv_output_size
from ..nn.layers import Linear, Sequential
from .batcher import BatchPolicy, MicroBatcher
from .clock import SimulatedClock, time_at_or_before
from .faults import FaultInjector, FaultKind, FaultPlan, FleetMonitor, HealthPolicy
from .pool import ExecutorPool
from .request import AdmissionQueue, InferenceRequest, RequestStatus
from .telemetry import Telemetry, percentile, summarize_latencies

__all__ = [
    "AutoscalerPolicy",
    "Autoscaler",
    "ModelProfile",
    "RetryPolicy",
    "ServiceModel",
    "ServingRuntime",
    "model_layer_shapes",
    "infer_input_dim",
]


# ----------------------------------------------------------------------
# Model → GEMM-shape extraction (feeds the analytic latency model)
# ----------------------------------------------------------------------
def model_layer_shapes(
    name: str,
    model: Sequential,
    batch: int,
    input_hw: Optional[Tuple[int, int]] = None,
) -> List[LayerShape]:
    """Forward GEMM shapes of a Sequential model at a given batch size.

    Linear layers map to ``(out, in) @ (in, batch)``; Conv2d layers use
    the im2col convention and need ``input_hw`` to track spatial sizes.
    """
    shapes: List[LayerShape] = []
    hw = input_hw
    for i, layer in enumerate(model):
        if isinstance(layer, Linear):
            shapes.append(
                LayerShape(
                    f"{name}.{i}",
                    GemmShape(layer.out_features, layer.in_features, batch),
                    "linear",
                )
            )
        elif isinstance(layer, Conv2d):
            if hw is None:
                raise ValueError(
                    f"model {name!r} has Conv2d layers; pass input_hw"
                )
            k, s, p = layer.kernel_size, layer.stride, layer.padding
            oh = conv_output_size(hw[0], k, s, p)
            ow = conv_output_size(hw[1], k, s, p)
            shapes.append(
                LayerShape(
                    f"{name}.{i}",
                    GemmShape(
                        layer.out_channels,
                        layer.in_channels * k * k // layer.groups,
                        batch * oh * ow,
                    ),
                    "conv",
                )
            )
            hw = (oh, ow)
    if not shapes:
        raise ValueError(f"model {name!r} has no GEMM layers to serve")
    return shapes


def infer_input_dim(model: Sequential) -> int:
    """Input feature width of the first Linear layer."""
    for layer in model:
        if isinstance(layer, Linear):
            return layer.in_features
    raise ValueError("model has no Linear layer to infer an input dim from")


@dataclass(frozen=True)
class ModelProfile:
    """A served model: the network plus its serving parameters."""

    name: str
    model: Sequential
    replicas: int = 1
    slo_s: Optional[float] = None
    input_hw: Optional[Tuple[int, int]] = None

    def __post_init__(self):
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")
        if self.slo_s is not None and self.slo_s <= 0:
            raise ValueError(f"slo_s must be > 0, got {self.slo_s}")

    def input_dim(self) -> int:
        return infer_input_dim(self.model)


@dataclass(frozen=True)
class RetryPolicy:
    """Failure-handling knobs of the request-level runtime.

    ``max_retries`` bounds how many times one request may re-enter
    admission after its dispatch was lost to a worker failure (the retry
    *budget* — past it the request fails terminally).  ``deadline_s``
    gives every request an absolute deadline of ``arrival + deadline_s``
    after which it is dropped as timed out rather than served late.
    ``hedge_on_suspect`` re-dispatches stranded work as soon as its
    worker turns *suspect* instead of waiting for the dead declaration;
    ``replace_dead`` swaps a fresh (cold, reprogramming-charged) replica
    in for every worker declared dead.  All knobs are inert on
    fault-free runs — retries and hedges only trigger on failures.
    """

    max_retries: int = 2
    deadline_s: Optional[float] = None
    hedge_on_suspect: bool = True
    replace_dead: bool = True

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be > 0, got {self.deadline_s}"
            )


class ServiceModel:
    """Analytic batch-service latencies, memoised per (model, batch).

    ``batch_latency`` / ``prewarm_latency`` are pure functions of the
    registered profile, so each (model, batch) pair is priced through
    ``arch.inference`` exactly once per registration — hot dispatch
    paths (every micro-batch and every engine decode step) read the
    memo.  Re-registering a name drops that model's cached entries, so a
    swapped profile can never serve the old profile's latencies.
    """

    def __init__(self, accelerator: Optional[MirageAccelerator] = None):
        self.accelerator = accelerator or MirageAccelerator()
        self._profiles: Dict[str, ModelProfile] = {}
        self._cache: Dict[Tuple[str, int], float] = {}

    def register(self, profile: ModelProfile) -> None:
        if profile.name in self._profiles:
            self._invalidate(profile.name)
        self._profiles[profile.name] = profile

    def _invalidate(self, model: str) -> None:
        for key in [k for k in self._cache if k[0] == model]:
            del self._cache[key]

    def cache_info(self) -> Dict[str, int]:
        """Size of the latency memo (observability for the memo tests)."""
        return {"entries": len(self._cache)}

    def batch_latency(self, model: str, batch: int) -> float:
        key = (model, batch)
        if key not in self._cache:
            profile = self._profiles[model]
            shapes = model_layer_shapes(
                model, profile.model, batch, profile.input_hw
            )
            self._cache[key] = per_request_latency(
                shapes, batch, self.accelerator
            )["batch_latency_s"]
        return self._cache[key]

    def prewarm_latency(self, model: str) -> float:
        """Seconds to program all of ``model``'s weight tiles on one core.

        One phase-shifter settle (``reprogram_time_s``) per round of
        stationary weight tiles spread over the ``num_arrays`` RNS-MMVMUs
        — the cost a cold replica pays before it can serve its first
        batch, charged by the autoscaler on scale-up.
        """
        key = (model, -1)
        if key not in self._cache:
            profile = self._profiles[model]
            config = self.accelerator.config
            shapes = model_layer_shapes(
                model, profile.model, 1, profile.input_hw
            )
            total = 0.0
            for layer in shapes:
                mapping = map_gemm(layer.gemm, config.v, config.g, "first")
                rounds = -(-mapping.tiles // config.num_arrays)
                total += rounds * config.reprogram_time_s
            self._cache[key] = total
        return self._cache[key]


# ----------------------------------------------------------------------
# SLO-driven replica autoscaling
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AutoscalerPolicy:
    """Knobs of the latency-driven replica autoscaler.

    The control loop runs every ``interval_s`` of simulated time.  Per
    model it scales **up** when the windowed p99 latency breaches
    ``slo_scale_up`` of the model's SLO or queue depth per replica
    exceeds ``queue_high_per_replica`` (sized by queue pressure, so a
    steep ramp can add several replicas in one tick), and scales **down
    one replica at a time** when the tail sits below ``slo_scale_down``
    of the SLO with a near-empty queue, after ``scale_down_cooldown_s``
    of stability — asymmetric thresholds and the cooldown prevent
    flapping.
    """

    interval_s: float = 2e-7
    window_s: float = 5e-7
    min_replicas: int = 1
    max_replicas: int = 8
    slo_scale_up: float = 0.9
    slo_scale_down: float = 0.5
    queue_high_per_replica: float = 16.0
    queue_low_per_replica: float = 2.0
    scale_down_cooldown_s: float = 4e-7

    def __post_init__(self):
        if self.interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {self.interval_s}")
        if self.window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {self.window_s}")
        if not 1 <= self.min_replicas <= self.max_replicas:
            raise ValueError(
                f"need 1 <= min_replicas <= max_replicas, got "
                f"{self.min_replicas}..{self.max_replicas}"
            )
        if not 0 < self.slo_scale_down <= self.slo_scale_up:
            raise ValueError(
                "need 0 < slo_scale_down <= slo_scale_up, got "
                f"{self.slo_scale_down}/{self.slo_scale_up}"
            )
        if self.queue_high_per_replica <= 0 or self.queue_low_per_replica < 0:
            raise ValueError("queue thresholds must be positive/non-negative")


class Autoscaler:
    """Per-model replica controller over the pool, driven by telemetry.

    Reads each model's windowed p99-vs-SLO and queue depth, and asks
    :meth:`ExecutorPool.scale_to` for more or fewer replicas.  Scale-ups
    charge the model's weight-tile reprogramming latency (from
    ``arch.latency`` via :meth:`ServiceModel.prewarm_latency`) to the new
    replica's busy window; scale-downs drain before retiring.  Also keeps
    the replica-second ledger the autoscaling benchmark reports
    (provisioned capacity integrated over simulated time).
    """

    def __init__(self, runtime: "ServingRuntime", policy: AutoscalerPolicy):
        self.runtime = runtime
        self.policy = policy
        self.events: List[Dict[str, float]] = []
        self.burn_alerts: List[Dict[str, object]] = []
        self._last_change: Dict[str, float] = {}
        self._rs: Dict[str, float] = {}
        self._rs_t: Dict[str, float] = {}
        self._rs_n: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def start(self, now: float = 0.0) -> None:
        """Open the replica-second ledger at the current replica counts."""
        for name in self.runtime.pool.model_names():
            self._last_change[name] = now
            self._rs[name] = 0.0
            self._rs_t[name] = now
            self._rs_n[name] = self.runtime.pool.num_replicas(name)

    def _account(self, name: str, now: float) -> None:
        self._rs[name] += self._rs_n[name] * (now - self._rs_t[name])
        self._rs_t[name] = now
        self._rs_n[name] = self.runtime.pool.num_replicas(name)

    def finalize(self, horizon: float) -> None:
        """Close the ledger at the scenario horizon."""
        for name in list(self._rs):
            if horizon > self._rs_t[name]:
                self._account(name, horizon)

    def replica_seconds(self, model: Optional[str] = None) -> float:
        if model is not None:
            return self._rs.get(model, 0.0)
        return sum(self._rs.values())

    # ------------------------------------------------------------------
    def desired_replicas(self, name: str, now: float) -> int:
        """The controller decision for one model at time ``now``."""
        return self._decide(name, now)[0]

    def _decide(
        self, name: str, now: float
    ) -> Tuple[int, Dict[str, object]]:
        """The decision plus the windowed evidence it was based on.

        The evidence dict is what the tracer attaches to every
        autoscale instant — a decision is only auditable with the p99,
        SLO and queue depth the controller actually saw.
        """
        rt, pol = self.runtime, self.policy
        cur = rt.pool.num_replicas(name)
        depth = rt.queue.pending(name)
        lat = rt.telemetry.latencies(model=name, since=now - pol.window_s)
        p99 = percentile(lat, 99) if lat else None
        slo = rt.profiles()[name].slo_s
        evidence: Dict[str, object] = {
            "p99_s": p99,
            "slo_s": slo,
            "queue_depth": depth,
            "window_s": pol.window_s,
        }

        # The pool is the hard ceiling: clamping here (not just inside
        # scale_to) keeps a saturated pool from emitting no-op scale
        # events every tick and perpetually resetting the cooldown.
        ceiling = min(pol.max_replicas, len(rt.pool.workers))
        queue_pressure = depth > pol.queue_high_per_replica * cur
        slo_breach = (
            slo is not None and p99 is not None and p99 > pol.slo_scale_up * slo
        )
        if queue_pressure or slo_breach:
            by_queue = math.ceil(depth / pol.queue_high_per_replica)
            # Never *shrink* on the overload branch: if the deployment was
            # placed above the policy ceiling, retiring replicas exactly
            # when load spikes would be the opposite of the intent.
            return max(cur, min(ceiling, max(cur + 1, by_queue))), evidence

        cooled = (
            now - self._last_change.get(name, 0.0)
            >= pol.scale_down_cooldown_s
        )
        tail_ok = slo is None or p99 is None or p99 < pol.slo_scale_down * slo
        queue_ok = depth <= pol.queue_low_per_replica * max(cur - 1, 1)
        if cur > pol.min_replicas and cooled and tail_ok and queue_ok:
            return cur - 1, evidence
        return max(cur, pol.min_replicas), evidence

    def evaluate(self, now: float) -> List[Dict[str, float]]:
        """Run one control tick; returns the scaling actions taken."""
        actions: List[Dict[str, float]] = []
        tracer = self.runtime.tracer
        for name in self.runtime.pool.model_names():
            cur = self.runtime.pool.num_replicas(name)
            desired, evidence = self._decide(name, now)
            if desired == cur:
                continue
            self._account(name, now)
            prewarm_s = (
                self.runtime.service.prewarm_latency(name)
                if desired > cur
                else 0.0
            )
            delta = self.runtime.pool.scale_to(
                name, desired, now, prewarm_latency_s=prewarm_s
            )
            self._rs_n[name] = self.runtime.pool.num_replicas(name)
            self._last_change[name] = now
            ready_at = now
            for wid in delta["added"]:
                ready_at = max(
                    ready_at, self.runtime.pool.workers[wid].busy_until
                )
            action = {
                "t": now,
                "model": name,
                "from": cur,
                "to": self.runtime.pool.num_replicas(name),
                "prewarm_s": prewarm_s if delta["cold"] else 0.0,
                "ready_at": ready_at,
            }
            self.events.append(action)
            actions.append(action)
            if tracer is not None:
                tracer.instant(
                    "control",
                    0,
                    f"autoscale:{name}",
                    now,
                    args={**action, "evidence": evidence},
                )
        # Surface (never act on) any SLO error-budget burn alerts: the
        # burn-rate monitors see the same clock the controller does, so
        # every alert lands next to the decisions it indicts.
        slo = self.runtime._slo
        if slo is not None:
            fired = slo.check(now)
            self.burn_alerts.extend(fired)
            if tracer is not None:
                for alert in fired:
                    tracer.instant(
                        "control", 0, "slo_burn_alert", now, args=dict(alert)
                    )
        return actions

    def summary(self) -> Dict[str, object]:
        out = {
            "events": [dict(e) for e in self.events],
            "num_scale_ups": sum(1 for e in self.events if e["to"] > e["from"]),
            "num_scale_downs": sum(
                1 for e in self.events if e["to"] < e["from"]
            ),
            "replica_seconds": {
                name: self._rs.get(name, 0.0) for name in sorted(self._rs)
            },
            "final_replicas": {
                name: self.runtime.pool.num_replicas(name)
                for name in self.runtime.pool.model_names()
            },
        }
        if self.burn_alerts:
            out["burn_alerts"] = [dict(a) for a in self.burn_alerts]
        return out


# ----------------------------------------------------------------------
# The discrete-event serving loop
# ----------------------------------------------------------------------
_ARRIVAL, _WORKER_FREE, _DEADLINE, _SCALE, _FAULT, _HEALTH = 0, 1, 2, 3, 4, 5


class ServingRuntime:
    """One serving deployment: models, pool, batcher, queue, telemetry.

    Use one runtime instance per scenario run — worker availability and
    cache state deliberately persist across requests within a run.
    """

    def __init__(
        self,
        pool: ExecutorPool,
        policy: Optional[BatchPolicy] = None,
        queue_capacity: int = 256,
        accelerator: Optional[MirageAccelerator] = None,
        execute: bool = True,
        autoscaler: Optional[AutoscalerPolicy] = None,
        retry: Optional[RetryPolicy] = None,
        health: Optional[HealthPolicy] = None,
        observability=None,
    ):
        self.pool = pool
        self.batcher = MicroBatcher(policy)
        self.queue = AdmissionQueue(queue_capacity)
        self.service = ServiceModel(accelerator)
        self.clock = SimulatedClock()
        self.obs = observability
        registry = observability.registry if observability is not None else None
        self.tracer = observability.tracer if observability is not None else None
        self._slo = observability.slo if observability is not None else None
        self.telemetry = Telemetry(registry=registry)
        if self.tracer is not None:
            pool.set_tracer(self.tracer)
            self.batcher.tracer = self.tracer
        self.execute = execute
        self.autoscaler = (
            Autoscaler(self, autoscaler) if autoscaler is not None else None
        )
        self.retry = retry or RetryPolicy()
        self.health = health or HealthPolicy()
        self._profiles: Dict[str, ModelProfile] = {}
        self._req_ids = itertools.count()
        # Failure plane: in-flight batches by id so a crash can strand
        # exactly the work that was riding on the failed worker.
        self._batch_ids = itertools.count()
        self._inflight: Dict[int, Tuple[int, List[InferenceRequest]]] = {}
        self._cancelled: set = set()
        self._stranded: Dict[int, List[InferenceRequest]] = {}
        self._monitor: Optional[FleetMonitor] = None
        self._injector: Optional[FaultInjector] = None
        # Tracing bookkeeping: when each request (re)started waiting,
        # closed into a queue_wait span at dispatch.
        self._wait_since: Dict[int, float] = {}

    # ------------------------------------------------------------------
    def register_model(
        self, profile: ModelProfile, prewarm: bool = True
    ) -> List[int]:
        """Place a model on the pool and register its latency profile.

        Validates the profile eagerly (GEMM layers present, ``input_hw``
        given for conv models) so a bad profile fails here, not at the
        first arrival mid-scenario.
        """
        model_layer_shapes(profile.name, profile.model, 1, profile.input_hw)
        self._profiles[profile.name] = profile
        self.service.register(profile)
        return self.pool.place(
            profile.name, profile.model, profile.replicas, prewarm=prewarm
        )

    def profiles(self) -> Dict[str, ModelProfile]:
        return dict(self._profiles)

    # ------------------------------------------------------------------
    def run(
        self,
        scenario,
        seed: int = 0,
        input_fn: Optional[Callable[[str, np.random.Generator], np.ndarray]] = None,
        faults: Optional[FaultPlan] = None,
    ) -> Telemetry:
        """Drive a full scenario through the deployment; returns telemetry.

        ``input_fn(model_name, rng)`` supplies request inputs (default:
        standard-normal rows of the model's input width).  ``faults`` is
        an optional replayable :class:`~repro.serve.faults.FaultPlan` of
        **worker** events (crash/stuck/slow) injected on the simulated
        clock; session-granular kinds (transient, KV loss) belong to the
        token engine and are rejected here.
        """
        rng = np.random.default_rng(seed)
        heap: List[Tuple[float, int, int, object]] = []
        seq = itertools.count()

        def push(t: float, kind: int, payload: object) -> None:
            heapq.heappush(heap, (t, kind, next(seq), payload))

        if faults is not None:
            bad = [e.kind for e in faults.events if e.kind in FaultKind.SESSION_KINDS]
            if bad:
                raise ValueError(
                    f"request-level runtime cannot inject {sorted(set(bad))}; "
                    "session-granular faults target the token engine"
                )
            self._injector = FaultInjector(faults)
            self._monitor = FleetMonitor(self.pool, self.health)
            self._monitor.tracer = self.tracer
            for event in faults.events:
                push(event.t, _FAULT, None)

        last_arrival = 0.0
        for arrival in scenario.arrivals:
            t, model = arrival[0], arrival[1]
            priority = arrival[2] if len(arrival) > 2 else 0
            if model not in self._profiles:
                raise KeyError(
                    f"scenario names model {model!r} but it is not registered"
                )
            push(t, _ARRIVAL, (model, priority))
            last_arrival = max(last_arrival, t)

        if self.autoscaler is not None and scenario.arrivals:
            # One pending tick at a time (the handler re-arms the next)
            # keeps the heap O(1) in ticks even when the horizon spans
            # millions of control intervals.  The payload carries the tick
            # index so every tick lands at exactly k * interval_s
            # (re-accumulating `now + interval` would drift by ulps and
            # perturb threshold decisions).
            self.autoscaler.start(0.0)
            push(self.autoscaler.policy.interval_s, _SCALE, 1)

        while heap:
            t, kind, _, payload = heapq.heappop(heap)
            now = self.clock.advance_to(t)
            if kind == _ARRIVAL:
                model, priority = payload
                self._admit(model, priority, now, rng, input_fn)
            elif kind == _WORKER_FREE:
                self._complete(payload)
            elif kind == _FAULT:
                for event in self._injector.due(now):
                    self._apply_fault(event, now, push)
            elif kind == _HEALTH:
                self._check_health(now, push)
            elif kind == _SCALE:
                for action in self.autoscaler.evaluate(now):
                    if action["ready_at"] > now:
                        # Wake the loop when the prewarmed replica comes
                        # online so waiting batches dispatch immediately.
                        push(action["ready_at"], _DEADLINE, None)
                # Keep ticking while arrivals are still coming OR a
                # backlog is draining — a burst shorter than one interval
                # and an overhang past the last arrival both still need
                # the control loop.  Stops once the queue is empty after
                # the final arrival, so the event loop terminates.
                next_tick = (payload + 1) * self.autoscaler.policy.interval_s
                if time_at_or_before(next_tick, last_arrival) or self.queue.depth > 0:
                    push(next_tick, _SCALE, payload + 1)
            # _DEADLINE events exist only to trigger a drain.
            self._drain(now, push)
            self.telemetry.sample_queue_depth(now, self.queue.depth)

        if self.queue.depth:
            if self._injector is not None:
                # A fleet outage can legitimately strand waiting work
                # (every replica dead, replacement disabled): those
                # requests fail terminally instead of crashing the loop.
                for model in list(self.queue.models_waiting()):
                    for r in self.queue.pop_batch(model, self.queue.depth):
                        r.status = RequestStatus.FAILED
                        self.telemetry.record_failure(r)
                        self._trace_terminal(r, "fail", self.clock.now)
            else:
                raise RuntimeError(
                    f"event loop ended with {self.queue.depth} requests stranded"
                )
        return self.telemetry

    # ------------------------------------------------------------------
    def _default_input(
        self, profile: ModelProfile, rng: np.random.Generator
    ) -> np.ndarray:
        """A random input matching the model's first GEMM layer.

        Linear-first models get a ``(in_features,)`` row; conv-first
        models get a ``(C_in, H, W)`` image (stacking a batch of either
        yields exactly what ``run_sequential`` expects).
        """
        for layer in profile.model:
            if isinstance(layer, Linear):
                return rng.standard_normal(layer.in_features)
            if isinstance(layer, Conv2d):
                if profile.input_hw is None:
                    raise ValueError(
                        f"model {profile.name!r} is conv-first; its profile "
                        "needs input_hw to synthesize default inputs"
                    )
                return rng.standard_normal(
                    (layer.in_channels, *profile.input_hw)
                )
        raise ValueError(f"model {profile.name!r} has no GEMM layers")

    def _admit(
        self,
        model: str,
        priority: int,
        now: float,
        rng: np.random.Generator,
        input_fn: Optional[Callable[[str, np.random.Generator], np.ndarray]],
    ) -> None:
        if input_fn is not None:
            x = np.asarray(input_fn(model, rng), dtype=np.float64)
        else:
            x = self._default_input(self._profiles[model], rng)
        request = InferenceRequest(
            next(self._req_ids), model, x, now, priority=priority
        )
        if self.retry.deadline_s is not None:
            request.deadline = now + self.retry.deadline_s
        if not self.queue.offer(request):
            self.telemetry.record_rejection(request)
            self._trace_terminal(request, "reject", now)
        else:
            if self.tracer is not None:
                self._wait_since[request.request_id] = now
                self.tracer.instant(
                    "request", request.request_id, "enqueue", now
                )
        for victim in self.queue.drain_evicted():
            self.telemetry.record_rejection(victim)
            self._trace_terminal(victim, "evict", now)

    def _trace_terminal(
        self, request: InferenceRequest, kind: str, now: float
    ) -> None:
        """A request leaving without completing: instant + SLO miss."""
        if self.tracer is not None:
            self._wait_since.pop(request.request_id, None)
            self.tracer.instant("request", request.request_id, kind, now)
        if self._slo is not None:
            self._slo.observe(request.model, now, good=False)

    # ------------------------------------------------------------------
    # Failure plane
    # ------------------------------------------------------------------
    def _apply_fault(self, event, now: float, push) -> None:
        """Apply one due fault event (physics only — detection is separate)."""
        wid = self.pool.resolve_worker(event.target)
        if wid is None:
            return  # nothing left to kill
        if event.kind in (FaultKind.REPLICA_CRASH, FaultKind.WORKER_STUCK):
            self.pool.crash(wid, now)
            self.telemetry.record_crash(wid)
            # Strand the in-flight batches riding on this worker: their
            # completion events are cancelled; the requests re-enter only
            # once the monitor *detects* the failure (suspect/dead) —
            # nobody knows instantly that a worker died.
            for batch_id, (bwid, batch) in list(self._inflight.items()):
                if bwid != wid:
                    continue
                self._cancelled.add(batch_id)
                del self._inflight[batch_id]
                self._stranded.setdefault(wid, []).extend(batch)
            push(now + self.health.suspect_after_s, _HEALTH, None)
            push(now + self.health.dead_after_s, _HEALTH, None)
        elif event.kind == FaultKind.WORKER_SLOW:
            self.pool.slow(wid, event.severity, now + event.duration_s)

    def _check_health(self, now: float, push) -> None:
        """One heartbeat sweep: hedge on suspect, replace on dead."""
        if self._monitor is None:
            return
        for tr in self._monitor.observe(now):
            wid = tr["worker_id"]
            if tr["to"] == "suspect" and self.retry.hedge_on_suspect:
                for request in self._stranded.pop(wid, []):
                    self._reenter(request, now, hedged=True)
            elif tr["to"] == "dead":
                for request in self._stranded.pop(wid, []):
                    self._reenter(request, now, hedged=False)
                if self.retry.replace_dead:
                    prewarm = lambda name: self.service.prewarm_latency(name)
                    new_wid = self.pool.replace_worker(wid, now, prewarm)
                    self.telemetry.record_replacement(wid, new_wid)
                    ready = self.pool.workers[new_wid].busy_until
                    if ready > now:
                        push(ready, _DEADLINE, None)

    def _reenter(self, request: InferenceRequest, now: float, hedged: bool) -> None:
        """Re-admit a request whose dispatch was lost to a worker failure.

        Head-of-class requeue: the request already waited its turn once.
        Deadline and retry budget are checked first — work nobody wants
        (or that has failed too often) terminates instead of churning.
        """
        if request.deadline is not None and not time_at_or_before(
            now, request.deadline
        ):
            request.status = RequestStatus.TIMED_OUT
            self.telemetry.record_timeout(request)
            self._trace_terminal(request, "timeout", now)
            return
        if request.retries >= self.retry.max_retries:
            request.status = RequestStatus.FAILED
            self.telemetry.record_failure(request)
            self._trace_terminal(request, "fail", now)
            return
        request.retries += 1
        if self.queue.offer(request, front=True):
            self.telemetry.record_retry(request, hedged=hedged)
            if self.tracer is not None:
                self._wait_since[request.request_id] = now
                self.tracer.instant(
                    "request",
                    request.request_id,
                    "retry",
                    now,
                    args={"hedged": hedged},
                )
        else:
            self.telemetry.record_rejection(request)
            self._trace_terminal(request, "reject", now)
        for victim in self.queue.drain_evicted():
            self.telemetry.record_rejection(victim)
            self._trace_terminal(victim, "evict", now)

    # ------------------------------------------------------------------
    def _drain(self, now: float, push) -> None:
        """Dispatch every batch that is ready and has a free worker."""
        for request in self.queue.expire(now):
            self.telemetry.record_timeout(request)
            self._trace_terminal(request, "timeout", now)
        while True:
            dispatched = False
            # Snapshot: ready_model recomputes triggers after each pop;
            # models whose replicas are all busy get excluded and retried
            # when a worker-free event fires.
            tried = set()
            model = self.batcher.ready_model(self.queue, now, tried)
            while model is not None:
                worker = self.pool.route(model, now)
                if worker is not None:
                    self._dispatch(model, worker, now, push)
                    dispatched = True
                    break
                tried.add(model)
                model = self.batcher.ready_model(self.queue, now, tried)
            if not dispatched:
                break
        # Arm a timer for the earliest future batching deadline.
        dl = self.batcher.next_deadline(self.queue)
        if dl is not None and dl > now:
            push(dl, _DEADLINE, None)

    def _dispatch(self, model: str, worker, now: float, push) -> None:
        batch = self.batcher.take_batch(self.queue, model, now)
        for request in self.batcher.drain_expired():
            self.telemetry.record_timeout(request)
            self._trace_terminal(request, "timeout", now)
        if not batch:
            return  # every popped request had expired
        service_s = self.service.batch_latency(model, len(batch))
        # A degraded worker serves slower than the analytic model says;
        # the stall inflates the busy window and completion time while
        # telemetry keeps the *nominal* service time, so the analytic
        # cross-check stays exact through fault storms.
        booked_s = service_s * worker.service_scale(now)
        profile = self._profiles[model]
        if self.execute:
            outputs = worker.run_batch(
                model, profile.model, [r.x for r in batch], now, booked_s
            )
        else:
            outputs = None
            worker.run_booking(model, len(batch), now, booked_s)
        done = now + booked_s
        # The index the record_batch call below will occupy — stamped on
        # each request's service span so analysis can join a span back
        # to its exact telemetry batch record.
        dispatch_id = len(self.telemetry.batches)
        span_args = {
            "batch": len(batch),
            "worker": worker.worker_id,
            "dispatch": dispatch_id,
        }
        for i, request in enumerate(batch):
            request.status = RequestStatus.DISPATCHED
            request.dispatch_time = now
            request.completion_time = done
            request.batch_size = len(batch)
            request.worker_id = worker.worker_id
            if outputs is not None:
                request.output = outputs[i]
            if self.tracer is not None:
                rid = request.request_id
                t0 = self._wait_since.pop(rid, request.arrival_time)
                self.tracer.span(
                    "request", rid, "queue_wait", t0, now, category="queue"
                )
                self.tracer.span(
                    "request",
                    rid,
                    "service",
                    now,
                    done,
                    category="service",
                    args=span_args,
                )
        self.telemetry.record_batch(
            model, batch, worker.worker_id, now, service_s
        )
        batch_id = next(self._batch_ids)
        self._inflight[batch_id] = (worker.worker_id, list(batch))
        push(done, _WORKER_FREE, (batch_id, batch))

    def _complete(self, payload) -> None:
        batch_id, batch = payload
        if batch_id in self._cancelled:
            self._cancelled.discard(batch_id)
            return  # worker died mid-batch; requests were stranded
        self._inflight.pop(batch_id, None)
        for request in batch:
            request.status = RequestStatus.COMPLETED
            self.telemetry.record_completion(request)
            done = request.completion_time
            if self.tracer is not None:
                self.tracer.instant(
                    "request", request.request_id, "retire", done
                )
            if self._slo is not None:
                slo_s = self._profiles[request.model].slo_s
                latency = done - request.arrival_time
                self._slo.observe(
                    request.model,
                    done,
                    good=slo_s is None or latency <= slo_s,
                )

    # ------------------------------------------------------------------
    def report(self, scenario, slo_s: Optional[float] = None) -> Dict[str, object]:
        """Full serving report for a completed run.

        Includes the aggregate summary, per-model latency percentiles,
        pool/cache stats, and the analytic-model consistency cross-check
        (recorded busy intervals vs ``arch.inference`` recomputation).
        """
        horizon = max(scenario.duration_s, self.telemetry.makespan())
        if slo_s is None:
            slos = [
                p.slo_s for p in self._profiles.values() if p.slo_s is not None
            ]
            slo_s = min(slos) if slos else None
        out = self.telemetry.summary(
            horizon, slo_s=slo_s, cache_stats=self.pool.cache_stats()
        )
        out["offered_rate_rps"] = scenario.offered_rate
        out["offered_requests"] = scenario.num_requests
        out["per_model"] = {
            name: summarize_latencies(self.telemetry.latencies(name))
            for name in self._profiles
        }
        out["workers"] = self.pool.worker_stats()
        if self._monitor is not None:
            out["health_transitions"] = [
                dict(tr) for tr in self._monitor.transitions
            ]
        if self._injector is not None:
            out["faults_applied"] = len(self._injector.applied)
        if self.autoscaler is not None:
            self.autoscaler.finalize(horizon)
            out["autoscaler"] = self.autoscaler.summary()
            out["autoscaler"]["replica_seconds_total"] = (
                self.autoscaler.replica_seconds()
            )
        # Cross-check with a *fresh* ServiceModel (empty memo cache) so the
        # recorded busy intervals are re-derived from arch.inference from
        # scratch — drift or memo corruption in the runtime's own service
        # model shows up here instead of being read back as-is.
        fresh = ServiceModel(self.service.accelerator)
        for profile in self._profiles.values():
            fresh.register(profile)
        out["analytic_consistency"] = self.telemetry.cross_check_service_model(
            fresh.batch_latency
        )
        return out
