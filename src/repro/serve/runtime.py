"""The serving runtime: admission → micro-batching → executor pool.

:class:`ServingRuntime` is a discrete-event simulator over the
:class:`~repro.serve.clock.SimulatedClock`: scenario arrivals enter the
bounded :class:`~repro.serve.request.AdmissionQueue`, the
:class:`~repro.serve.batcher.MicroBatcher` coalesces them into per-model
micro-batches, and the :class:`~repro.serve.pool.ExecutorPool` dispatches
each batch through a weight-programmed photonic executor as one batched
GEMM stream.

Two notions of time coexist deliberately:

* **functional execution** — each micro-batch really runs through the
  photonic core model (outputs are exact, programmed-cache hits are
  measured);
* **simulated hardware time** — the batch's service latency comes from
  the analytic :mod:`repro.arch` model
  (:func:`repro.arch.inference.per_request_latency` over the model's
  forward GEMMs at the dispatched batch size), which is what advances
  the clock and what every latency percentile is measured in.

So the telemetry answers "what SLO would this traffic see on the
hardware", while the outputs prove the batched dataflow is the same
computation.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..arch.accelerator import MirageAccelerator
from ..arch.inference import per_request_latency
from ..arch.workloads import GemmShape, LayerShape
from ..nn.conv import Conv2d, conv_output_size
from ..nn.layers import Linear, Sequential
from .batcher import BatchPolicy, MicroBatcher
from .clock import SimulatedClock
from .pool import ExecutorPool
from .request import AdmissionQueue, InferenceRequest, RequestStatus
from .telemetry import Telemetry, summarize_latencies

__all__ = [
    "ModelProfile",
    "ServiceModel",
    "ServingRuntime",
    "model_layer_shapes",
    "infer_input_dim",
]


# ----------------------------------------------------------------------
# Model → GEMM-shape extraction (feeds the analytic latency model)
# ----------------------------------------------------------------------
def model_layer_shapes(
    name: str,
    model: Sequential,
    batch: int,
    input_hw: Optional[Tuple[int, int]] = None,
) -> List[LayerShape]:
    """Forward GEMM shapes of a Sequential model at a given batch size.

    Linear layers map to ``(out, in) @ (in, batch)``; Conv2d layers use
    the im2col convention and need ``input_hw`` to track spatial sizes.
    """
    shapes: List[LayerShape] = []
    hw = input_hw
    for i, layer in enumerate(model):
        if isinstance(layer, Linear):
            shapes.append(
                LayerShape(
                    f"{name}.{i}",
                    GemmShape(layer.out_features, layer.in_features, batch),
                    "linear",
                )
            )
        elif isinstance(layer, Conv2d):
            if hw is None:
                raise ValueError(
                    f"model {name!r} has Conv2d layers; pass input_hw"
                )
            k, s, p = layer.kernel_size, layer.stride, layer.padding
            oh = conv_output_size(hw[0], k, s, p)
            ow = conv_output_size(hw[1], k, s, p)
            shapes.append(
                LayerShape(
                    f"{name}.{i}",
                    GemmShape(
                        layer.out_channels,
                        layer.in_channels * k * k // layer.groups,
                        batch * oh * ow,
                    ),
                    "conv",
                )
            )
            hw = (oh, ow)
    if not shapes:
        raise ValueError(f"model {name!r} has no GEMM layers to serve")
    return shapes


def infer_input_dim(model: Sequential) -> int:
    """Input feature width of the first Linear layer."""
    for layer in model:
        if isinstance(layer, Linear):
            return layer.in_features
    raise ValueError("model has no Linear layer to infer an input dim from")


@dataclass(frozen=True)
class ModelProfile:
    """A served model: the network plus its serving parameters."""

    name: str
    model: Sequential
    replicas: int = 1
    slo_s: Optional[float] = None
    input_hw: Optional[Tuple[int, int]] = None

    def input_dim(self) -> int:
        return infer_input_dim(self.model)


class ServiceModel:
    """Analytic batch-service latencies, memoised per (model, batch)."""

    def __init__(self, accelerator: Optional[MirageAccelerator] = None):
        self.accelerator = accelerator or MirageAccelerator()
        self._profiles: Dict[str, ModelProfile] = {}
        self._cache: Dict[Tuple[str, int], float] = {}

    def register(self, profile: ModelProfile) -> None:
        self._profiles[profile.name] = profile

    def batch_latency(self, model: str, batch: int) -> float:
        key = (model, batch)
        if key not in self._cache:
            profile = self._profiles[model]
            shapes = model_layer_shapes(
                model, profile.model, batch, profile.input_hw
            )
            self._cache[key] = per_request_latency(
                shapes, batch, self.accelerator
            )["batch_latency_s"]
        return self._cache[key]


# ----------------------------------------------------------------------
# The discrete-event serving loop
# ----------------------------------------------------------------------
_ARRIVAL, _WORKER_FREE, _DEADLINE = 0, 1, 2


class ServingRuntime:
    """One serving deployment: models, pool, batcher, queue, telemetry.

    Use one runtime instance per scenario run — worker availability and
    cache state deliberately persist across requests within a run.
    """

    def __init__(
        self,
        pool: ExecutorPool,
        policy: Optional[BatchPolicy] = None,
        queue_capacity: int = 256,
        accelerator: Optional[MirageAccelerator] = None,
        execute: bool = True,
    ):
        self.pool = pool
        self.batcher = MicroBatcher(policy)
        self.queue = AdmissionQueue(queue_capacity)
        self.service = ServiceModel(accelerator)
        self.clock = SimulatedClock()
        self.telemetry = Telemetry()
        self.execute = execute
        self._profiles: Dict[str, ModelProfile] = {}
        self._req_ids = itertools.count()

    # ------------------------------------------------------------------
    def register_model(
        self, profile: ModelProfile, prewarm: bool = True
    ) -> List[int]:
        """Place a model on the pool and register its latency profile.

        Validates the profile eagerly (GEMM layers present, ``input_hw``
        given for conv models) so a bad profile fails here, not at the
        first arrival mid-scenario.
        """
        model_layer_shapes(profile.name, profile.model, 1, profile.input_hw)
        self._profiles[profile.name] = profile
        self.service.register(profile)
        return self.pool.place(
            profile.name, profile.model, profile.replicas, prewarm=prewarm
        )

    def profiles(self) -> Dict[str, ModelProfile]:
        return dict(self._profiles)

    # ------------------------------------------------------------------
    def run(
        self,
        scenario,
        seed: int = 0,
        input_fn: Optional[Callable[[str, np.random.Generator], np.ndarray]] = None,
    ) -> Telemetry:
        """Drive a full scenario through the deployment; returns telemetry.

        ``input_fn(model_name, rng)`` supplies request inputs (default:
        standard-normal rows of the model's input width).
        """
        rng = np.random.default_rng(seed)
        heap: List[Tuple[float, int, int, object]] = []
        seq = itertools.count()

        def push(t: float, kind: int, payload: object) -> None:
            heapq.heappush(heap, (t, kind, next(seq), payload))

        for t, model in scenario.arrivals:
            if model not in self._profiles:
                raise KeyError(
                    f"scenario names model {model!r} but it is not registered"
                )
            push(t, _ARRIVAL, model)

        while heap:
            t, kind, _, payload = heapq.heappop(heap)
            now = self.clock.advance_to(t)
            if kind == _ARRIVAL:
                self._admit(str(payload), now, rng, input_fn)
            elif kind == _WORKER_FREE:
                self._complete(payload)
            # _DEADLINE events exist only to trigger a drain.
            self._drain(now, push)
            self.telemetry.sample_queue_depth(now, self.queue.depth)

        if self.queue.depth:
            raise RuntimeError(
                f"event loop ended with {self.queue.depth} requests stranded"
            )
        return self.telemetry

    # ------------------------------------------------------------------
    def _default_input(
        self, profile: ModelProfile, rng: np.random.Generator
    ) -> np.ndarray:
        """A random input matching the model's first GEMM layer.

        Linear-first models get a ``(in_features,)`` row; conv-first
        models get a ``(C_in, H, W)`` image (stacking a batch of either
        yields exactly what ``run_sequential`` expects).
        """
        for layer in profile.model:
            if isinstance(layer, Linear):
                return rng.standard_normal(layer.in_features)
            if isinstance(layer, Conv2d):
                if profile.input_hw is None:
                    raise ValueError(
                        f"model {profile.name!r} is conv-first; its profile "
                        "needs input_hw to synthesize default inputs"
                    )
                return rng.standard_normal(
                    (layer.in_channels, *profile.input_hw)
                )
        raise ValueError(f"model {profile.name!r} has no GEMM layers")

    def _admit(
        self,
        model: str,
        now: float,
        rng: np.random.Generator,
        input_fn: Optional[Callable[[str, np.random.Generator], np.ndarray]],
    ) -> None:
        if input_fn is not None:
            x = np.asarray(input_fn(model, rng), dtype=np.float64)
        else:
            x = self._default_input(self._profiles[model], rng)
        request = InferenceRequest(next(self._req_ids), model, x, now)
        if not self.queue.offer(request):
            self.telemetry.record_rejection(request)

    def _drain(self, now: float, push) -> None:
        """Dispatch every batch that is ready and has a free worker."""
        while True:
            dispatched = False
            # Snapshot: ready_model recomputes triggers after each pop;
            # models whose replicas are all busy get excluded and retried
            # when a worker-free event fires.
            tried = set()
            model = self.batcher.ready_model(self.queue, now, tried)
            while model is not None:
                worker = self.pool.route(model, now)
                if worker is not None:
                    self._dispatch(model, worker, now, push)
                    dispatched = True
                    break
                tried.add(model)
                model = self.batcher.ready_model(self.queue, now, tried)
            if not dispatched:
                break
        # Arm a timer for the earliest future batching deadline.
        dl = self.batcher.next_deadline(self.queue)
        if dl is not None and dl > now:
            push(dl, _DEADLINE, None)

    def _dispatch(self, model: str, worker, now: float, push) -> None:
        batch = self.batcher.take_batch(self.queue, model)
        service_s = self.service.batch_latency(model, len(batch))
        profile = self._profiles[model]
        if self.execute:
            outputs = worker.run_batch(
                model, profile.model, [r.x for r in batch], now, service_s
            )
        else:
            outputs = None
            worker.run_booking(model, len(batch), now, service_s)
        done = now + service_s
        for i, request in enumerate(batch):
            request.status = RequestStatus.DISPATCHED
            request.dispatch_time = now
            request.completion_time = done
            request.batch_size = len(batch)
            request.worker_id = worker.worker_id
            if outputs is not None:
                request.output = outputs[i]
        self.telemetry.record_batch(
            model, batch, worker.worker_id, now, service_s
        )
        push(done, _WORKER_FREE, batch)

    def _complete(self, batch: Sequence[InferenceRequest]) -> None:
        for request in batch:
            request.status = RequestStatus.COMPLETED
            self.telemetry.record_completion(request)

    # ------------------------------------------------------------------
    def report(self, scenario, slo_s: Optional[float] = None) -> Dict[str, object]:
        """Full serving report for a completed run.

        Includes the aggregate summary, per-model latency percentiles,
        pool/cache stats, and the analytic-model consistency cross-check
        (recorded busy intervals vs ``arch.inference`` recomputation).
        """
        horizon = max(scenario.duration_s, self.telemetry.makespan())
        if slo_s is None:
            slos = [
                p.slo_s for p in self._profiles.values() if p.slo_s is not None
            ]
            slo_s = min(slos) if slos else None
        out = self.telemetry.summary(
            horizon, slo_s=slo_s, cache_stats=self.pool.cache_stats()
        )
        out["offered_rate_rps"] = scenario.offered_rate
        out["offered_requests"] = scenario.num_requests
        out["per_model"] = {
            name: summarize_latencies(self.telemetry.latencies(name))
            for name in self._profiles
        }
        out["workers"] = self.pool.worker_stats()
        # Cross-check with a *fresh* ServiceModel (empty memo cache) so the
        # recorded busy intervals are re-derived from arch.inference from
        # scratch — drift or memo corruption in the runtime's own service
        # model shows up here instead of being read back as-is.
        fresh = ServiceModel(self.service.accelerator)
        for profile in self._profiles.values():
            fresh.register(profile)
        out["analytic_consistency"] = self.telemetry.cross_check_service_model(
            fresh.batch_latency
        )
        return out
