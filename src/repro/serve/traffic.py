"""Synthetic traffic scenarios for the serving runtime.

Every generator is deterministic in its seed and produces a
:class:`Scenario`: a time-sorted list of arrivals on the simulated clock.
Arrivals are ``(arrival_time, model_name)`` pairs, or
``(arrival_time, model_name, priority)`` triples for priority-classed
traffic (higher priority = more important; see
:class:`~repro.serve.request.Priority`).  Six canonical shapes cover the
load patterns a production deployment sees:

* **Poisson** — memoryless steady-state traffic at a fixed rate;
* **bursty (ON-OFF)** — alternating silence and Poisson bursts, the
  worst case for batching (arrivals cluster, then starve);
* **diurnal ramp** — a sinusoidal rate sweep between a base and a peak,
  the day/night cycle compressed to the simulation horizon;
* **multi-tenant mix** — Poisson arrivals split across several models by
  a popularity weighting, exercising placement and cache affinity;
* **priority mix** — Poisson arrivals split across priority classes
  (interactive / standard / batch), exercising class-aware shedding and
  priority-ordered batch forming;
* **multi-tenant priority** — both splits at once: each tenant model has
  its own class mix (e.g. an interactive-heavy tenant sharing the pool
  with a batch-analytics tenant).

Autoregressive-session traffic (the token serving engine) extends
arrivals with prompt/decode lengths (``decode_scenario``) and — for the
shared-prefix KV cache — with the prompt's actual **token ids**, so the
engine can content-address common prompt heads:

* **shared prefix** — a fleet where most sessions open with one common
  system prompt followed by a unique suffix (the 90 %-shared regime the
  prefix cache is benchmarked on);
* **few-shot pools** — a handful of few-shot templates of varying
  length, each arrival sampling one template plus a unique question;
* **multi-turn** — conversations re-submitting their growing history:
  each turn's prompt extends the previous turn's prompt, so all but the
  newest turn's tokens hit a warm prefix.

Inhomogeneous rates use Lewis-Shedler thinning against the peak rate, so
arrival statistics are exact, not binned.  Unbounded-memory and
divide-by-zero corner cases are validated away: generators draw in
capped chunks (``_CHUNK``) and reject non-finite or non-positive shape
parameters instead of looping forever.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "Scenario",
    "poisson_arrivals",
    "onoff_arrivals",
    "diurnal_arrivals",
    "assign_models",
    "assign_priorities",
    "geometric_lengths",
    "lognormal_lengths",
    "poisson_scenario",
    "bursty_scenario",
    "diurnal_scenario",
    "multi_tenant_scenario",
    "priority_scenario",
    "multi_tenant_priority_scenario",
    "decode_scenario",
    "shared_prefix_scenario",
    "fewshot_pool_scenario",
    "multiturn_scenario",
    "SCENARIO_NAMES",
]

SCENARIO_NAMES = (
    "poisson",
    "bursty",
    "diurnal",
    "multi_tenant",
    "priority",
    "multi_tenant_priority",
    "decode",
    "shared_prefix",
    "fewshot_pool",
    "multiturn",
)

# Arrivals are (time, model), (time, model, priority), or — for
# autoregressive sessions — (time, model, priority, prompt_len,
# decode_len), optionally extended with the prompt's token ids:
# (time, model, priority, prompt_len, decode_len, prompt_tokens).
Arrival = Union[
    Tuple[float, str],
    Tuple[float, str, int],
    Tuple[float, str, int, int, int],
    Tuple[float, str, int, int, int, Tuple[int, ...]],
]

# Cap on exponential-gap draws per chunk: keeps peak memory O(_CHUNK) no
# matter how large rate * duration is, while cumulative-sum chaining keeps
# the sequence deterministic and the tail exact.
_CHUNK = 65536


@dataclass(frozen=True)
class Scenario:
    """A named, fully materialised arrival trace."""

    name: str
    arrivals: Tuple[Arrival, ...]  # sorted by time
    duration_s: float

    @property
    def num_requests(self) -> int:
        return len(self.arrivals)

    @property
    def offered_rate(self) -> float:
        """Average offered load over the scenario horizon (req/s)."""
        return self.num_requests / self.duration_s if self.duration_s else 0.0

    def models(self) -> List[str]:
        return sorted({a[1] for a in self.arrivals})

    def priorities(self) -> List[int]:
        """Priority classes present (default class 0 for pairs)."""
        return sorted(
            {a[2] if len(a) > 2 else 0 for a in self.arrivals}
        )


def _check_finite(**params: float) -> None:
    for name, value in params.items():
        if not math.isfinite(value):
            raise ValueError(f"{name} must be finite, got {value}")


# ----------------------------------------------------------------------
# Arrival-time processes
# ----------------------------------------------------------------------
def poisson_arrivals(
    rate: float, duration: float, rng: np.random.Generator
) -> np.ndarray:
    """Homogeneous Poisson arrival times in ``[0, duration)``.

    Gaps are drawn in chunks of at most ``_CHUNK`` exponentials and
    chained through a running cumulative sum, so memory stays bounded for
    arbitrarily large ``rate * duration`` (the old code re-drew an
    O(rate * duration)-sized chunk on *every* pass) and the tail beyond
    the horizon is still generated and trimmed exactly.
    """
    _check_finite(rate=rate, duration=duration)
    if rate < 0:
        raise ValueError(f"rate must be >= 0, got {rate}")
    if rate == 0 or duration <= 0:
        return np.empty(0)
    times: List[np.ndarray] = []
    t = 0.0
    chunk = min(_CHUNK, max(16, int(rate * duration * 1.2)))
    while t < duration:
        gaps = rng.exponential(1.0 / rate, size=chunk)
        block = t + np.cumsum(gaps)
        times.append(block)
        t = block[-1]
    all_t = np.concatenate(times)
    return all_t[all_t < duration]


def onoff_arrivals(
    on_rate: float,
    on_s: float,
    off_s: float,
    duration: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """ON-OFF modulated Poisson: bursts at ``on_rate``, then silence.

    ``on_s`` must be positive and ``off_s`` non-negative — a zero or
    negative ``on_s`` would never advance the window cursor and loop
    forever (or walk backwards) instead of producing traffic.
    """
    _check_finite(on_rate=on_rate, on_s=on_s, off_s=off_s, duration=duration)
    if on_s <= 0:
        raise ValueError(f"on_s must be > 0, got {on_s}")
    if off_s < 0:
        raise ValueError(f"off_s must be >= 0, got {off_s}")
    out: List[np.ndarray] = []
    t = 0.0
    while t < duration:
        burst = poisson_arrivals(on_rate, min(on_s, duration - t), rng)
        out.append(t + burst)
        t += on_s + off_s
    return np.concatenate(out) if out else np.empty(0)


def diurnal_arrivals(
    base_rate: float,
    peak_rate: float,
    period: float,
    duration: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sinusoidal-rate Poisson via Lewis-Shedler thinning.

    Instantaneous rate: ``base + (peak - base) * (1 - cos(2πt/T)) / 2``
    — starts at the base ("night"), peaks mid-period.  ``period`` must be
    positive (zero would divide by zero in the phase; a negative period
    is meaningless) and ``peak_rate`` must be positive and >= base.
    """
    _check_finite(
        base_rate=base_rate, peak_rate=peak_rate, period=period,
        duration=duration,
    )
    if period <= 0:
        raise ValueError(f"period must be > 0, got {period}")
    if base_rate < 0:
        raise ValueError(f"base_rate must be >= 0, got {base_rate}")
    if peak_rate < base_rate:
        raise ValueError("peak_rate must be >= base_rate")
    candidates = poisson_arrivals(peak_rate, duration, rng)
    if candidates.size == 0:
        return candidates
    lam = base_rate + (peak_rate - base_rate) * (
        1.0 - np.cos(2.0 * np.pi * candidates / period)
    ) / 2.0
    keep = rng.random(candidates.size) < lam / peak_rate
    return candidates[keep]


def assign_models(
    times: np.ndarray,
    mix: Dict[str, float],
    rng: np.random.Generator,
) -> Tuple[Tuple[float, str], ...]:
    """Tag each arrival with a model drawn from the popularity ``mix``."""
    names = sorted(mix)
    weights = np.array([mix[n] for n in names], dtype=np.float64)
    if np.any(weights < 0) or weights.sum() <= 0:
        raise ValueError(f"bad model mix {mix}")
    weights = weights / weights.sum()
    picks = rng.choice(len(names), size=times.size, p=weights)
    order = np.argsort(times, kind="stable")
    return tuple((float(times[i]), names[picks[i]]) for i in order)


def assign_priorities(
    arrivals: Sequence[Tuple[float, str]],
    class_mix: Dict[int, float],
    rng: np.random.Generator,
) -> Tuple[Tuple[float, str, int], ...]:
    """Tag ``(time, model)`` arrivals with priority classes.

    ``class_mix`` maps priority class -> relative weight, e.g.
    ``{Priority.INTERACTIVE: 1, Priority.BATCH: 4}`` for a mostly-batch
    workload with an interactive foreground.
    """
    classes = sorted(class_mix)
    weights = np.array([class_mix[c] for c in classes], dtype=np.float64)
    if np.any(weights < 0) or weights.sum() <= 0:
        raise ValueError(f"bad class mix {class_mix}")
    weights = weights / weights.sum()
    picks = rng.choice(len(classes), size=len(arrivals), p=weights)
    return tuple(
        (t, model, classes[picks[i]])
        for i, (t, model) in enumerate(arrivals)
    )


# ----------------------------------------------------------------------
# Sequence-length samplers (autoregressive sessions)
# ----------------------------------------------------------------------
def _check_length_bounds(minimum: int, maximum: Optional[int]) -> None:
    if minimum < 1:
        raise ValueError(f"minimum must be >= 1, got {minimum}")
    if maximum is not None and maximum < minimum:
        raise ValueError(
            f"maximum must be >= minimum, got {maximum} < {minimum}"
        )


def geometric_lengths(
    n: int,
    mean: float,
    rng: np.random.Generator,
    minimum: int = 1,
    maximum: Optional[int] = None,
) -> np.ndarray:
    """``n`` geometric token counts with the given mean (ints >= minimum).

    The memoryless length distribution of chat-style decode traffic:
    most responses are short, a heavy tail keeps going — the mix that
    makes request-level batching waste slots on drained sequences.
    Deterministic in the RNG trace (one vectorised draw, same discipline
    as :func:`poisson_arrivals`); non-finite or sub-``minimum`` means
    are rejected rather than looping or dividing by zero.
    """
    _check_finite(mean=mean)
    _check_length_bounds(minimum, maximum)
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if mean < minimum:
        raise ValueError(
            f"mean must be >= minimum ({minimum}), got {mean}"
        )
    if n == 0:
        return np.empty(0, dtype=np.int64)
    p = 1.0 / (mean - minimum + 1.0)
    lengths = minimum + rng.geometric(p, size=n) - 1
    if maximum is not None:
        lengths = np.minimum(lengths, maximum)
    return lengths.astype(np.int64)


def lognormal_lengths(
    n: int,
    median: float,
    sigma: float,
    rng: np.random.Generator,
    minimum: int = 1,
    maximum: Optional[int] = None,
) -> np.ndarray:
    """``n`` lognormal token counts (ints in ``[minimum, maximum]``).

    The canonical prompt-length shape: a body around ``median`` with a
    multiplicative spread ``sigma`` (``sigma = 0`` degenerates to a
    constant ``median``).  Same determinism and validation discipline as
    :func:`geometric_lengths`.
    """
    _check_finite(median=median, sigma=sigma)
    _check_length_bounds(minimum, maximum)
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if median <= 0:
        raise ValueError(f"median must be > 0, got {median}")
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    if n == 0:
        return np.empty(0, dtype=np.int64)
    lengths = np.rint(
        rng.lognormal(math.log(median), sigma, size=n)
    ).astype(np.int64)
    lengths = np.maximum(lengths, minimum)
    if maximum is not None:
        lengths = np.minimum(lengths, maximum)
    return lengths


# ----------------------------------------------------------------------
# Canonical scenario builders
# ----------------------------------------------------------------------
def poisson_scenario(
    model: str, rate: float, duration: float, seed: int = 0
) -> Scenario:
    rng = np.random.default_rng(seed)
    times = poisson_arrivals(rate, duration, rng)
    return Scenario("poisson", assign_models(times, {model: 1.0}, rng), duration)


def bursty_scenario(
    model: str,
    on_rate: float,
    on_s: float,
    off_s: float,
    duration: float,
    seed: int = 0,
) -> Scenario:
    rng = np.random.default_rng(seed)
    times = onoff_arrivals(on_rate, on_s, off_s, duration, rng)
    return Scenario("bursty", assign_models(times, {model: 1.0}, rng), duration)


def diurnal_scenario(
    model: str,
    base_rate: float,
    peak_rate: float,
    duration: float,
    seed: int = 0,
    period: Optional[float] = None,
) -> Scenario:
    rng = np.random.default_rng(seed)
    times = diurnal_arrivals(
        base_rate, peak_rate, period or duration, duration, rng
    )
    return Scenario("diurnal", assign_models(times, {model: 1.0}, rng), duration)


def multi_tenant_scenario(
    mix: Dict[str, float], rate: float, duration: float, seed: int = 0
) -> Scenario:
    rng = np.random.default_rng(seed)
    times = poisson_arrivals(rate, duration, rng)
    return Scenario("multi_tenant", assign_models(times, mix, rng), duration)


def priority_scenario(
    model: str,
    rate: float,
    duration: float,
    class_mix: Dict[int, float],
    seed: int = 0,
) -> Scenario:
    """Poisson traffic to one model, split across priority classes."""
    rng = np.random.default_rng(seed)
    times = poisson_arrivals(rate, duration, rng)
    tagged = assign_priorities(
        assign_models(times, {model: 1.0}, rng), class_mix, rng
    )
    return Scenario("priority", tagged, duration)


def multi_tenant_priority_scenario(
    mix: Dict[str, float],
    rate: float,
    duration: float,
    class_mix_by_model: Dict[str, Dict[int, float]],
    seed: int = 0,
) -> Scenario:
    """Multi-tenant Poisson traffic where each tenant has a class mix.

    Models absent from ``class_mix_by_model`` send default-class (0)
    traffic.  Per-model class draws happen in sorted model order, keeping
    the trace deterministic in the seed.
    """
    rng = np.random.default_rng(seed)
    times = poisson_arrivals(rate, duration, rng)
    tagged: List[Arrival] = list(assign_models(times, mix, rng))
    for name in sorted(class_mix_by_model):
        idx = [i for i, a in enumerate(tagged) if a[1] == name]
        if not idx:
            continue
        sub = assign_priorities(
            [tagged[i][:2] for i in idx], class_mix_by_model[name], rng
        )
        for i, arrival in zip(idx, sub):
            tagged[i] = arrival
    arrivals = tuple(
        a if len(a) > 2 else (a[0], a[1], 0) for a in tagged
    )
    return Scenario("multi_tenant_priority", arrivals, duration)


def _tag_classes(
    times: np.ndarray,
    model: str,
    class_mix: Optional[Dict[int, float]],
    rng: np.random.Generator,
) -> Tuple[Tuple[float, str, int], ...]:
    """Single-model arrivals with priority classes (default class 0)."""
    tagged = assign_models(times, {model: 1.0}, rng)
    if class_mix:
        return assign_priorities(tagged, class_mix, rng)
    return tuple((t, m, 0) for t, m in tagged)


def decode_scenario(
    model: str,
    rate: float,
    duration: float,
    prompt_median: float = 24.0,
    prompt_sigma: float = 0.5,
    decode_mean: float = 16.0,
    class_mix: Optional[Dict[int, float]] = None,
    prompt_max: Optional[int] = None,
    decode_max: Optional[int] = None,
    seed: int = 0,
) -> Scenario:
    """Autoregressive-session traffic for the token serving engine.

    Poisson arrivals where each arrival is a **decode session**:
    ``(time, model, priority, prompt_len, decode_len)`` with lognormal
    prompt lengths (:func:`lognormal_lengths`) and geometric decode
    lengths (:func:`geometric_lengths`) — the mixed-length regime
    continuous batching exists for.  ``class_mix`` optionally splits
    sessions across priority classes (default: all class 0).  Draw order
    is fixed (times, classes, prompts, decodes), so the trace is
    deterministic in the seed.
    """
    rng = np.random.default_rng(seed)
    times = poisson_arrivals(rate, duration, rng)
    tagged = _tag_classes(times, model, class_mix, rng)
    prompts = lognormal_lengths(
        len(tagged), prompt_median, prompt_sigma, rng, maximum=prompt_max
    )
    decodes = geometric_lengths(
        len(tagged), decode_mean, rng, maximum=decode_max
    )
    arrivals = tuple(
        (t, m, p, int(prompts[i]), int(decodes[i]))
        for i, (t, m, p) in enumerate(tagged)
    )
    return Scenario("decode", arrivals, duration)


# ----------------------------------------------------------------------
# Shared-prefix session traffic (prefix-cache workloads)
# ----------------------------------------------------------------------
# Token ids are opaque content identifiers the engine's prefix cache
# hashes per block; a GPT-2-sized vocabulary keeps collisions of
# *random* suffixes with a shared head vanishingly unlikely.
_VOCAB = 50257


def _token_ids(n: int, rng: np.random.Generator) -> Tuple[int, ...]:
    return tuple(int(t) for t in rng.integers(0, _VOCAB, size=n))


def shared_prefix_scenario(
    model: str,
    rate: float,
    duration: float,
    prefix_len: int = 64,
    shared_fraction: float = 0.9,
    suffix_median: float = 8.0,
    suffix_sigma: float = 0.5,
    decode_mean: float = 8.0,
    class_mix: Optional[Dict[int, float]] = None,
    suffix_max: Optional[int] = None,
    decode_max: Optional[int] = None,
    seed: int = 0,
) -> Scenario:
    """A fleet sharing one system prompt: the prefix cache's home turf.

    Poisson session arrivals where a ``shared_fraction`` of prompts open
    with the *same* ``prefix_len``-token system prompt followed by a
    unique lognormal-length suffix; the rest are cold prompts of the
    same total-length distribution (so cache wins come from sharing,
    not shorter prompts).  Draw order is fixed (times, classes,
    suffixes, decodes, shared mask, per-arrival tokens), so the trace is
    deterministic in the seed.
    """
    if prefix_len < 1:
        raise ValueError(f"prefix_len must be >= 1, got {prefix_len}")
    if not 0.0 <= shared_fraction <= 1.0:
        raise ValueError(
            f"shared_fraction must be in [0, 1], got {shared_fraction}"
        )
    rng = np.random.default_rng(seed)
    times = poisson_arrivals(rate, duration, rng)
    tagged = _tag_classes(times, model, class_mix, rng)
    n = len(tagged)
    suffixes = lognormal_lengths(
        n, suffix_median, suffix_sigma, rng, maximum=suffix_max
    )
    decodes = geometric_lengths(n, decode_mean, rng, maximum=decode_max)
    shared = rng.random(n) < shared_fraction
    system_prompt = _token_ids(prefix_len, rng)
    arrivals: List[Arrival] = []
    for i, (t, m, p) in enumerate(tagged):
        if shared[i]:
            tokens = system_prompt + _token_ids(int(suffixes[i]), rng)
        else:
            tokens = _token_ids(prefix_len + int(suffixes[i]), rng)
        arrivals.append((t, m, p, len(tokens), int(decodes[i]), tokens))
    return Scenario("shared_prefix", tuple(arrivals), duration)


def fewshot_pool_scenario(
    model: str,
    rate: float,
    duration: float,
    templates: int = 4,
    template_median: float = 48.0,
    template_sigma: float = 0.3,
    template_weights: Optional[Sequence[float]] = None,
    suffix_median: float = 8.0,
    suffix_sigma: float = 0.5,
    decode_mean: float = 8.0,
    class_mix: Optional[Dict[int, float]] = None,
    seed: int = 0,
) -> Scenario:
    """A pool of few-shot templates: several hot prefixes at once.

    Each arrival samples one of ``templates`` fixed few-shot prompts
    (lognormal lengths around ``template_median``) by popularity —
    Zipf-like ``1/(k+1)`` weights unless ``template_weights`` is given —
    and appends a unique question suffix.  The prefix cache must keep
    several radix paths warm simultaneously and evict the cold tail.
    """
    if templates < 1:
        raise ValueError(f"templates must be >= 1, got {templates}")
    if template_weights is not None and len(template_weights) != templates:
        raise ValueError(
            f"template_weights must name all {templates} templates, got "
            f"{len(template_weights)}"
        )
    rng = np.random.default_rng(seed)
    times = poisson_arrivals(rate, duration, rng)
    tagged = _tag_classes(times, model, class_mix, rng)
    n = len(tagged)
    template_lens = lognormal_lengths(
        templates, template_median, template_sigma, rng
    )
    pool = [_token_ids(int(length), rng) for length in template_lens]
    weights = np.array(
        template_weights
        if template_weights is not None
        else [1.0 / (k + 1) for k in range(templates)],
        dtype=np.float64,
    )
    if np.any(weights < 0) or weights.sum() <= 0:
        raise ValueError(f"bad template weights {weights}")
    picks = rng.choice(templates, size=n, p=weights / weights.sum())
    suffixes = lognormal_lengths(n, suffix_median, suffix_sigma, rng)
    decodes = geometric_lengths(n, decode_mean, rng)
    arrivals: List[Arrival] = []
    for i, (t, m, p) in enumerate(tagged):
        tokens = pool[int(picks[i])] + _token_ids(int(suffixes[i]), rng)
        arrivals.append((t, m, p, len(tokens), int(decodes[i]), tokens))
    return Scenario("fewshot_pool", tuple(arrivals), duration)


def multiturn_scenario(
    model: str,
    rate: float,
    duration: float,
    turns: int = 3,
    think_time_s: float = 1e-8,
    prompt_median: float = 16.0,
    prompt_sigma: float = 0.5,
    turn_tokens_median: float = 12.0,
    turn_sigma: float = 0.5,
    decode_mean: float = 8.0,
    class_mix: Optional[Dict[int, float]] = None,
    seed: int = 0,
) -> Scenario:
    """Multi-turn conversations re-submitting a growing history.

    ``rate`` starts conversations (Poisson); each runs ``turns``
    rounds, re-submitting after an exponential ``think_time_s`` gap a
    prompt that **extends** the previous turn's prompt with fresh
    tokens (the reply context plus the new user turn).  Every turn
    after the first therefore re-presents the whole earlier history —
    the warm-prefix re-submission pattern, where the cache should trim
    prefill to roughly the newest turn.  Turn arrivals may land past
    ``duration`` (conversation tails drain after the horizon).
    """
    if turns < 1:
        raise ValueError(f"turns must be >= 1, got {turns}")
    _check_finite(think_time_s=think_time_s)
    if think_time_s < 0:
        raise ValueError(f"think_time_s must be >= 0, got {think_time_s}")
    rng = np.random.default_rng(seed)
    starts = poisson_arrivals(rate, duration, rng)
    tagged = _tag_classes(starts, model, class_mix, rng)
    arrivals: List[Arrival] = []
    for t0, m, p in tagged:
        tokens = _token_ids(
            int(lognormal_lengths(1, prompt_median, prompt_sigma, rng)[0]), rng
        )
        t = float(t0)
        for turn in range(turns):
            if turn > 0:
                t += float(rng.exponential(think_time_s)) if think_time_s else 0.0
                tokens = tokens + _token_ids(
                    int(
                        lognormal_lengths(
                            1, turn_tokens_median, turn_sigma, rng
                        )[0]
                    ),
                    rng,
                )
            decode_len = int(geometric_lengths(1, decode_mean, rng)[0])
            arrivals.append((t, m, p, len(tokens), decode_len, tokens))
    arrivals.sort(key=lambda a: a[0])
    return Scenario("multiturn", tuple(arrivals), duration)
