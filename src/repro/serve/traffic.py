"""Synthetic traffic scenarios for the serving runtime.

Every generator is deterministic in its seed and produces a
:class:`Scenario`: a time-sorted list of ``(arrival_time, model_name)``
pairs on the simulated clock.  Four canonical shapes cover the load
patterns a production deployment sees:

* **Poisson** — memoryless steady-state traffic at a fixed rate;
* **bursty (ON-OFF)** — alternating silence and Poisson bursts, the
  worst case for batching (arrivals cluster, then starve);
* **diurnal ramp** — a sinusoidal rate sweep between a base and a peak,
  the day/night cycle compressed to the simulation horizon;
* **multi-tenant mix** — Poisson arrivals split across several models by
  a popularity weighting, exercising placement and cache affinity.

Inhomogeneous rates use Lewis-Shedler thinning against the peak rate, so
arrival statistics are exact, not binned.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Scenario",
    "poisson_arrivals",
    "onoff_arrivals",
    "diurnal_arrivals",
    "assign_models",
    "poisson_scenario",
    "bursty_scenario",
    "diurnal_scenario",
    "multi_tenant_scenario",
    "SCENARIO_NAMES",
]

SCENARIO_NAMES = ("poisson", "bursty", "diurnal", "multi_tenant")


@dataclass(frozen=True)
class Scenario:
    """A named, fully materialised arrival trace."""

    name: str
    arrivals: Tuple[Tuple[float, str], ...]  # (time_s, model_name), sorted
    duration_s: float

    @property
    def num_requests(self) -> int:
        return len(self.arrivals)

    @property
    def offered_rate(self) -> float:
        """Average offered load over the scenario horizon (req/s)."""
        return self.num_requests / self.duration_s if self.duration_s else 0.0

    def models(self) -> List[str]:
        return sorted({m for _, m in self.arrivals})


# ----------------------------------------------------------------------
# Arrival-time processes
# ----------------------------------------------------------------------
def poisson_arrivals(
    rate: float, duration: float, rng: np.random.Generator
) -> np.ndarray:
    """Homogeneous Poisson arrival times in ``[0, duration)``."""
    if rate <= 0 or duration <= 0:
        return np.empty(0)
    # Draw in chunks until past the horizon — vectorised, deterministic.
    times: List[np.ndarray] = []
    t = 0.0
    expected = max(16, int(rate * duration * 1.2))
    while t < duration:
        gaps = rng.exponential(1.0 / rate, size=expected)
        chunk = t + np.cumsum(gaps)
        times.append(chunk)
        t = chunk[-1]
    all_t = np.concatenate(times)
    return all_t[all_t < duration]


def onoff_arrivals(
    on_rate: float,
    on_s: float,
    off_s: float,
    duration: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """ON-OFF modulated Poisson: bursts at ``on_rate``, then silence."""
    out: List[np.ndarray] = []
    t = 0.0
    while t < duration:
        burst = poisson_arrivals(on_rate, min(on_s, duration - t), rng)
        out.append(t + burst)
        t += on_s + off_s
    return np.concatenate(out) if out else np.empty(0)


def diurnal_arrivals(
    base_rate: float,
    peak_rate: float,
    period: float,
    duration: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sinusoidal-rate Poisson via Lewis-Shedler thinning.

    Instantaneous rate: ``base + (peak - base) * (1 - cos(2πt/T)) / 2``
    — starts at the base ("night"), peaks mid-period.
    """
    if peak_rate < base_rate:
        raise ValueError("peak_rate must be >= base_rate")
    candidates = poisson_arrivals(peak_rate, duration, rng)
    if candidates.size == 0:
        return candidates
    lam = base_rate + (peak_rate - base_rate) * (
        1.0 - np.cos(2.0 * np.pi * candidates / period)
    ) / 2.0
    keep = rng.random(candidates.size) < lam / peak_rate
    return candidates[keep]


def assign_models(
    times: np.ndarray,
    mix: Dict[str, float],
    rng: np.random.Generator,
) -> Tuple[Tuple[float, str], ...]:
    """Tag each arrival with a model drawn from the popularity ``mix``."""
    names = sorted(mix)
    weights = np.array([mix[n] for n in names], dtype=np.float64)
    if np.any(weights < 0) or weights.sum() <= 0:
        raise ValueError(f"bad model mix {mix}")
    weights = weights / weights.sum()
    picks = rng.choice(len(names), size=times.size, p=weights)
    order = np.argsort(times, kind="stable")
    return tuple((float(times[i]), names[picks[i]]) for i in order)


# ----------------------------------------------------------------------
# Canonical scenario builders
# ----------------------------------------------------------------------
def poisson_scenario(
    model: str, rate: float, duration: float, seed: int = 0
) -> Scenario:
    rng = np.random.default_rng(seed)
    times = poisson_arrivals(rate, duration, rng)
    return Scenario("poisson", assign_models(times, {model: 1.0}, rng), duration)


def bursty_scenario(
    model: str,
    on_rate: float,
    on_s: float,
    off_s: float,
    duration: float,
    seed: int = 0,
) -> Scenario:
    rng = np.random.default_rng(seed)
    times = onoff_arrivals(on_rate, on_s, off_s, duration, rng)
    return Scenario("bursty", assign_models(times, {model: 1.0}, rng), duration)


def diurnal_scenario(
    model: str,
    base_rate: float,
    peak_rate: float,
    duration: float,
    seed: int = 0,
    period: Optional[float] = None,
) -> Scenario:
    rng = np.random.default_rng(seed)
    times = diurnal_arrivals(
        base_rate, peak_rate, period or duration, duration, rng
    )
    return Scenario("diurnal", assign_models(times, {model: 1.0}, rng), duration)


def multi_tenant_scenario(
    mix: Dict[str, float], rate: float, duration: float, seed: int = 0
) -> Scenario:
    rng = np.random.default_rng(seed)
    times = poisson_arrivals(rate, duration, rng)
    return Scenario("multi_tenant", assign_models(times, mix, rng), duration)
