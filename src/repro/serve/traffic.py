"""Synthetic traffic scenarios for the serving runtime.

Every generator is deterministic in its seed and produces a
:class:`Scenario`: a time-sorted list of arrivals on the simulated clock.
Arrivals are ``(arrival_time, model_name)`` pairs, or
``(arrival_time, model_name, priority)`` triples for priority-classed
traffic (higher priority = more important; see
:class:`~repro.serve.request.Priority`).  Six canonical shapes cover the
load patterns a production deployment sees:

* **Poisson** — memoryless steady-state traffic at a fixed rate;
* **bursty (ON-OFF)** — alternating silence and Poisson bursts, the
  worst case for batching (arrivals cluster, then starve);
* **diurnal ramp** — a sinusoidal rate sweep between a base and a peak,
  the day/night cycle compressed to the simulation horizon;
* **multi-tenant mix** — Poisson arrivals split across several models by
  a popularity weighting, exercising placement and cache affinity;
* **priority mix** — Poisson arrivals split across priority classes
  (interactive / standard / batch), exercising class-aware shedding and
  priority-ordered batch forming;
* **multi-tenant priority** — both splits at once: each tenant model has
  its own class mix (e.g. an interactive-heavy tenant sharing the pool
  with a batch-analytics tenant).

Inhomogeneous rates use Lewis-Shedler thinning against the peak rate, so
arrival statistics are exact, not binned.  Unbounded-memory and
divide-by-zero corner cases are validated away: generators draw in
capped chunks (``_CHUNK``) and reject non-finite or non-positive shape
parameters instead of looping forever.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "Scenario",
    "poisson_arrivals",
    "onoff_arrivals",
    "diurnal_arrivals",
    "assign_models",
    "assign_priorities",
    "poisson_scenario",
    "bursty_scenario",
    "diurnal_scenario",
    "multi_tenant_scenario",
    "priority_scenario",
    "multi_tenant_priority_scenario",
    "SCENARIO_NAMES",
]

SCENARIO_NAMES = (
    "poisson",
    "bursty",
    "diurnal",
    "multi_tenant",
    "priority",
    "multi_tenant_priority",
)

# Arrivals are (time, model) or (time, model, priority).
Arrival = Union[Tuple[float, str], Tuple[float, str, int]]

# Cap on exponential-gap draws per chunk: keeps peak memory O(_CHUNK) no
# matter how large rate * duration is, while cumulative-sum chaining keeps
# the sequence deterministic and the tail exact.
_CHUNK = 65536


@dataclass(frozen=True)
class Scenario:
    """A named, fully materialised arrival trace."""

    name: str
    arrivals: Tuple[Arrival, ...]  # sorted by time
    duration_s: float

    @property
    def num_requests(self) -> int:
        return len(self.arrivals)

    @property
    def offered_rate(self) -> float:
        """Average offered load over the scenario horizon (req/s)."""
        return self.num_requests / self.duration_s if self.duration_s else 0.0

    def models(self) -> List[str]:
        return sorted({a[1] for a in self.arrivals})

    def priorities(self) -> List[int]:
        """Priority classes present (default class 0 for pairs)."""
        return sorted(
            {a[2] if len(a) > 2 else 0 for a in self.arrivals}
        )


def _check_finite(**params: float) -> None:
    for name, value in params.items():
        if not math.isfinite(value):
            raise ValueError(f"{name} must be finite, got {value}")


# ----------------------------------------------------------------------
# Arrival-time processes
# ----------------------------------------------------------------------
def poisson_arrivals(
    rate: float, duration: float, rng: np.random.Generator
) -> np.ndarray:
    """Homogeneous Poisson arrival times in ``[0, duration)``.

    Gaps are drawn in chunks of at most ``_CHUNK`` exponentials and
    chained through a running cumulative sum, so memory stays bounded for
    arbitrarily large ``rate * duration`` (the old code re-drew an
    O(rate * duration)-sized chunk on *every* pass) and the tail beyond
    the horizon is still generated and trimmed exactly.
    """
    _check_finite(rate=rate, duration=duration)
    if rate < 0:
        raise ValueError(f"rate must be >= 0, got {rate}")
    if rate == 0 or duration <= 0:
        return np.empty(0)
    times: List[np.ndarray] = []
    t = 0.0
    chunk = min(_CHUNK, max(16, int(rate * duration * 1.2)))
    while t < duration:
        gaps = rng.exponential(1.0 / rate, size=chunk)
        block = t + np.cumsum(gaps)
        times.append(block)
        t = block[-1]
    all_t = np.concatenate(times)
    return all_t[all_t < duration]


def onoff_arrivals(
    on_rate: float,
    on_s: float,
    off_s: float,
    duration: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """ON-OFF modulated Poisson: bursts at ``on_rate``, then silence.

    ``on_s`` must be positive and ``off_s`` non-negative — a zero or
    negative ``on_s`` would never advance the window cursor and loop
    forever (or walk backwards) instead of producing traffic.
    """
    _check_finite(on_rate=on_rate, on_s=on_s, off_s=off_s, duration=duration)
    if on_s <= 0:
        raise ValueError(f"on_s must be > 0, got {on_s}")
    if off_s < 0:
        raise ValueError(f"off_s must be >= 0, got {off_s}")
    out: List[np.ndarray] = []
    t = 0.0
    while t < duration:
        burst = poisson_arrivals(on_rate, min(on_s, duration - t), rng)
        out.append(t + burst)
        t += on_s + off_s
    return np.concatenate(out) if out else np.empty(0)


def diurnal_arrivals(
    base_rate: float,
    peak_rate: float,
    period: float,
    duration: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sinusoidal-rate Poisson via Lewis-Shedler thinning.

    Instantaneous rate: ``base + (peak - base) * (1 - cos(2πt/T)) / 2``
    — starts at the base ("night"), peaks mid-period.  ``period`` must be
    positive (zero would divide by zero in the phase; a negative period
    is meaningless) and ``peak_rate`` must be positive and >= base.
    """
    _check_finite(
        base_rate=base_rate, peak_rate=peak_rate, period=period,
        duration=duration,
    )
    if period <= 0:
        raise ValueError(f"period must be > 0, got {period}")
    if base_rate < 0:
        raise ValueError(f"base_rate must be >= 0, got {base_rate}")
    if peak_rate < base_rate:
        raise ValueError("peak_rate must be >= base_rate")
    candidates = poisson_arrivals(peak_rate, duration, rng)
    if candidates.size == 0:
        return candidates
    lam = base_rate + (peak_rate - base_rate) * (
        1.0 - np.cos(2.0 * np.pi * candidates / period)
    ) / 2.0
    keep = rng.random(candidates.size) < lam / peak_rate
    return candidates[keep]


def assign_models(
    times: np.ndarray,
    mix: Dict[str, float],
    rng: np.random.Generator,
) -> Tuple[Tuple[float, str], ...]:
    """Tag each arrival with a model drawn from the popularity ``mix``."""
    names = sorted(mix)
    weights = np.array([mix[n] for n in names], dtype=np.float64)
    if np.any(weights < 0) or weights.sum() <= 0:
        raise ValueError(f"bad model mix {mix}")
    weights = weights / weights.sum()
    picks = rng.choice(len(names), size=times.size, p=weights)
    order = np.argsort(times, kind="stable")
    return tuple((float(times[i]), names[picks[i]]) for i in order)


def assign_priorities(
    arrivals: Sequence[Tuple[float, str]],
    class_mix: Dict[int, float],
    rng: np.random.Generator,
) -> Tuple[Tuple[float, str, int], ...]:
    """Tag ``(time, model)`` arrivals with priority classes.

    ``class_mix`` maps priority class -> relative weight, e.g.
    ``{Priority.INTERACTIVE: 1, Priority.BATCH: 4}`` for a mostly-batch
    workload with an interactive foreground.
    """
    classes = sorted(class_mix)
    weights = np.array([class_mix[c] for c in classes], dtype=np.float64)
    if np.any(weights < 0) or weights.sum() <= 0:
        raise ValueError(f"bad class mix {class_mix}")
    weights = weights / weights.sum()
    picks = rng.choice(len(classes), size=len(arrivals), p=weights)
    return tuple(
        (t, model, classes[picks[i]])
        for i, (t, model) in enumerate(arrivals)
    )


# ----------------------------------------------------------------------
# Canonical scenario builders
# ----------------------------------------------------------------------
def poisson_scenario(
    model: str, rate: float, duration: float, seed: int = 0
) -> Scenario:
    rng = np.random.default_rng(seed)
    times = poisson_arrivals(rate, duration, rng)
    return Scenario("poisson", assign_models(times, {model: 1.0}, rng), duration)


def bursty_scenario(
    model: str,
    on_rate: float,
    on_s: float,
    off_s: float,
    duration: float,
    seed: int = 0,
) -> Scenario:
    rng = np.random.default_rng(seed)
    times = onoff_arrivals(on_rate, on_s, off_s, duration, rng)
    return Scenario("bursty", assign_models(times, {model: 1.0}, rng), duration)


def diurnal_scenario(
    model: str,
    base_rate: float,
    peak_rate: float,
    duration: float,
    seed: int = 0,
    period: Optional[float] = None,
) -> Scenario:
    rng = np.random.default_rng(seed)
    times = diurnal_arrivals(
        base_rate, peak_rate, period or duration, duration, rng
    )
    return Scenario("diurnal", assign_models(times, {model: 1.0}, rng), duration)


def multi_tenant_scenario(
    mix: Dict[str, float], rate: float, duration: float, seed: int = 0
) -> Scenario:
    rng = np.random.default_rng(seed)
    times = poisson_arrivals(rate, duration, rng)
    return Scenario("multi_tenant", assign_models(times, mix, rng), duration)


def priority_scenario(
    model: str,
    rate: float,
    duration: float,
    class_mix: Dict[int, float],
    seed: int = 0,
) -> Scenario:
    """Poisson traffic to one model, split across priority classes."""
    rng = np.random.default_rng(seed)
    times = poisson_arrivals(rate, duration, rng)
    tagged = assign_priorities(
        assign_models(times, {model: 1.0}, rng), class_mix, rng
    )
    return Scenario("priority", tagged, duration)


def multi_tenant_priority_scenario(
    mix: Dict[str, float],
    rate: float,
    duration: float,
    class_mix_by_model: Dict[str, Dict[int, float]],
    seed: int = 0,
) -> Scenario:
    """Multi-tenant Poisson traffic where each tenant has a class mix.

    Models absent from ``class_mix_by_model`` send default-class (0)
    traffic.  Per-model class draws happen in sorted model order, keeping
    the trace deterministic in the seed.
    """
    rng = np.random.default_rng(seed)
    times = poisson_arrivals(rate, duration, rng)
    tagged: List[Arrival] = list(assign_models(times, mix, rng))
    for name in sorted(class_mix_by_model):
        idx = [i for i, a in enumerate(tagged) if a[1] == name]
        if not idx:
            continue
        sub = assign_priorities(
            [tagged[i][:2] for i in idx], class_mix_by_model[name], rng
        )
        for i, arrival in zip(idx, sub):
            tagged[i] = arrival
    arrivals = tuple(
        a if len(a) > 2 else (a[0], a[1], 0) for a in tagged
    )
    return Scenario("multi_tenant_priority", arrivals, duration)
