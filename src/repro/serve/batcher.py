"""Dynamic micro-batching scheduler with priority-aware batch forming.

The scheduler coalesces compatible requests (same model) into
micro-batches dispatched through the weight-programmed executor as one
batched GEMM stream.  A batch launches when either

* ``max_batch_size`` requests for one model are waiting (size trigger), or
* the oldest waiting request of a model has waited ``max_wait_s``
  (deadline trigger — bounds the latency cost of waiting for company),

and a worker holding a replica of that model is free.  ``max_wait_s = 0``
with ``max_batch_size = 1`` degenerates to classic batch-1 serving, which
the benchmarks use as the baseline.

**Priorities.** Among *ready* models, dispatch order is decided by
effective priority: each waiting request scores
``priority + aging_rate_per_s * wait_time`` and a model is ranked by its
best waiting score.  Higher classes therefore preempt the head of the
dispatch order, while the aging term guarantees a low-class request
eventually outranks fresh high-class arrivals (no starvation — with
``aging_rate_per_s > 0`` a request gains one full class per
``1 / aging_rate_per_s`` seconds of waiting).  The same scoring orders
requests *within* a batch via :meth:`AdmissionQueue.pop_batch`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .clock import time_at_or_before
from .request import AdmissionQueue, InferenceRequest, RequestStatus

__all__ = ["BatchPolicy", "MicroBatcher"]


@dataclass(frozen=True)
class BatchPolicy:
    """Micro-batching knobs.

    ``aging_rate_per_s`` converts waiting time into priority: a request's
    effective class grows by ``aging_rate_per_s * wait_s``.  ``0`` keeps
    strict class order (starvation possible under sustained overload).
    """

    max_batch_size: int = 32
    max_wait_s: float = 2e-6
    aging_rate_per_s: float = 0.0

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {self.max_wait_s}")
        if self.aging_rate_per_s < 0:
            raise ValueError(
                f"aging_rate_per_s must be >= 0, got {self.aging_rate_per_s}"
            )


class MicroBatcher:
    """Decides which model's waiting requests form the next micro-batch."""

    def __init__(self, policy: Optional[BatchPolicy] = None):
        self.policy = policy or BatchPolicy()
        self._expired: List[InferenceRequest] = []
        # Observability hook (set by the runtime when tracing): each
        # formed batch lands as an instant on the control track.
        self.tracer = None

    # ------------------------------------------------------------------
    def deadline(self, queue: AdmissionQueue, model: str) -> Optional[float]:
        """Absolute time the oldest request of ``model`` must launch by."""
        oldest = queue.oldest_arrival(model)
        if oldest is None:
            return None
        return oldest + self.policy.max_wait_s

    def next_deadline(self, queue: AdmissionQueue) -> Optional[float]:
        """Earliest launch deadline across all waiting models."""
        deadlines = [
            self.deadline(queue, m) for m in queue.models_waiting()
        ]
        return min(deadlines) if deadlines else None

    def urgency(self, queue: AdmissionQueue, model: str, now: float) -> float:
        """Best effective priority among ``model``'s waiting requests.

        ``priority + aging_rate_per_s * wait``; the per-class FIFO heads
        are sufficient (within a class, the oldest request scores best).
        """
        rate = self.policy.aging_rate_per_s
        return max(
            (
                r.priority + rate * (now - r.arrival_time)
                for r in queue.class_heads(model)
            ),
            default=-float("inf"),
        )

    def ready_model(
        self, queue: AdmissionQueue, now: float, excluded=()
    ) -> Optional[str]:
        """A model whose waiting requests should launch *now*, or None.

        A model is ready when its pending count fills a batch or its
        oldest request's deadline has expired (up to relative timestamp
        tolerance — an absolute epsilon underflows at large simulated
        times).  Among ready models the highest urgency wins (effective
        priority with aging), ties broken by earliest deadline — i.e. the
        model whose head request has waited longest.  ``excluded`` models
        are skipped (the runtime excludes models whose replicas are all
        busy).
        """
        best: Optional[Tuple[float, float, str]] = None
        for model in queue.models_waiting():
            if model in excluded:
                continue
            pending = queue.pending(model)
            dl = self.deadline(queue, model)
            if pending >= self.policy.max_batch_size or time_at_or_before(
                dl, now
            ):
                key = (-self.urgency(queue, model, now), dl, model)
                if best is None or key < best:
                    best = key
        return best[2] if best else None

    def take_batch(
        self, queue: AdmissionQueue, model: str, now: Optional[float] = None
    ) -> List[InferenceRequest]:
        """Pop the micro-batch for ``model`` (effective-priority order).

        Requests whose per-request ``deadline`` has already passed are
        filtered out *at dispatch* (marked ``TIMED_OUT`` and parked for
        :meth:`drain_expired`) — launching a batch slot for work nobody
        is waiting on anymore would burn capacity the storm-degraded
        fleet needs for live traffic.  The batch refills from the queue
        until it is full or the queue runs dry.
        """
        batch: List[InferenceRequest] = []
        while len(batch) < self.policy.max_batch_size:
            want = self.policy.max_batch_size - len(batch)
            popped = queue.pop_batch(
                model,
                want,
                now=now,
                aging_rate=self.policy.aging_rate_per_s,
            )
            if not popped:
                break
            for r in popped:
                if (
                    now is not None
                    and r.deadline is not None
                    and not time_at_or_before(now, r.deadline)
                ):
                    r.status = RequestStatus.TIMED_OUT
                    self._expired.append(r)
                else:
                    batch.append(r)
        if self.tracer is not None and now is not None and batch:
            self.tracer.instant(
                "control",
                0,
                f"batch_formed:{model}",
                now,
                args={"batch": len(batch)},
            )
        return batch

    def drain_expired(self) -> List[InferenceRequest]:
        """Deadline-expired requests filtered since the last drain."""
        out, self._expired = self._expired, []
        return out
