"""Dynamic micro-batching scheduler.

The scheduler coalesces compatible requests (same model) into
micro-batches dispatched through the weight-programmed executor as one
batched GEMM stream.  A batch launches when either

* ``max_batch_size`` requests for one model are waiting (size trigger), or
* the oldest waiting request of a model has waited ``max_wait_s``
  (deadline trigger — bounds the latency cost of waiting for company),

and a worker holding a replica of that model is free.  ``max_wait_s = 0``
with ``max_batch_size = 1`` degenerates to classic batch-1 serving, which
the benchmarks use as the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .request import AdmissionQueue, InferenceRequest

__all__ = ["BatchPolicy", "MicroBatcher"]


@dataclass(frozen=True)
class BatchPolicy:
    """Micro-batching knobs."""

    max_batch_size: int = 32
    max_wait_s: float = 2e-6

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {self.max_wait_s}")


class MicroBatcher:
    """Decides which model's waiting requests form the next micro-batch."""

    def __init__(self, policy: Optional[BatchPolicy] = None):
        self.policy = policy or BatchPolicy()

    # ------------------------------------------------------------------
    def deadline(self, queue: AdmissionQueue, model: str) -> Optional[float]:
        """Absolute time the oldest request of ``model`` must launch by."""
        oldest = queue.oldest_arrival(model)
        if oldest is None:
            return None
        return oldest + self.policy.max_wait_s

    def next_deadline(self, queue: AdmissionQueue) -> Optional[float]:
        """Earliest launch deadline across all waiting models."""
        deadlines = [
            self.deadline(queue, m) for m in queue.models_waiting()
        ]
        return min(deadlines) if deadlines else None

    def ready_model(
        self, queue: AdmissionQueue, now: float, excluded=()
    ) -> Optional[str]:
        """A model whose waiting requests should launch *now*, or None.

        A model is ready when its pending count fills a batch or its
        oldest request's deadline has expired; among ready models the
        earliest deadline wins, i.e. the model whose head request has
        waited longest.  ``excluded`` models are skipped (the runtime
        excludes models whose replicas are all busy).
        """
        best: Optional[Tuple[float, str]] = None
        for model in queue.models_waiting():
            if model in excluded:
                continue
            pending = queue.pending(model)
            dl = self.deadline(queue, model)
            if pending >= self.policy.max_batch_size or dl <= now + 1e-15:
                key = (dl, model)
                if best is None or key < best:
                    best = key
        return best[1] if best else None

    def take_batch(
        self, queue: AdmissionQueue, model: str
    ) -> List[InferenceRequest]:
        """Pop the micro-batch for ``model`` (oldest first, FIFO)."""
        return queue.pop_batch(model, self.policy.max_batch_size)
