"""Deterministic "flight reports" for traced serving runs.

A flight report is the one-stop post-run artifact the serving benches
emit: run config, the fleet critical-path rollup
(:func:`~repro.serve.observability.critical_path.fleet_rollup`),
bit-exact hardware attribution
(:class:`~repro.serve.observability.profiler.HardwareAttributionProfiler`),
SLO attainment, trace volume, and the worst-session outlier exemplars —
bundled into one JSON document (:func:`report_to_json`) and one
markdown rendering (:func:`report_to_markdown`), both pure functions of
the recorded run, so two seeded replays produce byte-identical
artifacts.

``telemetry`` is duck-typed: an
:class:`~repro.serve.telemetry.EngineTelemetry` contributes its
completed sessions to the critical-path rollup and (with ``profile``)
its step records to the attribution; passing neither still yields a
valid report over the trace/metrics/SLO planes alone.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from .critical_path import PHASE_NAMES, fleet_rollup
from .profiler import HardwareAttributionProfiler

__all__ = ["build_flight_report", "report_to_json", "report_to_markdown"]

SCHEMA_VERSION = 1


def build_flight_report(
    observability,
    *,
    name: str = "serving run",
    config: Optional[Dict[str, Any]] = None,
    telemetry=None,
    profile=None,
    accelerator=None,
    worst_k: int = 3,
    now: Optional[float] = None,
    sampled=None,
) -> Dict[str, Any]:
    """Bundle one traced run's analysis into a single report dict.

    ``sampled`` (a :class:`~.streaming.TailSampler`) switches the
    critical-path section to sketch mode: exact exemplars over the
    surviving timelines plus population-wide sketched percentiles.
    """
    report: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "name": name,
        "config": dict(config) if config else {},
    }

    tracer = observability.tracer
    report["trace"] = tracer.summary() if tracer is not None else None

    sessions = getattr(telemetry, "sessions", None)
    if tracer is not None and sessions:
        report["critical_path"] = fleet_rollup(
            tracer, sessions, worst_k=worst_k, sampled=sampled
        )
    else:
        report["critical_path"] = None

    if telemetry is not None and profile is not None:
        attribution = HardwareAttributionProfiler(
            accelerator
        ).attribute_engine(profile, telemetry)
        report["attribution"] = attribution
    else:
        report["attribution"] = None

    report["metrics"] = {
        "metrics": len(observability.registry.metrics()),
        "samples": len(observability.registry.samples()),
    }
    report["slo"] = (
        observability.slo.summary(now)
        if observability.slo is not None
        else None
    )
    return report


def report_to_json(report: Dict[str, Any]) -> str:
    """Deterministic JSON artifact (sorted keys, trailing newline)."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def _md_row(cells) -> str:
    return "| " + " | ".join(str(c) for c in cells) + " |"


def _fmt_s(seconds: Optional[float]) -> str:
    return "-" if seconds is None else f"{seconds:.6e}"


def _exemplar_line(tag: str, exemplar: Optional[Dict[str, Any]]) -> str:
    if exemplar is None:
        return f"- {tag}: (no sessions)"
    phases = exemplar["phases"] or {}
    split = ", ".join(
        f"{name} {_fmt_s(phases[name])}" for name in PHASE_NAMES if name in phases
    )
    return (
        f"- {tag}: session {exemplar['session_id']} "
        f"(class {exemplar['priority']}) {_fmt_s(exemplar['value_s'])} s — "
        f"{split}"
    )


def report_to_markdown(report: Dict[str, Any]) -> str:
    """Deterministic markdown rendering of :func:`build_flight_report`."""
    lines = [f"# Flight report — {report['name']}", ""]

    config = report.get("config") or {}
    if config:
        lines += ["## Config", "", _md_row(["key", "value"]), _md_row(["---", "---"])]
        lines += [_md_row([key, config[key]]) for key in sorted(config)]
        lines.append("")

    trace = report.get("trace")
    if trace is not None:
        lines += [
            "## Trace",
            "",
            f"{trace['spans']} spans, {trace['instants']} instants "
            f"(by track: {trace['spans_by_track']})",
            "",
        ]

    rollup = report.get("critical_path")
    if rollup is not None:
        lines += [
            "## Critical path",
            "",
            f"{rollup['sessions']} completed sessions, "
            f"{rollup['exact_sessions']} with bit-exact phase decompositions",
            "",
            _md_row(["phase", "total_s", "share"]),
            _md_row(["---", "---", "---"]),
        ]
        for phase in PHASE_NAMES:
            lines.append(
                _md_row(
                    [
                        phase,
                        _fmt_s(rollup["phase_totals_s"][phase]),
                        f"{rollup['phase_shares'][phase]:.2%}",
                    ]
                )
            )
        lines.append("")
        sampled = rollup.get("sampled")
        if sampled is not None:
            lines += [
                "### Tail-sampled fleet (sketch mode)",
                "",
                f"{sampled['folded']} sessions folded into sketches "
                f"(alpha {sampled['alpha']}), {sampled['kept']} kept at "
                f"full fidelity, {sampled['dropped']} dropped",
                "",
                _md_row(["distribution", "count", "p50_s", "p99_s"]),
                _md_row(["---", "---", "---", "---"]),
            ]
            for name in sorted(sampled["sketches"]):
                sketch = sampled["sketches"][name]
                lines.append(
                    _md_row(
                        [
                            name,
                            sketch["count"],
                            _fmt_s(sketch["p50_s"]),
                            _fmt_s(sketch["p99_s"]),
                        ]
                    )
                )
            lines.append("")
        for metric, title in (("ttft", "TTFT"), ("e2e", "E2E")):
            block = rollup.get(metric)
            if block is None:
                continue
            lines.append(f"### {title} percentile attribution")
            lines.append("")
            lines.append(_exemplar_line("p50", block["p50"]))
            lines.append(_exemplar_line("p99", block["p99"]))
            lines.append("")
        if rollup["classes"]:
            lines += ["### Blocking sessions per class", ""]
            for cls in sorted(rollup["classes"]):
                info = rollup["classes"][cls]
                lines.append(
                    f"- **{cls}** ({info['sessions']} sessions, "
                    f"{info['outliers']} MAD outliers):"
                )
                for b in info["worst"]:
                    tag = " [outlier]" if b["outlier"] else ""
                    lines.append(
                        f"  - session {b['session_id']}: "
                        f"{_fmt_s(b['e2e_s'])} s, dominated by "
                        f"{b['dominant_phase']}{tag}"
                    )
            lines.append("")

    attribution = report.get("attribution")
    if attribution is not None:
        lines += [
            "## Hardware attribution",
            "",
            f"{attribution['checked_spans']} steps re-priced, max abs error "
            f"{_fmt_s(attribution['max_abs_error_s'])} s (bit-exact), busy "
            f"{_fmt_s(attribution['total_busy_s'])} s, stall "
            f"{_fmt_s(attribution['stall_s'])} s",
            "",
            _md_row(["component", "seconds", "share", "spans"]),
            _md_row(["---", "---", "---", "---"]),
        ]
        for row in attribution["components"]:
            lines.append(
                _md_row(
                    [
                        row["path"],
                        _fmt_s(row["seconds"]),
                        f"{row['share']:.2%}",
                        row["spans"],
                    ]
                )
            )
        lines.append("")

    slo = report.get("slo")
    if slo is not None:
        lines += [
            "## SLO",
            "",
            f"objective {slo['objective']} ({slo['slo']}), "
            f"{slo['alerts_fired']} burn alerts fired",
            "",
        ]
        for key in sorted(slo["keys"]):
            info = slo["keys"][key]
            rate = info["error_rate"]
            lines.append(
                f"- {key}: {info['events']} events, "
                f"error rate {'-' if rate is None else f'{rate:.4f}'}"
            )
        lines.append("")

    metrics = report.get("metrics")
    if metrics is not None:
        lines += [
            "## Metrics",
            "",
            f"{metrics['metrics']} metric families, "
            f"{metrics['samples']} exported samples",
            "",
        ]
    return "\n".join(lines)
