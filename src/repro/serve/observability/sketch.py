"""Deterministic relative-error quantile sketch (DDSketch-style).

A :class:`QuantileSketch` summarises an arbitrary stream of finite
floats in bounded memory while answering any quantile to within a
declared *relative* error ``alpha`` (Masson, Lee & Law, "DDSketch",
VLDB '19).  Values are binned by logarithm: with ``gamma = (1 + alpha)
/ (1 - alpha)``, bucket ``k`` covers ``(gamma**(k-1), gamma**k]`` and
reports the midpoint estimate ``2 * gamma**k / (gamma + 1)``, which is
within a factor ``1 ± alpha`` of every value in the bucket.  The bucket
index ``ceil(log(v) / log(gamma))`` is monotone in ``v`` (correctly
rounded log and division preserve order), so bucket counts partition
the sorted multiset in value order and the nearest-rank walk lands in
the bucket that *contains* the exact nearest-rank value — the error
bound is a theorem, not a heuristic.

Everything else is exact: ``count`` is an integer, ``min``/``max`` are
the observed floats, and ``sum`` is kept as a canonical dyadic rational
(integer mantissa over a power of two — every finite float is one, via
``float.as_integer_ratio``), so merging is *lossless*: merge is exactly
associative and commutative, and a merged sketch is bit-identical to
the sketch of the concatenated stream.  Serialization
(:meth:`to_dict` / :meth:`from_dict`) round-trips the full state
canonically, which is what makes sketch-carrying artifacts
byte-identical across seeded replays.

Determinism: pure integer/float arithmetic on the inputs — no clocks,
no randomness, no iteration-order dependence (bins serialize sorted).

Memory: the bin count is bounded by the stream's dynamic range, not its
length — ``log(max/min) / log(gamma)`` bins (~290 for 5 decades at
``alpha = 0.02``) no matter how many values are folded in.  Magnitudes
below :data:`MIN_INDEXABLE` are indistinguishable from zero at any
practical ``alpha`` (their bucket estimate would underflow through the
denormal range, voiding the relative-error bound) and are counted in
the exact zero bucket instead.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["MIN_INDEXABLE", "QuantileSketch"]

# Magnitudes below this are binned as zero: gamma**k for their index
# would land in (or below) the denormal range, where the bucket
# midpoint itself loses relative precision and the alpha bound breaks.
MIN_INDEXABLE = 1e-300


class QuantileSketch:
    """Log-bucketed quantile sketch with relative-error bound ``alpha``."""

    __slots__ = (
        "alpha",
        "gamma",
        "_log_gamma",
        "_bins",
        "_neg_bins",
        "_zero",
        "_count",
        "_sum_num",
        "_sum_shift",
        "_min",
        "_max",
    )

    def __init__(self, alpha: float = 0.01):
        alpha = float(alpha)
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self.alpha = alpha
        self.gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self.gamma)
        self._bins: Dict[int, int] = {}       # k -> count, value > 0
        self._neg_bins: Dict[int, int] = {}   # k -> count, |value|, value < 0
        self._zero = 0
        self._count = 0
        # Exact running sum as a canonical dyadic rational num / 2**shift.
        self._sum_num = 0
        self._sum_shift = 0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _key(self, magnitude: float) -> int:
        return math.ceil(math.log(magnitude) / self._log_gamma)

    def add(self, value: float, weight: int = 1) -> None:
        """Fold ``value`` in ``weight`` times.  Non-finite values raise:
        a NaN/Inf would silently corrupt every quantile downstream."""
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"sketch values must be finite, got {value!r}")
        weight = int(weight)
        if weight < 1:
            raise ValueError(f"weight must be a positive int, got {weight}")
        if value > MIN_INDEXABLE:
            k = self._key(value)
            self._bins[k] = self._bins.get(k, 0) + weight
        elif value < -MIN_INDEXABLE:
            k = self._key(-value)
            self._neg_bins[k] = self._neg_bins.get(k, 0) + weight
        else:
            self._zero += weight
        self._count += weight
        num, den = value.as_integer_ratio()
        self._fold_sum(num * weight, den.bit_length() - 1)
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    def _fold_sum(self, num: int, shift: int) -> None:
        """Add ``num / 2**shift`` to the exact sum; keep it canonical."""
        if shift > self._sum_shift:
            self._sum_num <<= shift - self._sum_shift
            self._sum_shift = shift
        else:
            num <<= self._sum_shift - shift
        self._sum_num += num
        # Canonical form: num odd or zero.  Because the representation
        # is a function of the exact rational value alone, merge order
        # can never leak into the serialized state.
        if self._sum_num == 0:
            self._sum_shift = 0
        else:
            while self._sum_num % 2 == 0 and self._sum_shift > 0:
                self._sum_num //= 2
                self._sum_shift -= 1

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Lossless in-place merge; requires identical ``alpha``."""
        if not isinstance(other, QuantileSketch):
            raise ValueError(f"cannot merge {type(other).__name__}")
        if other.alpha != self.alpha:
            raise ValueError(
                f"cannot merge sketches with alpha {self.alpha} and "
                f"{other.alpha}: bucket boundaries differ"
            )
        for k, n in other._bins.items():
            self._bins[k] = self._bins.get(k, 0) + n
        for k, n in other._neg_bins.items():
            self._neg_bins[k] = self._neg_bins.get(k, 0) + n
        self._zero += other._zero
        self._count += other._count
        self._fold_sum(other._sum_num, other._sum_shift)
        if other._min is not None and (
            self._min is None or other._min < self._min
        ):
            self._min = other._min
        if other._max is not None and (
            self._max is None or other._max > self._max
        ):
            self._max = other._max
        return self

    # ------------------------------------------------------------------
    # Exact accessors
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        """The exact stream sum, correctly rounded to float once."""
        return self._sum_num / (1 << self._sum_shift)

    @property
    def min(self) -> Optional[float]:
        return self._min

    @property
    def max(self) -> Optional[float]:
        return self._max

    @property
    def zero_count(self) -> int:
        return self._zero

    @property
    def bin_count(self) -> int:
        """Occupied buckets (the memory footprint driver)."""
        return len(self._bins) + len(self._neg_bins) + (1 if self._zero else 0)

    def bin_upper(self, k: int) -> float:
        """Upper boundary of positive bucket ``k`` (``gamma**k``)."""
        return self.gamma ** k

    def positive_bin_items(self) -> List[Tuple[int, int]]:
        """Positive ``(bucket index, count)`` pairs, ascending index."""
        return sorted(self._bins.items())

    # ------------------------------------------------------------------
    # Quantiles
    # ------------------------------------------------------------------
    def _estimate(self, k: int, negative: bool) -> float:
        est = 2.0 * self.gamma ** k / (self.gamma + 1.0)
        return -est if negative else est

    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank ``q``-th percentile estimate (``q`` in [0, 100]).

        ``None`` on an empty sketch.  The estimate is within relative
        error ``alpha`` of the exact nearest-rank value of the folded
        stream (plus float rounding in ``gamma**k``); zeros (and
        sub-:data:`MIN_INDEXABLE` magnitudes) report exactly ``0.0``.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self._count == 0:
            return None
        # Nearest-rank index, then a walk in value order: negative
        # buckets from most-negative, the zero bucket, then positive.
        rank = max(0, math.ceil(q / 100.0 * self._count) - 1)
        acc = 0
        for k in sorted(self._neg_bins, reverse=True):
            acc += self._neg_bins[k]
            if rank < acc:
                return self._estimate(k, negative=True)
        acc += self._zero
        if rank < acc:
            return 0.0
        for k in sorted(self._bins):
            acc += self._bins[k]
            if rank < acc:
                return self._estimate(k, negative=False)
        # Unreachable: bucket counts sum to _count.
        raise RuntimeError("sketch bucket counts diverged from count")

    def quantile(self, fraction: float) -> Optional[float]:
        """:meth:`percentile` with ``fraction`` in [0, 1]."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"quantile fraction must be in [0, 1], got {fraction}")
        return self.percentile(fraction * 100.0)

    def cdf(self, threshold: float) -> Optional[float]:
        """Approximate fraction of folded values ``<= threshold``.

        Exact up to bucket resolution: values in the threshold's own
        bucket (within relative ``alpha`` of it) may land on either
        side.  ``None`` on an empty sketch.
        """
        threshold = float(threshold)
        if not math.isfinite(threshold):
            raise ValueError(f"cdf threshold must be finite, got {threshold!r}")
        if self._count == 0:
            return None
        neg_total = 0
        for n in self._neg_bins.values():
            neg_total += n
        if threshold < -MIN_INDEXABLE:
            k_t = self._key(-threshold)
            acc = 0
            for k, n in self._neg_bins.items():
                if k >= k_t:
                    acc += n
            return acc / self._count
        acc = neg_total + self._zero
        if threshold > MIN_INDEXABLE:
            k_t = self._key(threshold)
            for k, n in self._bins.items():
                if k <= k_t:
                    acc += n
        return acc / self._count

    # ------------------------------------------------------------------
    # Canonical serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-safe state: ``from_dict(to_dict())`` is exact
        and two equal-valued sketches serialize identically."""
        return {
            "kind": "ddsketch",
            "alpha": self.alpha,
            "count": self._count,
            "zero": self._zero,
            "bins": {str(k): self._bins[k] for k in sorted(self._bins)},
            "neg_bins": {
                str(k): self._neg_bins[k] for k in sorted(self._neg_bins)
            },
            "sum": [self._sum_num, self._sum_shift],
            "min": self._min,
            "max": self._max,
        }

    @classmethod
    def from_dict(cls, state: Dict[str, Any]) -> "QuantileSketch":
        if state.get("kind") != "ddsketch":
            raise ValueError(f"not a sketch dict: kind={state.get('kind')!r}")
        sketch = cls(alpha=state["alpha"])
        sketch._bins = {int(k): int(n) for k, n in state["bins"].items()}
        sketch._neg_bins = {
            int(k): int(n) for k, n in state["neg_bins"].items()
        }
        sketch._zero = int(state["zero"])
        sketch._count = int(state["count"])
        sketch._sum_num = int(state["sum"][0])
        sketch._sum_shift = int(state["sum"][1])
        sketch._min = state["min"]
        sketch._max = state["max"]
        return sketch

    def to_json(self) -> str:
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def byte_size(self) -> int:
        """Bytes of the canonical serialization — the budget the scale
        gate holds fixed while session counts grow."""
        return len(self.to_json().encode("utf-8"))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:
        return (
            f"QuantileSketch(alpha={self.alpha}, count={self._count}, "
            f"bins={self.bin_count})"
        )
