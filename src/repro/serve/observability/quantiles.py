"""Shared quantile primitives for the observability plane.

One home for the two percentile conventions the repo uses, so the
telemetry summaries, the critical-path rollups, the run exports and the
sketch gate all agree on *which* value "p99" names:

* :func:`nearest_rank` / :func:`nearest_rank_value` — the classic
  nearest-rank definition (an actual observed value, never an
  interpolation), used wherever a percentile must name a *real*
  session/exemplar and wherever the sketch error gate cross-checks the
  :class:`~repro.serve.observability.sketch.QuantileSketch` estimate
  against ground truth;
* :func:`percentile` — numpy's linear-interpolated percentile, the
  convention :mod:`repro.serve.telemetry` summaries and the autoscaler
  control loop were built on (changing their interpolation would move
  every committed gate number).

Both reject NaN inputs explicitly: a NaN silently poisons sorts (it is
unordered, so ``sorted`` produces an arbitrary permutation around it)
and numpy percentiles (the result is NaN), which then propagates into
committed artifacts as a non-deterministic or useless number.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

__all__ = ["nearest_rank", "nearest_rank_value", "percentile"]


def _reject_nan(values: Sequence[float], who: str) -> None:
    for v in values:
        if isinstance(v, float) and math.isnan(v):
            raise ValueError(f"{who} got a NaN input value")


def nearest_rank(values: Sequence[float], q: float) -> int:
    """Index of the nearest-rank ``q``-th percentile in a sorted list."""
    if not values:
        raise ValueError("nearest_rank of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    return max(0, math.ceil(q / 100.0 * len(values)) - 1)


def nearest_rank_value(
    values: Sequence[float], q: float, assume_sorted: bool = False
) -> float:
    """The nearest-rank ``q``-th percentile *value* of ``values``.

    Always an element of ``values`` (never interpolated) — the exact
    ground truth the sketch gate compares
    :meth:`~repro.serve.observability.sketch.QuantileSketch.percentile`
    estimates against.  NaN inputs are rejected rather than silently
    corrupting the sort order.
    """
    _reject_nan(values, "nearest_rank_value")
    ordered: List[float] = (
        list(values) if assume_sorted else sorted(values)
    )
    return ordered[nearest_rank(ordered, q)]


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile à la np.percentile; 0.0 for empty
    input.  ``q`` outside ``[0, 100]`` is rejected explicitly (numpy's
    own message names its internal parameter, not the caller's bug), as
    is any NaN input (np.percentile would return NaN instead of
    flagging the corrupt sample)."""
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    if not len(values):
        return 0.0
    arr = np.asarray(values, dtype=np.float64)
    if np.isnan(arr).any():
        raise ValueError("percentile got a NaN input value")
    return float(np.percentile(arr, q))
