"""Bounded-memory streaming aggregators and tail-based trace sampling.

Everything in this module holds its memory *fixed* while the traffic
grows — the piece the observability plane was missing on the road to
million-session benches (ROADMAP: "event-driven engine core so benches
reach millions of sessions"):

* :class:`SpaceSavingTopK` — the space-saving heavy-hitter summary
  (Metwally, Agrawal & El Abbadi, ICDT '05) under a fixed slot budget,
  used for per-model/per-class attribution: each reported count carries
  its worst-case overestimate ``error``, and any key whose true count
  exceeds the evicted floor is guaranteed present.
* :class:`WindowedSketch` — per-time-window
  :class:`~repro.serve.observability.sketch.QuantileSketch` aggregation
  under a fixed window budget: when the covered time span outgrows the
  budget the window width doubles and adjacent windows merge pairwise
  (losslessly — sketch merge is exact), trading resolution for span
  like a zoomable timeline.
* :class:`ByteBudgetRing` — a byte-budgeted ring of JSON-able records:
  appends evict from the head until the canonical-serialized total fits
  the budget, so raw exemplars can never grow without bound.
* :class:`TailSampler` — Dapper-style *tail-based* sampling over the
  :class:`~repro.serve.observability.trace.Tracer`: once a session is
  terminal, its phase durations are folded into sketches (every
  terminal session, kept or not — so sketch quantiles describe the full
  population), and its raw span timeline survives only if the session
  is *interesting* — faulted/stalled, SLO-violating, a MAD latency
  outlier — or lands in a deterministic 1-in-N head sample keyed on a
  session-id hash.  Everything else is dropped from the tracer, an
  exemplar stub is pushed into the byte-budgeted ring, and memory stops
  scaling with traffic.

Determinism: the head sample uses a fixed multiplicative integer hash
of the session id (no :mod:`random`, no iteration-order dependence),
the outlier rule is the same :func:`~.critical_path.mad_outliers`
arithmetic the rollups use, and every summary serializes with sorted
keys — two seeded replays produce byte-identical sampler state.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from .critical_path import mad_outliers
from .sketch import QuantileSketch

__all__ = [
    "SpaceSavingTopK",
    "WindowedSketch",
    "ByteBudgetRing",
    "TailSamplingPolicy",
    "TailSampler",
    "head_keep",
]

# Knuth's multiplicative hash constant (2654435761 = 2**32 / phi,
# rounded to an odd integer): a fixed, platform-independent mix of the
# session id so the head sample is deterministic and spread across
# arrival order rather than striping it.
_HASH_MULTIPLIER = 2654435761
_HASH_MASK = 0xFFFFFFFF


def head_keep(session_id: int, rate: int) -> bool:
    """Deterministic 1-in-``rate`` head-sample membership test."""
    rate = int(rate)
    if rate < 1:
        raise ValueError(f"head-sample rate must be >= 1, got {rate}")
    if rate == 1:
        return True
    return ((int(session_id) * _HASH_MULTIPLIER) & _HASH_MASK) % rate == 0


class SpaceSavingTopK:
    """Heavy-hitter counts for string keys under a fixed slot budget.

    ``add(key, weight)`` either bumps a tracked key, fills a free slot,
    or evicts the minimum-count key (ties broken lexically, so eviction
    is deterministic) and inherits its count as the new key's floor —
    the classic space-saving guarantee: reported ``count`` overestimates
    the true count by at most the recorded ``error``.
    """

    __slots__ = ("capacity", "_items", "_evictions")

    def __init__(self, capacity: int):
        capacity = int(capacity)
        if capacity < 1:
            raise ValueError(f"top-k capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._items: Dict[str, List[int]] = {}  # key -> [count, error]
        self._evictions = 0

    def add(self, key: str, weight: int = 1) -> None:
        weight = int(weight)
        if weight < 1:
            raise ValueError(f"weight must be a positive int, got {weight}")
        slot = self._items.get(key)
        if slot is not None:
            slot[0] += weight
            return
        if len(self._items) < self.capacity:
            self._items[key] = [weight, 0]
            return
        victim = None
        for name, (count, _err) in self._items.items():
            if victim is None or (count, name) < victim[:2]:
                victim = (count, name)
        floor_count, victim_key = victim
        del self._items[victim_key]
        self._items[key] = [floor_count + weight, floor_count]
        self._evictions += 1

    @property
    def evictions(self) -> int:
        return self._evictions

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: str) -> bool:
        return key in self._items

    def count(self, key: str) -> int:
        slot = self._items.get(key)
        return slot[0] if slot is not None else 0

    def top(self, k: Optional[int] = None) -> List[Dict[str, Any]]:
        """Tracked keys, heaviest first (count desc, then key asc)."""
        ranked = sorted(
            self._items.items(), key=lambda kv: (-kv[1][0], kv[0])
        )
        if k is not None:
            ranked = ranked[: max(0, int(k))]
        return [
            {"key": key, "count": count, "error": error}
            for key, (count, error) in ranked
        ]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "space_saving",
            "capacity": self.capacity,
            "evictions": self._evictions,
            "items": self.top(),
        }


class WindowedSketch:
    """Per-window quantile sketches under a fixed window budget.

    Values land in the window containing their timestamp.  When the
    covered index span would exceed ``max_windows``, the window width
    doubles and adjacent windows merge pairwise — a lossless
    compaction (sketch merge is exact), so totals and quantiles over
    any surviving window remain true for its (wider) interval.
    """

    __slots__ = ("window_s", "max_windows", "alpha", "_windows", "_compactions")

    def __init__(
        self, window_s: float, max_windows: int = 64, alpha: float = 0.01
    ):
        window_s = float(window_s)
        if not window_s > 0.0 or not math.isfinite(window_s):
            raise ValueError(f"window_s must be finite and > 0, got {window_s}")
        max_windows = int(max_windows)
        if max_windows < 2:
            raise ValueError(f"max_windows must be >= 2, got {max_windows}")
        self.window_s = window_s
        self.max_windows = max_windows
        self.alpha = float(alpha)
        self._windows: Dict[int, QuantileSketch] = {}
        self._compactions = 0

    def add(self, t: float, value: float) -> None:
        t = float(t)
        if not math.isfinite(t):
            raise ValueError(f"window timestamp must be finite, got {t!r}")
        if t < 0.0:
            raise ValueError(f"window timestamp must be >= 0, got {t}")
        idx = int(math.floor(t / self.window_s))
        sketch = self._windows.get(idx)
        if sketch is None:
            sketch = self._windows[idx] = QuantileSketch(alpha=self.alpha)
        sketch.add(value)
        self._compact()

    def _span(self) -> int:
        if not self._windows:
            return 0
        return max(self._windows) - min(self._windows) + 1

    def _compact(self) -> None:
        while self._span() > self.max_windows:
            self.window_s *= 2.0
            merged: Dict[int, QuantileSketch] = {}
            # For t >= 0, floor(t / 2w) == floor(floor(t / w) / 2), so
            # halving indices re-bins every value exactly as if it had
            # been added at the doubled width from the start.
            for idx in sorted(self._windows):
                half = idx // 2
                sketch = merged.get(half)
                if sketch is None:
                    merged[half] = self._windows[idx]
                else:
                    sketch.merge(self._windows[idx])
            self._windows = merged
            self._compactions += 1

    @property
    def compactions(self) -> int:
        return self._compactions

    def __len__(self) -> int:
        return len(self._windows)

    def windows(self) -> List[Tuple[float, QuantileSketch]]:
        """``(window start time, sketch)`` pairs, ascending."""
        return [
            (idx * self.window_s, self._windows[idx])
            for idx in sorted(self._windows)
        ]

    def total_count(self) -> int:
        return sum(sketch.count for sketch in self._windows.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "windowed_sketch",
            "window_s": self.window_s,
            "max_windows": self.max_windows,
            "alpha": self.alpha,
            "compactions": self._compactions,
            "windows": {
                str(idx): self._windows[idx].to_dict()
                for idx in sorted(self._windows)
            },
        }


def _canonical_size(record: Any) -> int:
    return len(
        json.dumps(record, sort_keys=True, separators=(",", ":")).encode(
            "utf-8"
        )
    )


class ByteBudgetRing:
    """FIFO ring of JSON-able records under a fixed byte budget.

    Each record is costed at its canonical JSON size plus one separator
    byte; appends evict the oldest records until the new one fits.  A
    record larger than the whole budget is counted dropped and never
    stored, so ``total_bytes <= byte_budget`` is an invariant.
    """

    __slots__ = ("byte_budget", "_records", "_costs", "_total", "_evicted", "_dropped")

    def __init__(self, byte_budget: int):
        byte_budget = int(byte_budget)
        if byte_budget < 1:
            raise ValueError(f"byte budget must be >= 1, got {byte_budget}")
        self.byte_budget = byte_budget
        self._records: List[Any] = []
        self._costs: List[int] = []
        self._total = 0
        self._evicted = 0
        self._dropped = 0

    def append(self, record: Any) -> bool:
        """Store ``record``; ``False`` if it alone exceeds the budget."""
        cost = _canonical_size(record) + 1
        if cost > self.byte_budget:
            self._dropped += 1
            return False
        while self._total + cost > self.byte_budget:
            self._total -= self._costs.pop(0)
            self._records.pop(0)
            self._evicted += 1
        self._records.append(record)
        self._costs.append(cost)
        self._total += cost
        return True

    @property
    def total_bytes(self) -> int:
        return self._total

    @property
    def evicted(self) -> int:
        return self._evicted

    @property
    def dropped(self) -> int:
        return self._dropped

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> List[Any]:
        return list(self._records)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "byte_ring",
            "byte_budget": self.byte_budget,
            "total_bytes": self._total,
            "evicted": self._evicted,
            "dropped": self._dropped,
            "records": list(self._records),
        }


@dataclass(frozen=True)
class TailSamplingPolicy:
    """Knobs for :class:`TailSampler` retention.

    ``head_rate`` — keep a deterministic 1-in-``head_rate`` baseline
    sample regardless of interestingness (1 keeps everything);
    ``ttft_slo_s`` — sessions whose TTFT misses this (or who never got
    a first token) are retained as SLO violators when set;
    ``outlier_threshold`` — MAD modified-z cut for latency outliers;
    ``alpha`` — relative-error bound of the fold-in sketches;
    ``exemplar_bytes`` — byte budget for dropped-session exemplar stubs.
    """

    head_rate: int = 64
    ttft_slo_s: Optional[float] = None
    outlier_threshold: float = 3.5
    alpha: float = 0.01
    exemplar_bytes: int = 4096

    def __post_init__(self):
        if int(self.head_rate) < 1:
            raise ValueError(f"head_rate must be >= 1, got {self.head_rate}")
        if self.ttft_slo_s is not None and not self.ttft_slo_s > 0.0:
            raise ValueError(
                f"ttft_slo_s must be > 0 when set, got {self.ttft_slo_s}"
            )
        if not self.outlier_threshold > 0.0:
            raise ValueError(
                f"outlier_threshold must be > 0, got {self.outlier_threshold}"
            )
        if not 0.0 < self.alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {self.alpha}")
        if int(self.exemplar_bytes) < 1:
            raise ValueError(
                f"exemplar_bytes must be >= 1, got {self.exemplar_bytes}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "head_rate": self.head_rate,
            "ttft_slo_s": self.ttft_slo_s,
            "outlier_threshold": self.outlier_threshold,
            "alpha": self.alpha,
            "exemplar_bytes": self.exemplar_bytes,
        }


class TailSampler:
    """Tail-based retention of session span timelines.

    :meth:`sample` visits every *terminal* session not yet decided,
    folds its E2E / TTFT / per-phase durations into population sketches
    (kept or not — the sketches always describe the **whole**
    population, which is what the scale gate's quantile-error check
    compares against exact nearest-rank values), then drops the span
    timelines of uninteresting sessions from the tracer.  Retention
    reasons, most specific first:

    * ``fault`` — preempted, recovered, stalled, or terminally failed;
    * ``slo`` — TTFT missed ``policy.ttft_slo_s`` (or never produced a
      first token) when the policy sets an SLO;
    * ``outlier`` — MAD modified-z latency outlier among this call's
      completed batch;
    * ``head`` — deterministic 1-in-N baseline sample.

    Faulted and SLO-violating sessions are therefore *always* kept at
    full fidelity — the gate's 100%-retention condition by construction.
    """

    __slots__ = (
        "policy",
        "kept",
        "reasons",
        "reason_counts",
        "sketches",
        "exemplars",
        "folded",
        "dropped",
        "dropped_spans",
        "dropped_instants",
        "_decided",
    )

    def __init__(self, policy: Optional[TailSamplingPolicy] = None):
        self.policy = policy if policy is not None else TailSamplingPolicy()
        self.kept: set = set()
        self.reasons: Dict[int, str] = {}
        self.reason_counts: Dict[str, int] = {
            "fault": 0,
            "slo": 0,
            "outlier": 0,
            "head": 0,
        }
        self.sketches: Dict[str, QuantileSketch] = {}
        self.exemplars = ByteBudgetRing(self.policy.exemplar_bytes)
        self.folded = 0
        self.dropped = 0
        self.dropped_spans = 0
        self.dropped_instants = 0
        self._decided: set = set()

    def _sketch(self, name: str) -> QuantileSketch:
        sketch = self.sketches.get(name)
        if sketch is None:
            sketch = self.sketches[name] = QuantileSketch(
                alpha=self.policy.alpha
            )
        return sketch

    def _is_terminal(self, session) -> bool:
        if session.finish_time is not None:
            return True
        # Imported here (not at module top) to keep this observability
        # module loadable before the request layer during package init.
        from ..request import RequestStatus

        return session.status in (
            RequestStatus.FAILED,
            RequestStatus.REJECTED,
            RequestStatus.EVICTED,
        )

    def _has_fault(self, tracer, session, track: str) -> bool:
        if session.preemptions > 0 or getattr(session, "recoveries", 0) > 0:
            return True
        from ..request import RequestStatus

        if session.status == RequestStatus.FAILED:
            return True
        for record in tracer.span_records(track, session.session_id):
            if record[2] == "stall":
                return True
        return False

    def _violates_slo(self, session) -> bool:
        slo_s = self.policy.ttft_slo_s
        if slo_s is None:
            return False
        ft = session.first_token_time
        if ft is None:
            return True
        ttft = float(ft) - float(session.arrival_time)
        return ttft > slo_s

    def _fold(self, tracer, session, track: str) -> None:
        arr = float(session.arrival_time)
        fin = session.finish_time
        if fin is not None:
            self._sketch("e2e").add(float(fin) - arr)
        ft = session.first_token_time
        if ft is not None:
            self._sketch("ttft").add(float(ft) - arr)
        for record in tracer.span_records(track, session.session_id):
            self._sketch(f"phase/{record[2]}").add(record[4] - record[3])
        self.folded += 1

    def sample(self, tracer, sessions, track: str = "session") -> Dict[str, int]:
        """Decide retention for newly terminal sessions; drop the rest.

        Safe to call repeatedly (periodic compaction): each session is
        folded and decided exactly once.  Returns the counts of newly
        kept and newly dropped sessions.
        """
        fresh = [
            s
            for s in sorted(sessions, key=lambda s: s.session_id)
            if s.session_id not in self._decided and self._is_terminal(s)
        ]
        if not fresh:
            return {"kept": 0, "dropped": 0}

        completed = [s for s in fresh if s.finish_time is not None]
        outlier_ids = set()
        if completed:
            tags = mad_outliers(
                [
                    float(s.finish_time) - float(s.arrival_time)
                    for s in completed
                ],
                threshold=self.policy.outlier_threshold,
            )
            outlier_ids = {
                s.session_id for s, tag in zip(completed, tags) if tag
            }

        drop_ids = set()
        new_kept = 0
        for session in fresh:
            sid = session.session_id
            self._decided.add(sid)
            self._fold(tracer, session, track)
            if self._has_fault(tracer, session, track):
                reason = "fault"
            elif self._violates_slo(session):
                reason = "slo"
            elif sid in outlier_ids:
                reason = "outlier"
            elif head_keep(sid, self.policy.head_rate):
                reason = "head"
            else:
                fin = session.finish_time
                ft = session.first_token_time
                arr = float(session.arrival_time)
                self.exemplars.append(
                    {
                        "session_id": sid,
                        "model": session.model,
                        "priority": int(session.priority),
                        "e2e_s": (float(fin) - arr) if fin is not None else None,
                        "ttft_s": (float(ft) - arr) if ft is not None else None,
                        "status": session.status,
                    }
                )
                drop_ids.add(sid)
                continue
            self.kept.add(sid)
            self.reasons[sid] = reason
            self.reason_counts[reason] += 1
            new_kept += 1

        if drop_ids:
            spans_dropped, instants_dropped = tracer.drop_track_ids(
                track, drop_ids
            )
            self.dropped_spans += spans_dropped
            self.dropped_instants += instants_dropped
            self.dropped += len(drop_ids)
        return {"kept": new_kept, "dropped": len(drop_ids)}

    def byte_size(self) -> int:
        """Canonical serialized size of all retained sketch state."""
        return sum(
            sketch.byte_size() for sketch in self.sketches.values()
        )

    def summary(self) -> Dict[str, Any]:
        return {
            "policy": self.policy.to_dict(),
            "decided": len(self._decided),
            "kept": len(self.kept),
            "dropped": self.dropped,
            "folded": self.folded,
            "dropped_spans": self.dropped_spans,
            "dropped_instants": self.dropped_instants,
            "reason_counts": dict(sorted(self.reason_counts.items())),
            "kept_ids": sorted(self.kept),
            "sketches": {
                name: self.sketches[name].to_dict()
                for name in sorted(self.sketches)
            },
            "sketch_bytes": self.byte_size(),
            "exemplars": {
                "count": len(self.exemplars),
                "total_bytes": self.exemplars.total_bytes,
                "evicted": self.exemplars.evicted,
                "dropped": self.exemplars.dropped,
            },
        }

    def to_json(self) -> str:
        """Canonical dump: seeded replays serialize byte-identically."""
        return json.dumps(
            self.summary(), sort_keys=True, separators=(",", ":")
        )
