"""Unified observability plane for the serving stack.

Four cooperating pieces, all on the simulated clock:

* :mod:`~repro.serve.observability.trace` — a span-based
  :class:`Tracer`: event-sourced per-session/request timelines
  (enqueue → queue-wait → admit → prefill/decode/stall → retire) plus
  pool dispatch/reprogram/crash spans, autoscaler decision instants and
  fleet-health transitions, queryable in memory and exportable as
  Chrome trace-event JSON (Perfetto-loadable);
* :mod:`~repro.serve.observability.metrics` — a typed
  :class:`MetricsRegistry` (counters/gauges/histograms with label sets)
  that :class:`~repro.serve.telemetry.Telemetry` and
  :class:`~repro.serve.telemetry.EngineTelemetry` record through, with
  a lossless Prometheus text exporter and streaming ``(t, value)``
  gauge series;
* :mod:`~repro.serve.observability.profiler` — the
  :class:`HardwareAttributionProfiler`, which splits every recorded
  busy interval into the analytic model's reprogram/stream/attention
  components and asserts the reconstruction is bit-exact (the serving
  cross-checks, absorbed as profiler assertions);
* :mod:`~repro.serve.observability.slo` — multi-window
  :class:`BurnRateMonitor` error-budget tracking per class/tenant,
  surfaced to (not yet acted on by) the autoscaler.

On top of the collection layer sits the **analysis layer**:

* :mod:`~repro.serve.observability.critical_path` — per-session latency
  breakdowns that sum *bit-exactly* to the enqueue→retire interval
  (Fraction telescoping over the gap-free span tiling), fleet rollups
  attributing TTFT/E2E p50/p99 to phases, and MAD-tagged worst-session
  blocking analysis per class;
* :mod:`~repro.serve.observability.diff` — run exports
  (:func:`export_run`) and a regression diff engine
  (:func:`diff_runs`) with a ``python -m
  repro.serve.observability.diff`` CLI whose exit code gates CI: two
  seeded replays diff to zero deltas byte-identically;
* :mod:`~repro.serve.observability.report` — deterministic "flight
  report" JSON/markdown artifacts bundling config, critical path,
  attribution, SLO attainment and outlier exemplars.

And a **bounded-memory streaming layer**, so observability cost stays
fixed while traffic scales toward the million-session benches:

* :mod:`~repro.serve.observability.quantiles` — the one shared home of
  the repo's two percentile conventions (nearest-rank for exemplars and
  gate cross-checks, numpy linear interpolation for telemetry
  summaries), both rejecting NaN explicitly;
* :mod:`~repro.serve.observability.sketch` — :class:`QuantileSketch`, a
  deterministic DDSketch-style log-bucketed summary with a provable
  relative-error bound ``alpha``, exact count/sum/min/max, lossless
  associative merge, and canonical serialization;
* :mod:`~repro.serve.observability.streaming` — fixed-budget streaming
  aggregators (:class:`SpaceSavingTopK` heavy hitters,
  :class:`WindowedSketch` zoomable time windows, :class:`ByteBudgetRing`
  exemplar rings) and the :class:`TailSampler`: Dapper-style tail-based
  trace retention that keeps *complete* span timelines for
  faulted/stalled, SLO-violating and MAD-outlier sessions plus a
  deterministic 1-in-N head sample, folding everything else into
  sketches and dropping its spans.  Histograms gain an optional sketch
  backend (``sketch_alpha=...``) that still renders valid Prometheus
  text, and :class:`~repro.serve.telemetry.EngineTelemetry` gains a
  ``streaming=True`` mode with O(1)-per-event memory — gated end to end
  by ``benchmarks/bench_obs_scale.py``.

:class:`Observability` bundles them: pass one instance to
:class:`~repro.serve.engine.TokenServingEngine` or
:class:`~repro.serve.runtime.ServingRuntime` and the whole plane wires
itself through the pool, batcher, monitor and telemetry.  Construction
is cheap and recording is tuple appends + counter bumps, bounded by the
``bench_observability`` overhead gate; analysis runs strictly
after-the-fact over the recorded state.
"""

from __future__ import annotations

from typing import Optional

from .critical_path import (
    PHASE_NAMES,
    fleet_rollup,
    mad_outliers,
    session_breakdown,
)
from .diff import diff_runs, export_run, render_diff, run_to_json
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus_text,
)
from .profiler import HardwareAttributionProfiler
from .quantiles import nearest_rank, nearest_rank_value, percentile
from .report import build_flight_report, report_to_json, report_to_markdown
from .sketch import MIN_INDEXABLE, QuantileSketch
from .slo import (
    BurnRateMonitor,
    BurnWindow,
    SLOSpec,
    SLOTracker,
    default_windows,
)
from .streaming import (
    ByteBudgetRing,
    SpaceSavingTopK,
    TailSampler,
    TailSamplingPolicy,
    WindowedSketch,
    head_keep,
)
from .trace import Instant, Span, Tracer

__all__ = [
    "Observability",
    "Tracer",
    "Span",
    "Instant",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "parse_prometheus_text",
    "HardwareAttributionProfiler",
    "SLOSpec",
    "SLOTracker",
    "BurnRateMonitor",
    "BurnWindow",
    "default_windows",
    "PHASE_NAMES",
    "session_breakdown",
    "fleet_rollup",
    "mad_outliers",
    "export_run",
    "run_to_json",
    "diff_runs",
    "render_diff",
    "build_flight_report",
    "report_to_json",
    "report_to_markdown",
    "nearest_rank",
    "nearest_rank_value",
    "percentile",
    "MIN_INDEXABLE",
    "QuantileSketch",
    "SpaceSavingTopK",
    "WindowedSketch",
    "ByteBudgetRing",
    "TailSamplingPolicy",
    "TailSampler",
    "head_keep",
]


class Observability:
    """One deployment's observability plane: tracer + registry + SLOs.

    ``tracing=False`` keeps the registry (metrics are always on — they
    are how telemetry records) but skips span emission entirely, the
    baseline configuration the overhead gate compares against.
    ``streaming=True`` asks attached consumers (the engine's
    :class:`~repro.serve.telemetry.EngineTelemetry`) to run in
    bounded-memory streaming mode: sketch-backed latency aggregation
    instead of per-event record lists.
    """

    def __init__(
        self,
        tracing: bool = True,
        registry: Optional[MetricsRegistry] = None,
        slo: Optional[SLOTracker] = None,
        streaming: bool = False,
    ):
        self.tracer: Optional[Tracer] = Tracer() if tracing else None
        self.registry = registry if registry is not None else MetricsRegistry()
        self.slo = slo
        self.streaming = bool(streaming)

    def profiler(
        self, accelerator=None, strict: bool = True
    ) -> HardwareAttributionProfiler:
        return HardwareAttributionProfiler(accelerator, strict=strict)

    def export(self, config=None, sessions=None) -> dict:
        """Snapshot this run as a diffable document (:func:`export_run`)."""
        return export_run(self, config=config, sessions=sessions)

    def flight_report(self, **kwargs) -> dict:
        """Build this run's flight report (:func:`build_flight_report`)."""
        return build_flight_report(self, **kwargs)

    def summary(self, now: Optional[float] = None) -> dict:
        out = {
            "metrics": len(self.registry.metrics()),
            "samples": len(self.registry.samples()),
        }
        if self.tracer is not None:
            out["trace"] = self.tracer.summary()
        if self.slo is not None:
            out["slo"] = self.slo.summary(now)
        return out
