"""Run-comparison engine over exported observability runs.

:func:`export_run` snapshots one traced run into a plain-JSON document:
per-phase duration distributions (count / total / mean / p50 / p99 /
max over the session track), span and instant counts per
``track/name``, the full metrics sample dict, the SLO summary, the
session-latency percentiles, and the free-form run config.  The export
is a pure function of the recorded state, dumped with sorted keys —
two seeded replays of the same run export **byte-identical** documents.

:func:`diff_runs` compares two exports leaf by leaf: numeric leaves get
``(a, b, delta, rel)`` records, non-numeric leaves equality checks, and
span/phase/metric names present on only one side are reported as
added/removed.  A change becomes a **regression** when it exceeds both
configurable thresholds (``abs_s`` and ``rel`` — the defaults of zero
flag *any* delta, which is exactly what the replay-determinism gate
wants); structural changes (new/removed names, config drift) always
flag.  Therefore: identical runs → zero changes → exit 0; a perturbed
config or perturbed behaviour → non-zero exit.

CLI::

    python -m repro.serve.observability.diff a.json b.json \
        [--rel 0.05] [--abs-s 1e-9] [--ignore-config] [--json]

exit 0 = no regression, 1 = regression(s), 2 = bad invocation.
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Dict, List, Optional, Sequence

from .critical_path import nearest_rank

__all__ = [
    "SCHEMA_VERSION",
    "export_run",
    "run_to_json",
    "diff_runs",
    "render_diff",
    "main",
]

SCHEMA_VERSION = 1

# Sections of an export whose leaves are diffed pairwise.
_DIFF_SECTIONS = ("phases", "spans", "instants", "metrics", "sessions", "slo")


def _distribution(durations: List[float]) -> Dict[str, Any]:
    """Deterministic summary of one span-name's duration population."""
    ordered = sorted(durations)
    return {
        "count": len(ordered),
        "total_s": sum(ordered),
        "mean_s": sum(ordered) / len(ordered),
        "p50_s": ordered[nearest_rank(ordered, 50.0)],
        "p99_s": ordered[nearest_rank(ordered, 99.0)],
        "max_s": ordered[-1],
    }


def export_run(
    observability,
    config: Optional[Dict[str, Any]] = None,
    sessions: Optional[Sequence] = None,
) -> Dict[str, Any]:
    """Snapshot a traced run as a diffable plain-JSON document."""
    out: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "config": dict(config) if config else {},
    }

    phases: Dict[str, List[float]] = {}
    spans: Dict[str, Dict[str, Any]] = {}
    instants: Dict[str, int] = {}
    tracer = observability.tracer
    if tracer is not None:
        # Raw tuples, not Span/Instant objects: the export walks every
        # record once and per-record wrapping would dominate its cost.
        for track, _tid, name, t0, t1, _cat, _args in tracer.span_records():
            key = f"{track}/{name}"
            agg = spans.get(key)
            if agg is None:
                agg = spans[key] = {"count": 0, "total_s": 0.0}
            agg["count"] += 1
            duration = t1 - t0
            agg["total_s"] += duration
            if track == "session":
                phases.setdefault(name, []).append(duration)
        for track, _tid, name, _t, _args in tracer.instant_records():
            key = f"{track}/{name}"
            instants[key] = instants.get(key, 0) + 1
    out["phases"] = {
        name: _distribution(durations) for name, durations in phases.items()
    }
    out["spans"] = spans
    out["instants"] = instants
    out["metrics"] = dict(observability.registry.samples())
    out["slo"] = (
        observability.slo.summary() if observability.slo is not None else None
    )

    if sessions is not None:
        e2e = sorted(
            float(s.finish_time) - float(s.arrival_time)
            for s in sessions
            if s.finish_time is not None
        )
        ttft = sorted(
            float(s.first_token_time) - float(s.arrival_time)
            for s in sessions
            if s.first_token_time is not None
        )
        out["sessions"] = {
            "completed": len(e2e),
            "e2e_p50_s": e2e[nearest_rank(e2e, 50.0)] if e2e else None,
            "e2e_p99_s": e2e[nearest_rank(e2e, 99.0)] if e2e else None,
            "ttft_p50_s": ttft[nearest_rank(ttft, 50.0)] if ttft else None,
            "ttft_p99_s": ttft[nearest_rank(ttft, 99.0)] if ttft else None,
        }
    else:
        out["sessions"] = None
    return out


def run_to_json(run: Dict[str, Any]) -> str:
    """Deterministic export serialization: sorted keys, stable floats."""
    return json.dumps(run, sort_keys=True, indent=2) + "\n"


def _flatten(node: Any, prefix: str, out: Dict[str, Any]) -> None:
    if isinstance(node, dict):
        for key in node:
            _flatten(node[key], f"{prefix}/{key}" if prefix else str(key), out)
    elif isinstance(node, list):
        for i, item in enumerate(node):
            _flatten(item, f"{prefix}[{i}]", out)
    else:
        out[prefix] = node


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def diff_runs(
    a: Dict[str, Any],
    b: Dict[str, Any],
    rel: float = 0.0,
    abs_s: float = 0.0,
    ignore_config: bool = False,
) -> Dict[str, Any]:
    """Compare two exported runs; see the module docstring for semantics."""
    if rel < 0.0 or abs_s < 0.0:
        raise ValueError("diff thresholds must be >= 0")
    changes: List[Dict[str, Any]] = []
    regressions: List[Dict[str, Any]] = []
    added: List[str] = []
    removed: List[str] = []
    config_changes: List[Dict[str, Any]] = []
    compared = 0

    for section in _DIFF_SECTIONS:
        flat_a: Dict[str, Any] = {}
        flat_b: Dict[str, Any] = {}
        _flatten(a.get(section), section, flat_a)
        _flatten(b.get(section), section, flat_b)
        added.extend(sorted(set(flat_b) - set(flat_a)))
        removed.extend(sorted(set(flat_a) - set(flat_b)))
        for path in sorted(set(flat_a) & set(flat_b)):
            va, vb = flat_a[path], flat_b[path]
            compared += 1
            if _is_number(va) and _is_number(vb):
                delta = vb - va
                if delta == 0:
                    continue
                scale = max(abs(va), abs(vb))
                rel_delta = abs(delta) / scale if scale else float("inf")
                record = {
                    "path": path,
                    "a": va,
                    "b": vb,
                    "delta": delta,
                    "rel": rel_delta,
                }
                changes.append(record)
                if abs(delta) > abs_s and rel_delta > rel:
                    regressions.append(record)
            elif va != vb:
                record = {"path": path, "a": va, "b": vb}
                changes.append(record)
                regressions.append(record)

    flat_ca: Dict[str, Any] = {}
    flat_cb: Dict[str, Any] = {}
    _flatten(a.get("config"), "config", flat_ca)
    _flatten(b.get("config"), "config", flat_cb)
    for path in sorted(set(flat_ca) | set(flat_cb)):
        va = flat_ca.get(path)
        vb = flat_cb.get(path)
        if va != vb:
            config_changes.append({"path": path, "a": va, "b": vb})

    structural = bool(added or removed)
    config_flagged = bool(config_changes) and not ignore_config
    return {
        "thresholds": {"rel": rel, "abs_s": abs_s},
        "compared": compared,
        "changes": changes,
        "regressions": regressions,
        "added": added,
        "removed": removed,
        "config_changes": config_changes,
        "regression": bool(regressions) or structural or config_flagged,
    }


def _fmt_value(value: Any) -> str:
    return repr(value)


def render_diff(result: Dict[str, Any]) -> str:
    """Deterministic human-readable rendering of a diff result."""
    lines = [
        f"run diff: {len(result['changes'])} change(s), "
        f"{len(result['regressions'])} regression(s) over "
        f"{result['compared']} compared leaves"
    ]
    for path in result["added"]:
        lines.append(f"  added:   {path}")
    for path in result["removed"]:
        lines.append(f"  removed: {path}")
    for record in result["config_changes"]:
        lines.append(
            f"  config:  {record['path']}: "
            f"{_fmt_value(record['a'])} -> {_fmt_value(record['b'])}"
        )
    for record in result["changes"]:
        if "delta" in record:
            lines.append(
                f"  {record['path']}: {_fmt_value(record['a'])} -> "
                f"{_fmt_value(record['b'])} "
                f"(delta {record['delta']:+.6e}, {record['rel']:+.3%})"
            )
        else:
            lines.append(
                f"  {record['path']}: {_fmt_value(record['a'])} -> "
                f"{_fmt_value(record['b'])}"
            )
    if not result["regression"]:
        lines.append("ok: zero deltas beyond thresholds")
    return "\n".join(lines) + "\n"


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.observability.diff",
        description="Diff two exported observability runs.",
    )
    parser.add_argument("run_a", help="baseline export_run() JSON file")
    parser.add_argument("run_b", help="candidate export_run() JSON file")
    parser.add_argument(
        "--rel",
        type=float,
        default=0.0,
        help="relative regression threshold (default 0: flag any delta)",
    )
    parser.add_argument(
        "--abs-s",
        type=float,
        default=0.0,
        help="absolute regression threshold in seconds (default 0)",
    )
    parser.add_argument(
        "--ignore-config",
        action="store_true",
        help="config drift alone does not fail the diff",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the raw diff result as JSON"
    )
    args = parser.parse_args(argv)

    runs = []
    for path in (args.run_a, args.run_b):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                runs.append(json.load(handle))
        except (OSError, ValueError) as exc:
            parser.error(f"cannot read run export {path!r}: {exc}")
    result = diff_runs(
        runs[0],
        runs[1],
        rel=args.rel,
        abs_s=args.abs_s,
        ignore_config=args.ignore_config,
    )
    if args.json:
        print(json.dumps(result, sort_keys=True, indent=2))
    else:
        print(render_diff(result), end="")
    return 1 if result["regression"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
