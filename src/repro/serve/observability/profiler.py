"""Hardware-attributed latency profiling.

Every simulated busy interval in the serving stack is priced by the
paper's analytic accelerator model, which makes it **exactly
decomposable**: a decode step is token-parallel GEMMs plus per-session
attention reads, a prefill chunk is its token GEMMs plus causal
attention over the resident context, and each GEMM in turn splits into
phase-shifter **reprogram** settles and modular-MVM **stream** cycles
(:func:`repro.arch.latency.mirage_gemm_components`).

:class:`HardwareAttributionProfiler` replays a run's telemetry through
``arch.inference`` component pricing and rolls the result up into a
flame-graph-style table (``decode/token_gemm/stream``, ``prefill/
attention/reprogram``, ...).  The existing exact cross-checks live
*inside* the profiler as assertions: each span's reconstruction — built
in the engine's own accumulation order — must equal the recorded
duration **bit-for-bit**, so the tracing layer is self-verifying.  The
reprogram/stream sub-split is a reporting view (streams are residuals,
``total - reprogram``); exactness is always stated on the totals, which
is the only identity floating-point addition guarantees.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ...arch.accelerator import MirageAccelerator
from ...arch.inference import (
    attention_token_components,
    chunked_prefill_components,
    inference_latency_components,
)

__all__ = ["HardwareAttributionProfiler"]


class _Rollup:
    """Seconds per ``phase/component/part`` path, plus span counts."""

    def __init__(self):
        self.seconds: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}

    def add(self, path: str, seconds: float, count: int = 1) -> None:
        self.seconds[path] = self.seconds.get(path, 0.0) + seconds
        self.counts[path] = self.counts.get(path, 0) + count

    def table(self) -> List[Dict[str, Any]]:
        total = sum(self.seconds.values())
        rows = [
            {
                "path": path,
                "seconds": seconds,
                "share": (seconds / total) if total > 0.0 else 0.0,
                "spans": self.counts[path],
            }
            for path, seconds in self.seconds.items()
        ]
        rows.sort(key=lambda r: (-r["seconds"], r["path"]))
        return rows


class HardwareAttributionProfiler:
    """Split recorded busy time into analytic hardware components.

    ``strict=True`` (the default) raises ``AssertionError`` the moment a
    span's component reconstruction disagrees with the recorded duration
    by even one ulp — the engine's dispatch accounting and the hardware
    model must be the same arithmetic.
    """

    def __init__(
        self,
        accelerator: Optional[MirageAccelerator] = None,
        strict: bool = True,
    ):
        self.accelerator = accelerator or MirageAccelerator()
        self.strict = strict

    # ------------------------------------------------------------------
    # Token engine (EngineTelemetry step records)
    # ------------------------------------------------------------------
    def attribute_engine(self, profile, telemetry) -> Dict[str, Any]:
        """Attribute every step of a :class:`TokenServingEngine` run.

        ``profile`` is the engine's :class:`DecodeModelProfile`,
        ``telemetry`` its :class:`EngineTelemetry` after ``run()``.  The
        per-step reconstruction mirrors the engine's pricing order
        exactly: ``fl(token_gemms + attention)`` then ``+= chunk`` per
        prefill chunk — so ``attributed_s`` sums bit-identically to the
        recorded busy time and ``max_abs_error_s`` must be exactly zero.
        """
        from ..runtime import model_layer_shapes  # local: no import cycle

        accelerator = self.accelerator
        kv = profile.kv
        shape_memo: Dict[int, list] = {}
        token_memo: Dict[int, Dict[str, float]] = {}
        attn_memo: Dict[int, Dict[str, float]] = {}
        chunk_memo: Dict[tuple, Dict[str, float]] = {}

        def token_components(batch: int) -> Dict[str, float]:
            out = token_memo.get(batch)
            if out is None:
                shapes = shape_memo.get(batch)
                if shapes is None:
                    shapes = shape_memo[batch] = model_layer_shapes(
                        profile.name, profile.model, batch
                    )
                out = token_memo[batch] = inference_latency_components(
                    shapes, accelerator
                )
            return out

        def chunk_components(chunk: int, ctx: int) -> Dict[str, float]:
            key = (chunk, ctx)
            out = chunk_memo.get(key)
            if out is None:
                shapes = shape_memo.get(chunk)
                if shapes is None and chunk > 0:
                    shapes = shape_memo[chunk] = model_layer_shapes(
                        profile.name, profile.model, chunk
                    )
                out = chunk_memo[key] = chunked_prefill_components(
                    shapes or [], chunk, ctx, kv, accelerator
                )
            return out

        rollup = _Rollup()
        total_busy = 0.0
        attributed = 0.0
        stall_total = 0.0
        max_err = 0.0
        checked = 0
        for record in telemetry.steps:
            step_acc = 0.0
            if record.context_lens:
                token = token_components(len(record.context_lens))
                attn_total = 0.0
                attn_reprogram = 0.0
                for length in record.context_lens:
                    comp = attn_memo.get(length)
                    if comp is None:
                        comp = attn_memo[length] = attention_token_components(
                            kv, length, accelerator
                        )
                    attn_total += comp["total_s"]
                    attn_reprogram += comp["reprogram_s"]
                step_acc = token["total_s"] + attn_total
                rollup.add(
                    "decode/token_gemm/reprogram", token["reprogram_s"]
                )
                rollup.add("decode/token_gemm/stream", token["stream_s"])
                rollup.add("decode/attention/reprogram", attn_reprogram)
                rollup.add(
                    "decode/attention/stream", attn_total - attn_reprogram
                )
            for ctx, chunk in record.prefill_chunks:
                comp = chunk_components(chunk, ctx)
                step_acc += comp["total_s"]
                rollup.add("prefill/gemm/reprogram", comp["gemm_reprogram_s"])
                rollup.add(
                    "prefill/gemm/stream",
                    comp["gemm_s"] - comp["gemm_reprogram_s"],
                )
                rollup.add(
                    "prefill/attention/reprogram",
                    comp["attention_reprogram_s"],
                )
                rollup.add(
                    "prefill/attention/stream",
                    comp["attention_s"] - comp["attention_reprogram_s"],
                )
            err = abs(step_acc - record.step_s)
            if err > max_err:
                max_err = err
            if self.strict:
                assert err == 0.0, (
                    f"hardware attribution drifted from recorded step at "
                    f"t={record.t!r}: reconstructed {step_acc!r} vs recorded "
                    f"{record.step_s!r}"
                )
            checked += 1
            total_busy += record.step_s
            attributed += step_acc
            stall_total += record.stall_s
        if stall_total > 0.0:
            rollup.add(
                "stall/degraded_worker",
                stall_total,
                count=sum(1 for r in telemetry.steps if r.stall_s > 0.0),
            )
        return {
            "checked_spans": checked,
            "max_abs_error_s": max_err,
            "total_busy_s": total_busy,
            "attributed_s": attributed,
            "stall_s": stall_total,
            "components": rollup.table(),
        }

    # ------------------------------------------------------------------
    # Request-level runtime (Telemetry batch records)
    # ------------------------------------------------------------------
    def attribute_runtime(self, profiles, telemetry) -> Dict[str, Any]:
        """Attribute every dispatched batch of a :class:`ServingRuntime`.

        ``profiles`` maps model name -> :class:`ModelProfile` (the
        runtime's ``profiles()`` dict).  Each recorded batch's service
        time must equal the forward GEMM total at that batch size — the
        same identity the runtime report's cross-check asserts.
        """
        from ..runtime import model_layer_shapes  # local: no import cycle

        accelerator = self.accelerator
        memo: Dict[tuple, Dict[str, float]] = {}
        rollup = _Rollup()
        total_busy = 0.0
        attributed = 0.0
        max_err = 0.0
        checked = 0
        for record in telemetry.batches:
            key = (record.model, record.batch_size)
            comp = memo.get(key)
            if comp is None:
                prof = profiles[record.model]
                shapes = model_layer_shapes(
                    prof.name, prof.model, record.batch_size, prof.input_hw
                )
                comp = memo[key] = inference_latency_components(
                    shapes, accelerator
                )
            err = abs(comp["total_s"] - record.service_s)
            if err > max_err:
                max_err = err
            if self.strict:
                assert err == 0.0, (
                    f"batch service time drifted from the hardware model for "
                    f"{record.model} at batch {record.batch_size}: "
                    f"{comp['total_s']!r} vs {record.service_s!r}"
                )
            checked += 1
            total_busy += record.service_s
            attributed += comp["total_s"]
            rollup.add("request/gemm/reprogram", comp["reprogram_s"])
            rollup.add("request/gemm/stream", comp["stream_s"])
        return {
            "checked_spans": checked,
            "max_abs_error_s": max_err,
            "total_busy_s": total_busy,
            "attributed_s": attributed,
            "components": rollup.table(),
        }
