"""Span-based tracer on the simulated clock.

Every request/session in the serving stack gets an event-sourced
timeline: ``enqueue -> queue_wait -> admit -> prefill/decode steps ->
preempt/stall/recover -> retire``.  The pool emits dispatch and
weight-reprogram spans per worker, the autoscaler emits decision
instants with their windowed-p99 evidence, and the ``FleetMonitor``
emits health-transition instants.  Two consumers:

* a **queryable in-memory index** — :meth:`Tracer.spans` /
  :meth:`Tracer.instants` filter by track/id/name/category, and
  :meth:`Tracer.session_timeline` + :meth:`Tracer.gap_free` verify that
  a session's phase spans tile its lifetime with **exact float
  boundaries** (valid because every boundary is the same float the
  engine propagated — no arithmetic re-derivation happens here);
* a **Chrome trace-event JSON export** (:meth:`Tracer.chrome_trace`)
  loadable in Perfetto / ``chrome://tracing``: ``ph:"X"`` duration
  events with microsecond timestamps, one pid per track kind and one
  tid per session/worker, plus instant (``ph:"i"``) markers.

Recording is deliberately dumb — a tuple append per span — so tracing
stays inside the benchmark's wall-clock overhead budget; ``Span``
objects materialise only at query/export time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Span", "Instant", "Tracer", "TRACKS"]

# Track kind -> Chrome trace pid.  One "process" per subsystem keeps
# Perfetto's timeline grouped: sessions (token engine), requests
# (request-level runtime), workers (pool), control (autoscaler,
# monitor, batcher).
TRACKS = {"session": 1, "request": 2, "worker": 3, "control": 4}


@dataclass(frozen=True)
class Span:
    """A closed interval ``[t0, t1]`` on one track, in simulated seconds."""

    track: str
    track_id: int
    name: str
    t0: float
    t1: float
    category: str = ""
    args: Optional[Dict[str, Any]] = None

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass(frozen=True)
class Instant:
    """A zero-duration marker at ``t`` on one track."""

    track: str
    track_id: int
    name: str
    t: float
    args: Optional[Dict[str, Any]] = None


class Tracer:
    """Append-only span/instant store with query + Chrome export.

    Queries that pin ``(track, track_id)`` go through a **lazy
    incremental index**: record-time stays a bare tuple append (the
    overhead-gate hot path), and the first such query after new records
    indexes only the appended tail.  The store is append-only, so
    indexed positions never invalidate, and index-backed results are in
    recording order — identical to the linear scan they replace.
    """

    __slots__ = (
        "_spans",
        "_instants",
        "_span_index",
        "_span_indexed",
        "_instant_index",
        "_instant_indexed",
    )

    def __init__(self):
        # (track, track_id, name, t0, t1, category, args)
        self._spans: List[Tuple[str, int, str, float, float, str, Any]] = []
        # (track, track_id, name, t, args)
        self._instants: List[Tuple[str, int, str, float, Any]] = []
        # (track, track_id) -> positions, grown lazily at query time.
        self._span_index: Dict[Tuple[str, int], List[int]] = {}
        self._span_indexed = 0
        self._instant_index: Dict[Tuple[str, int], List[int]] = {}
        self._instant_indexed = 0

    # Recording (hot path) ----------------------------------------------
    def span(
        self,
        track: str,
        track_id: int,
        name: str,
        t0: float,
        t1: float,
        category: str = "",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._spans.append((track, track_id, name, t0, t1, category, args))

    def instant(
        self,
        track: str,
        track_id: int,
        name: str,
        t: float,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._instants.append((track, track_id, name, t, args))

    def __len__(self) -> int:
        return len(self._spans) + len(self._instants)

    # Query index -------------------------------------------------------
    def _ensure_index(self) -> None:
        """Index the tail appended since the last indexed query."""
        spans = self._spans
        if self._span_indexed < len(spans):
            index = self._span_index
            for pos in range(self._span_indexed, len(spans)):
                record = spans[pos]
                key = (record[0], record[1])
                bucket = index.get(key)
                if bucket is None:
                    bucket = index[key] = []
                bucket.append(pos)
            self._span_indexed = len(spans)
        instants = self._instants
        if self._instant_indexed < len(instants):
            index = self._instant_index
            for pos in range(self._instant_indexed, len(instants)):
                record = instants[pos]
                key = (record[0], record[1])
                bucket = index.get(key)
                if bucket is None:
                    bucket = index[key] = []
                bucket.append(pos)
            self._instant_indexed = len(instants)

    def spans(
        self,
        track: Optional[str] = None,
        track_id: Optional[int] = None,
        name: Optional[str] = None,
        category: Optional[str] = None,
    ) -> List[Span]:
        out = []
        if track is not None and track_id is not None:
            # O(matching): walk only this (track, track_id)'s positions.
            self._ensure_index()
            positions = self._span_index.get((track, track_id), ())
            for pos in positions:
                tr, tid, nm, t0, t1, cat, args = self._spans[pos]
                if name is not None and nm != name:
                    continue
                if category is not None and cat != category:
                    continue
                out.append(Span(tr, tid, nm, t0, t1, cat, args))
            return out
        for tr, tid, nm, t0, t1, cat, args in self._spans:
            if track is not None and tr != track:
                continue
            if track_id is not None and tid != track_id:
                continue
            if name is not None and nm != name:
                continue
            if category is not None and cat != category:
                continue
            out.append(Span(tr, tid, nm, t0, t1, cat, args))
        return out

    def instants(
        self,
        track: Optional[str] = None,
        track_id: Optional[int] = None,
        name: Optional[str] = None,
    ) -> List[Instant]:
        out = []
        if track is not None and track_id is not None:
            self._ensure_index()
            positions = self._instant_index.get((track, track_id), ())
            for pos in positions:
                tr, tid, nm, t, args = self._instants[pos]
                if name is not None and nm != name:
                    continue
                out.append(Instant(tr, tid, nm, t, args))
            return out
        for tr, tid, nm, t, args in self._instants:
            if track is not None and tr != track:
                continue
            if track_id is not None and tid != track_id:
                continue
            if name is not None and nm != name:
                continue
            out.append(Instant(tr, tid, nm, t, args))
        return out

    def span_records(
        self,
        track: Optional[str] = None,
        track_id: Optional[int] = None,
    ) -> List[Tuple[str, int, str, float, float, str, Any]]:
        """Raw span tuples ``(track, track_id, name, t0, t1, category,
        args)`` — the zero-wrapping sibling of :meth:`spans` for bulk
        consumers (export, rollups) where per-record :class:`Span`
        construction dominates.  Same ordering guarantees as
        :meth:`spans`; records are the stored tuples, not copies.
        """
        if track is None and track_id is None:
            return list(self._spans)
        if track is not None and track_id is not None:
            self._ensure_index()
            spans = self._spans
            positions = self._span_index.get((track, track_id), ())
            return [spans[pos] for pos in positions]
        return [
            record
            for record in self._spans
            if (track is None or record[0] == track)
            and (track_id is None or record[1] == track_id)
        ]

    def instant_records(
        self,
        track: Optional[str] = None,
        track_id: Optional[int] = None,
    ) -> List[Tuple[str, int, str, float, Any]]:
        """Raw instant tuples ``(track, track_id, name, t, args)``."""
        if track is None and track_id is None:
            return list(self._instants)
        if track is not None and track_id is not None:
            self._ensure_index()
            instants = self._instants
            positions = self._instant_index.get((track, track_id), ())
            return [instants[pos] for pos in positions]
        return [
            record
            for record in self._instants
            if (track is None or record[0] == track)
            and (track_id is None or record[1] == track_id)
        ]

    def drop_track_ids(self, track: str, track_ids) -> Tuple[int, int]:
        """Drop every span/instant of the given ids on one track.

        The tail-sampling compaction path: uninteresting sessions'
        timelines are removed wholesale after their durations have been
        folded into sketches.  Returns ``(spans_dropped,
        instants_dropped)``.  The lazy query index assumes the store is
        append-only, so a drop resets it; the next indexed query
        rebuilds from scratch.
        """
        doomed = set(track_ids)
        if not doomed:
            return (0, 0)
        kept_spans = [
            record
            for record in self._spans
            if record[0] != track or record[1] not in doomed
        ]
        kept_instants = [
            record
            for record in self._instants
            if record[0] != track or record[1] not in doomed
        ]
        spans_dropped = len(self._spans) - len(kept_spans)
        instants_dropped = len(self._instants) - len(kept_instants)
        self._spans = kept_spans
        self._instants = kept_instants
        self._span_index = {}
        self._span_indexed = 0
        self._instant_index = {}
        self._instant_indexed = 0
        return (spans_dropped, instants_dropped)

    def track_ids(self, track: str) -> List[int]:
        self._ensure_index()
        ids = {tid for tr, tid in self._span_index if tr == track}
        ids.update(tid for tr, tid in self._instant_index if tr == track)
        return sorted(ids)

    def session_timeline(self, session_id: int, track: str = "session") -> List[Span]:
        """All phase spans of one session, ordered by start time.

        Emission order is already time-ordered within a track id (the
        engine emits as the simulated clock advances); the sort is a
        stable belt-and-braces so the gap check never depends on it.
        """
        spans = self.spans(track=track, track_id=session_id)
        spans.sort(key=lambda s: (s.t0, s.t1))
        return spans

    def gaps(
        self,
        session_id: int,
        track: str = "session",
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> List[Tuple[float, float]]:
        """Uncovered intervals of ``[start, end]`` under exact equality.

        Adjacent spans must satisfy ``next.t0 == prev.t1`` *bitwise*:
        every boundary is a float the emitter forwarded unmodified, so
        tolerance would only hide real bookkeeping bugs.
        """
        timeline = self.session_timeline(session_id, track=track)
        if not timeline:
            if start is not None and end is not None and end > start:
                return [(start, end)]
            return []
        out: List[Tuple[float, float]] = []
        if start is not None and timeline[0].t0 != start:
            out.append((start, timeline[0].t0))
        cursor = timeline[0].t1
        for span in timeline[1:]:
            if span.t0 != cursor:
                out.append((cursor, span.t0))
            cursor = max(cursor, span.t1)
        if end is not None and cursor != end:
            out.append((cursor, end))
        return out

    def gap_free(
        self,
        session_id: int,
        start: Optional[float] = None,
        end: Optional[float] = None,
        track: str = "session",
    ) -> bool:
        return not self.gaps(session_id, track=track, start=start, end=end)

    # Chrome trace-event export ----------------------------------------
    def chrome_events(self) -> List[Dict[str, Any]]:
        """Trace-event dicts (Perfetto-loadable), timestamps in us."""
        events: List[Dict[str, Any]] = []
        for track, pid in sorted(TRACKS.items(), key=lambda kv: kv[1]):
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "name": "process_name",
                    "args": {"name": track},
                }
            )
        for tr, tid, nm, t0, t1, cat, args in self._spans:
            event = {
                "ph": "X",
                "pid": TRACKS.get(tr, 0),
                "tid": tid,
                "name": nm,
                "cat": cat or tr,
                "ts": t0 * 1e6,
                "dur": (t1 - t0) * 1e6,
            }
            if args:
                event["args"] = args
            events.append(event)
        for tr, tid, nm, t, args in self._instants:
            event = {
                "ph": "i",
                "pid": TRACKS.get(tr, 0),
                "tid": tid,
                "name": nm,
                "cat": tr,
                "ts": t * 1e6,
                "s": "t",
            }
            if args:
                event["args"] = args
            events.append(event)
        return events

    def chrome_trace(self) -> str:
        """Deterministic JSON dump: same run -> byte-identical text."""
        return json.dumps(
            {"traceEvents": self.chrome_events(), "displayTimeUnit": "ns"},
            sort_keys=True,
            separators=(",", ":"),
        )

    def summary(self) -> Dict[str, Any]:
        by_track: Dict[str, int] = {}
        for tr, *_ in self._spans:
            by_track[tr] = by_track.get(tr, 0) + 1
        return {
            "spans": len(self._spans),
            "instants": len(self._instants),
            "spans_by_track": dict(sorted(by_track.items())),
        }
