"""Critical-path analysis over recorded span timelines.

The tracer's gap-free-timeline invariant (``Tracer.gaps`` under exact
float equality) makes a session's life *exactly decomposable*: its
phase spans (``queue_wait`` / ``dispatch_wait`` / ``prefill`` /
``decode`` / ``stall``) tile ``[arrival, retire]`` with bitwise-shared
boundaries.  :func:`session_breakdown` turns that tiling into a
per-session latency breakdown whose components sum **bit-exactly** to
the measured enqueue→retire interval: every boundary float is lifted
into an exact dyadic rational — an integer mantissa at a shared
power-of-two scale, the same exact embedding
:class:`fractions.Fraction` would give without its per-op
normalization cost — so the per-phase sums telescope (shared interior
boundaries cancel) and the total equals ``finish - arrival`` in exact
integer arithmetic with no rounding anywhere.  Floats reappear only in
the reported numbers (one correctly-rounded division each).

:func:`fleet_rollup` aggregates breakdowns fleet-wide: phase totals and
shares, TTFT/E2E p50/p99 *exemplar* attribution (the nearest-rank
percentile session's own phase split — a real session, not an average
of incomparable ones), and a blocking-component analysis of the
worst-k sessions per priority class with deterministic MAD-based
outlier tagging (:func:`mad_outliers`, modified z-score on a one-sided
robust scale).

Everything here is a pure function of the recorded trace — no clock
access, no randomness — so two seeded replays of the same run produce
byte-identical rollups (the property ``diff.py`` builds on).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from .quantiles import nearest_rank

__all__ = [
    "PHASE_NAMES",
    "session_breakdown",
    "fleet_rollup",
    "mad_outliers",
    "nearest_rank",  # re-exported from .quantiles (shared implementation)
]

# Session-track phase span names, in canonical (and tie-break) order.
PHASE_NAMES = ("queue_wait", "dispatch_wait", "prefill", "decode", "stall")


def _scaled_ints(values: Sequence[float]) -> tuple:
    """Lift floats to exact integers at one shared power-of-two scale.

    Every finite binary float is ``n / 2**s`` with integer ``n``
    (``float.as_integer_ratio``); returning all mantissas at the
    maximum ``s`` makes subsequent sums/differences/comparisons exact
    integer arithmetic — semantically identical to Fraction, an order
    of magnitude cheaper.  Returns ``(ints, denominator)`` with
    ``values[i] == ints[i] / denominator`` exactly.
    """
    pairs = [float(v).as_integer_ratio() for v in values]
    shift = 0
    for _, den in pairs:
        bits = den.bit_length() - 1  # den is a power of two
        if bits > shift:
            shift = bits
    return (
        [n << (shift - (den.bit_length() - 1)) for n, den in pairs],
        1 << shift,
    )


def mad_outliers(
    values: Sequence[float], threshold: float = 3.5
) -> List[bool]:
    """One-sided robust outlier tags via the modified z-score.

    A value is an outlier when ``0.6745 * (v - median) / MAD`` exceeds
    ``threshold`` (the classic Iglewicz–Hoaglin cut at 3.5) — one-sided,
    because only *slow* sessions block anything.  When the MAD collapses
    to zero (over half the fleet identical), any value strictly above
    the median is tagged.  Pure arithmetic on the inputs: deterministic.
    """

    def median(ordered: List[float]) -> float:
        n = len(ordered)
        mid = n // 2
        if n % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])

    if not values:
        return []
    med = median(sorted(values))
    mad = median(sorted(abs(v - med) for v in values))
    if mad == 0.0:
        return [v > med for v in values]
    return [0.6745 * (v - med) / mad > threshold for v in values]


def session_breakdown(tracer, session) -> Dict[str, Any]:
    """One session's latency, split by phase, summing bit-exactly.

    ``session`` is duck-typed (:class:`~repro.serve.engine.DecodeSession`):
    anything with ``session_id`` / ``priority`` / ``arrival_time`` /
    ``first_token_time`` / ``finish_time`` works.  The returned
    ``exact`` flag certifies both halves of the invariant: the timeline
    is gap-free *and* the exact phase sums telescope to the
    enqueue→retire interval (``residual_s`` is the literal difference — always
    ``0.0`` when ``exact``).  TTFT attribution clips each span at the
    first-token instant; that instant is itself a span boundary the
    engine emitted, so the clip is exact too.
    """
    sid = session.session_id
    fin = session.finish_time
    if fin is None:
        raise ValueError(f"session {sid} has not retired; nothing to decompose")
    ft = session.first_token_time

    # Raw tuples (track, track_id, name, t0, t1, category, args) — one
    # indexed fetch; sort matches Tracer.session_timeline's ordering.
    timeline = tracer.span_records("session", sid)
    timeline.sort(key=lambda record: (record[3], record[4]))

    # One shared scale for every boundary float of this session: all
    # arithmetic below is exact integer arithmetic at that scale.
    floats: List[float] = [float(session.arrival_time), float(fin)]
    if ft is not None:
        floats.append(float(ft))
    for record in timeline:
        floats.append(record[3])
        floats.append(record[4])
    scaled, denom = _scaled_ints(floats)
    start_i, end_i = scaled[0], scaled[1]
    ft_i: Optional[int] = scaled[2] if ft is not None else None
    bounds = scaled[3 if ft is not None else 2:]

    # Single pass: phase totals, TTFT clipping, and the gap-free check
    # (the exact-equality walk Tracer.gaps does, on the scaled ints —
    # equivalent because the int embedding preserves float equality).
    totals: Dict[str, int] = {name: 0 for name in PHASE_NAMES}
    ttft_totals: Dict[str, int] = {name: 0 for name in PHASE_NAMES}
    other = 0
    gap_free = bool(timeline) or end_i <= start_i
    cursor = start_i
    for i, record in enumerate(timeline):
        t0 = bounds[2 * i]
        t1 = bounds[2 * i + 1]
        if t0 != cursor:
            gap_free = False
        if t1 > cursor:
            cursor = t1
        name = record[2]
        if name in totals:
            totals[name] += t1 - t0
        else:
            other += t1 - t0
        if ft_i is not None and name in ttft_totals:
            hi = t1 if t1 < ft_i else ft_i
            lo = t0 if t0 < ft_i else ft_i
            if hi > lo:
                ttft_totals[name] += hi - lo
    if timeline and cursor != end_i:
        gap_free = False

    covered = sum(totals.values()) + other
    interval = end_i - start_i
    exact = gap_free and covered == interval

    dominant = PHASE_NAMES[0]
    for name in PHASE_NAMES[1:]:
        if totals[name] > totals[dominant]:
            dominant = name

    out: Dict[str, Any] = {
        "session_id": sid,
        "priority": int(session.priority),
        "spans": len(timeline),
        "e2e_s": interval / denom,
        "ttft_s": (ft_i - start_i) / denom if ft_i is not None else None,
        "phases": {name: totals[name] / denom for name in PHASE_NAMES},
        "ttft_phases": (
            {name: ttft_totals[name] / denom for name in PHASE_NAMES}
            if ft_i is not None
            else None
        ),
        "dominant_phase": dominant,
        "exact": exact,
        "residual_s": (interval - covered) / denom,
    }
    return out


def _exemplar(breakdown: Dict[str, Any], metric: str) -> Dict[str, Any]:
    """The compact percentile-exemplar view of one breakdown."""
    phases = (
        breakdown["ttft_phases"] if metric == "ttft_s" else breakdown["phases"]
    )
    return {
        "session_id": breakdown["session_id"],
        "priority": breakdown["priority"],
        "value_s": breakdown[metric],
        "phases": dict(phases) if phases is not None else None,
        "dominant_phase": breakdown["dominant_phase"],
    }


def fleet_rollup(
    tracer,
    sessions: Sequence,
    worst_k: int = 3,
    outlier_threshold: float = 3.5,
    sampled=None,
) -> Dict[str, Any]:
    """Fleet-level critical-path rollup over completed sessions.

    Returns phase totals/shares across the fleet, nearest-rank p50/p99
    exemplars for TTFT and E2E (each carrying its own exact phase
    split), and per-class blocking analysis: the ``worst_k`` slowest
    sessions by E2E with MAD outlier tags, plus the class outlier
    count.  Ordering is fully deterministic (ties break on session id).

    With ``sampled`` (a
    :class:`~repro.serve.observability.streaming.TailSampler`), the
    rollup degrades gracefully to sketch mode: exact breakdowns and
    exemplars cover only the sessions whose full span timelines survived
    tail sampling (dropped sessions would fail the gap-free invariant),
    while an extra ``sampled`` section reports population-wide sketched
    p50/p90/p99 per folded distribution — the *whole* fleet, kept and
    dropped alike, within the sampler's ``alpha``.
    """
    if sampled is not None:
        sessions = [s for s in sessions if s.session_id in sampled.kept]
    completed = sorted(
        (s for s in sessions if s.finish_time is not None),
        key=lambda s: s.session_id,
    )
    breakdowns = [session_breakdown(tracer, s) for s in completed]

    # Exact fleet-wide phase totals: one shared scale across every
    # per-session phase float, integer sums, rounding only at report.
    n = len(breakdowns)
    scaled, denom = _scaled_ints(
        [b["phases"][name] for name in PHASE_NAMES for b in breakdowns]
    )
    phase_totals = {
        name: sum(scaled[j * n:(j + 1) * n])
        for j, name in enumerate(PHASE_NAMES)
    }
    grand = sum(phase_totals.values())

    out: Dict[str, Any] = {
        "sessions": len(breakdowns),
        "exact_sessions": sum(1 for b in breakdowns if b["exact"]),
        "phase_totals_s": {
            name: phase_totals[name] / denom for name in PHASE_NAMES
        },
        "phase_shares": {
            name: (phase_totals[name] / grand if grand else 0.0)
            for name in PHASE_NAMES
        },
    }
    if sampled is not None:
        # Population-wide view from the sampler's fold-in sketches —
        # available even when *zero* full timelines survived.
        out["sampled"] = {
            "kept": len(sampled.kept),
            "dropped": sampled.dropped,
            "folded": sampled.folded,
            "alpha": sampled.policy.alpha,
            "sketches": {
                name: {
                    "count": sketch.count,
                    "p50_s": sketch.percentile(50.0),
                    "p90_s": sketch.percentile(90.0),
                    "p99_s": sketch.percentile(99.0),
                }
                for name, sketch in sorted(sampled.sketches.items())
            },
        }
    if not breakdowns:
        out["e2e"] = out["ttft"] = None
        out["classes"] = {}
        return out

    for metric, key in (("e2e_s", "e2e"), ("ttft_s", "ttft")):
        ranked = sorted(
            breakdowns, key=lambda b: (b[metric], b["session_id"])
        )
        values = [b[metric] for b in ranked]
        out[key] = {
            "p50": _exemplar(ranked[nearest_rank(values, 50.0)], metric),
            "p99": _exemplar(ranked[nearest_rank(values, 99.0)], metric),
        }

    classes: Dict[str, Any] = {}
    by_class: Dict[int, List[Dict[str, Any]]] = {}
    for b in breakdowns:
        by_class.setdefault(b["priority"], []).append(b)
    for priority in sorted(by_class):
        members = by_class[priority]
        tags = mad_outliers(
            [b["e2e_s"] for b in members], threshold=outlier_threshold
        )
        worst = sorted(
            zip(members, tags),
            key=lambda pair: (-pair[0]["e2e_s"], pair[0]["session_id"]),
        )[: max(0, worst_k)]
        classes[f"class{priority}"] = {
            "sessions": len(members),
            "outliers": sum(tags),
            "worst": [
                dict(b, outlier=tag) for b, tag in worst
            ],
        }
    out["classes"] = classes
    return out
