"""Multi-window SLO burn-rate monitors.

Implements the SRE-style multi-window, multi-burn-rate alerting policy
on the live metric stream of the simulation: an SLO with objective
``p`` (e.g. 0.95 TTFT attainment) has an error budget ``1 - p``; the
**burn rate** over a window is ``error_rate / (1 - p)`` — 1.0 means the
budget is consumed exactly at the sustainable pace, 14.4 means it is
gone in 1/14.4 of the budget period.  An alert fires only when *both* a
long window and its short confirmation window exceed the threshold,
which keeps a brief spike from paging while still catching fast burns
quickly (the short window also makes the alert reset promptly once the
burn stops).

Windows are expressed in **simulated seconds** and should be scaled to
the scenario horizon (the benchmark uses fractions of the fault-free
makespan); :func:`default_windows` encodes the classic fast/slow pair
for a given horizon.

Monitors are fed per good/bad event (:meth:`SLOTracker.observe`) keyed
by class/tenant, and the autoscaler *surfaces* firing alerts in its
decision events and summary — it does not yet act on them.
"""

from __future__ import annotations

import math
from bisect import bisect_right, insort
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "BurnWindow",
    "SLOSpec",
    "BurnRateMonitor",
    "SLOTracker",
    "default_windows",
]


@dataclass(frozen=True)
class BurnWindow:
    """A long window plus its short confirmation window.

    ``threshold`` is the burn-rate multiple both windows must exceed for
    the alert to fire.
    """

    long_s: float
    short_s: float
    threshold: float

    def __post_init__(self):
        if self.long_s <= 0 or self.short_s <= 0:
            raise ValueError("burn windows must be positive")
        if self.short_s > self.long_s:
            raise ValueError(
                f"short window {self.short_s} exceeds long window {self.long_s}"
            )
        if self.threshold <= 0:
            raise ValueError("burn threshold must be positive")


def default_windows(horizon_s: float) -> Tuple[BurnWindow, ...]:
    """The classic fast/slow pair scaled to a scenario horizon.

    Mirrors the 1h/5m + 6h/30m shape of the SRE workbook, expressed as
    fractions of the horizon: a fast-burn page (5% of the horizon,
    confirmed over 1/12 of that) and a slow-burn ticket (30% of the
    horizon, confirmed over 1/12 of that).
    """
    if horizon_s <= 0:
        raise ValueError(f"horizon_s must be positive, got {horizon_s}")
    return (
        BurnWindow(0.05 * horizon_s, 0.05 * horizon_s / 12.0, 14.4),
        BurnWindow(0.30 * horizon_s, 0.30 * horizon_s / 12.0, 3.0),
    )


@dataclass(frozen=True)
class SLOSpec:
    """An objective (good fraction) plus its alerting windows."""

    name: str
    objective: float
    windows: Tuple[BurnWindow, ...]

    def __post_init__(self):
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"objective must be in (0, 1), got {self.objective}"
            )
        if not self.windows:
            raise ValueError("at least one burn window is required")
        object.__setattr__(self, "windows", tuple(self.windows))

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective


class BurnRateMonitor:
    """Good/bad event stream for one key, queryable over any window."""

    def __init__(self, spec: SLOSpec, key: str = "all"):
        self.spec = spec
        self.key = key
        # Sorted event times; bad events are kept in a parallel sorted
        # list so any window reduces to two bisects per list.
        self._times: List[float] = []
        self._bad_times: List[float] = []
        self.good = 0
        self.bad = 0

    def observe(self, t: float, good: bool) -> None:
        if not math.isfinite(t):
            raise ValueError(
                f"SLO monitor {self.key!r} observed non-finite time {t!r}"
            )
        if not self._times or t >= self._times[-1]:
            self._times.append(t)
        else:
            insort(self._times, t)
        if good:
            self.good += 1
        else:
            self.bad += 1
            if not self._bad_times or t >= self._bad_times[-1]:
                self._bad_times.append(t)
            else:
                insort(self._bad_times, t)

    @property
    def total(self) -> int:
        return self.good + self.bad

    def _window_counts(self, window_s: float, now: float) -> Tuple[int, int]:
        """(events, bad events) with time in ``(now - window_s, now]``."""
        lo = now - window_s
        n = bisect_right(self._times, now) - bisect_right(self._times, lo)
        b = bisect_right(self._bad_times, now) - bisect_right(
            self._bad_times, lo
        )
        return n, b

    def error_rate(self, window_s: float, now: float) -> Optional[float]:
        n, b = self._window_counts(window_s, now)
        if n == 0:
            return None
        return b / n

    def burn_rate(self, window_s: float, now: float) -> Optional[float]:
        rate = self.error_rate(window_s, now)
        if rate is None:
            return None
        return rate / self.spec.error_budget

    def check(self, now: float) -> List[Dict[str, Any]]:
        """Alerts whose long *and* short windows both exceed threshold."""
        alerts = []
        for window in self.spec.windows:
            long_burn = self.burn_rate(window.long_s, now)
            short_burn = self.burn_rate(window.short_s, now)
            if (
                long_burn is not None
                and short_burn is not None
                and long_burn >= window.threshold
                and short_burn >= window.threshold
            ):
                alerts.append(
                    {
                        "slo": self.spec.name,
                        "key": self.key,
                        "t": now,
                        "threshold": window.threshold,
                        "long_s": window.long_s,
                        "short_s": window.short_s,
                        "long_burn": long_burn,
                        "short_burn": short_burn,
                    }
                )
        return alerts

    def summary(self, now: Optional[float] = None) -> Dict[str, Any]:
        if now is None:
            now = self._times[-1] if self._times else 0.0
        out: Dict[str, Any] = {
            "events": self.total,
            "bad": self.bad,
            "error_rate": (self.bad / self.total) if self.total else None,
            "windows": [],
        }
        for window in self.spec.windows:
            out["windows"].append(
                {
                    "long_s": window.long_s,
                    "short_s": window.short_s,
                    "threshold": window.threshold,
                    "long_burn": self.burn_rate(window.long_s, now),
                    "short_burn": self.burn_rate(window.short_s, now),
                }
            )
        return out


class SLOTracker:
    """Per-class/tenant burn monitors for one SLO spec.

    Keys are free-form strings (``"class2"``, ``"chat/class0"``); a
    monitor is created lazily on first observation of a key.
    """

    def __init__(self, spec: SLOSpec):
        self.spec = spec
        self.monitors: Dict[str, BurnRateMonitor] = {}
        self.alerts_fired: List[Dict[str, Any]] = []

    def observe(self, key: str, t: float, good: bool) -> None:
        # Checked before the lazy monitor creation so a poisoned
        # timestamp cannot leave an empty monitor behind.
        if not math.isfinite(t):
            raise ValueError(
                f"SLO tracker key {key!r} observed non-finite time {t!r}"
            )
        monitor = self.monitors.get(key)
        if monitor is None:
            monitor = self.monitors[key] = BurnRateMonitor(self.spec, key)
        monitor.observe(t, good)

    def check(self, now: float) -> List[Dict[str, Any]]:
        """All currently-firing alerts across keys (also recorded)."""
        alerts = []
        for key in sorted(self.monitors):
            alerts.extend(self.monitors[key].check(now))
        self.alerts_fired.extend(alerts)
        return alerts

    def summary(self, now: Optional[float] = None) -> Dict[str, Any]:
        return {
            "slo": self.spec.name,
            "objective": self.spec.objective,
            "keys": {
                key: self.monitors[key].summary(now)
                for key in sorted(self.monitors)
            },
            "alerts_fired": len(self.alerts_fired),
        }
