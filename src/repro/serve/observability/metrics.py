"""Typed metrics registry with Prometheus text export.

The serving stack's telemetry (:mod:`repro.serve.telemetry`) records
through a :class:`MetricsRegistry`: typed **counters**, **gauges** and
**histograms**, each carrying a label schema (e.g. ``{model, priority}``)
and a family of children keyed by label values.  Three properties the
simulation needs:

* **cheap hot path** — ``metric.labels(...)`` returns a cached child
  whose ``inc``/``set``/``observe`` is a couple of attribute writes, so
  always-on metrics do not distort the wall-clock overhead gate;
* **lossless export** — :meth:`MetricsRegistry.prometheus_text` renders
  the standard Prometheus text exposition format with ``repr(float)``
  values, and :func:`parse_prometheus_text` parses it back, so
  ``parse(render()) == samples()`` holds *exactly* (the round-trip gate
  in ``benchmarks/bench_observability.py``);
* **streaming series** — a gauge ``set`` with a timestamp appends to a
  per-child ``(t, value)`` series (KV occupancy over time, queue depth
  over time) without touching the exported last-value sample.

Determinism: rendering iterates metrics in registration order and
children in first-touch order — both deterministic for a deterministic
run — so two runs of the same seeded scenario dump byte-identical text.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

from .sketch import QuantileSketch

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_prometheus_text",
]

# Log-spaced default buckets covering the simulated-seconds scale the
# analytic hardware model produces (nanoseconds .. seconds).
DEFAULT_TIME_BUCKETS = tuple(10.0 ** e for e in range(-9, 1))

_NAME_OK = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"
)


def _check_name(name: str) -> None:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ValueError(f"invalid metric name {name!r}")


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt(value: float) -> str:
    """Lossless float rendering: ``float(_fmt(x)) == x`` exactly."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


class _Child:
    """One labelled instance of a metric (a Prometheus 'child')."""

    __slots__ = (
        "labels",
        "value",
        "series",
        "bucket_counts",
        "sum",
        "count",
        "sketch",
    )

    def __init__(self, labels: Tuple[str, ...], buckets: int = 0):
        self.labels = labels
        self.value = 0.0
        self.series: List[Tuple[float, float]] = []
        if buckets:
            self.bucket_counts = [0] * buckets
            self.sum = 0.0
            self.count = 0

    # Counter -----------------------------------------------------------
    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    # Gauge -------------------------------------------------------------
    def set(self, value: float, t: Optional[float] = None) -> None:
        self.value = float(value)
        if t is not None:
            self.series.append((t, self.value))


class _Metric:
    """Base metric: a name, a help string, a label schema, children."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Tuple[str, ...]):
        _check_name(name)
        for label in labelnames:
            _check_name(label)
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: Dict[Tuple[str, ...], _Child] = {}

    def _make_child(self, key: Tuple[str, ...]) -> _Child:
        return _Child(key)

    def labels(self, *values) -> _Child:
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            if len(key) != len(self.labelnames):
                raise ValueError(
                    f"{self.name} takes labels {self.labelnames}, got {key}"
                )
            child = self._make_child(key)
            self._children[key] = child
        return child

    def children(self) -> List[_Child]:
        return list(self._children.values())

    # Export ------------------------------------------------------------
    def _series_name(self, labels: Tuple[str, ...], suffix: str = "") -> str:
        name = self.name + suffix
        if not labels:
            return name
        inner = ",".join(
            f'{ln}="{_escape_label(lv)}"'
            for ln, lv in zip(self.labelnames, labels)
        )
        return f"{name}{{{inner}}}"

    def samples(self) -> Dict[str, float]:
        return {
            self._series_name(key): child.value
            for key, child in self._children.items()
        }

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for key, child in self._children.items():
            lines.append(f"{self._series_name(key)} {_fmt(child.value)}")
        return lines


class Counter(_Metric):
    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Convenience kwargs path; hot code should cache ``labels(...)``."""
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        key = tuple(str(labels[ln]) for ln in self.labelnames)
        self.labels(*key).inc(amount)


class Gauge(_Metric):
    kind = "gauge"

    def set(self, value: float, t: Optional[float] = None, **labels) -> None:
        key = tuple(str(labels[ln]) for ln in self.labelnames)
        self.labels(*key).set(value, t)

    def series(self, *label_values) -> List[Tuple[float, float]]:
        """The streaming ``(t, value)`` series of one child (a copy)."""
        return list(self.labels(*label_values).series)


class Histogram(_Metric):
    """Bucketed by default; ``sketch_alpha`` switches the backend.

    With ``sketch_alpha`` set, each child holds a
    :class:`~repro.serve.observability.sketch.QuantileSketch` instead of
    fixed bucket counts: memory follows the observed dynamic range
    rather than a pre-declared bucket list, :meth:`quantile` answers any
    percentile within ``alpha``, and the Prometheus rendering stays a
    valid cumulative histogram (the sketch's log buckets *are* the
    ``le`` boundaries) that round-trips through
    :func:`parse_prometheus_text`.  Sketch-backed histograms accept only
    non-negative values — Prometheus ``le`` boundaries must ascend from
    the zero bucket.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Tuple[str, ...],
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
        sketch_alpha: Optional[float] = None,
    ):
        if sketch_alpha is not None:
            sketch_alpha = float(sketch_alpha)
            if not 0.0 < sketch_alpha < 1.0:
                raise ValueError(
                    f"sketch_alpha must be in (0, 1), got {sketch_alpha}"
                )
            self.buckets: Tuple[float, ...] = ()
        else:
            uppers = tuple(float(b) for b in buckets)
            if not uppers or any(
                b >= c for b, c in zip(uppers, uppers[1:])
            ):
                raise ValueError(
                    f"buckets must be non-empty and strictly increasing: "
                    f"{buckets}"
                )
            self.buckets = uppers
        self.sketch_alpha = sketch_alpha
        super().__init__(name, help, labelnames)

    def _make_child(self, key: Tuple[str, ...]) -> _Child:
        if self.sketch_alpha is not None:
            child = _Child(key)
            child.sketch = QuantileSketch(alpha=self.sketch_alpha)
            return child
        return _Child(key, buckets=len(self.buckets) + 1)  # + the +Inf bucket

    def observe(self, value: float, *label_values) -> None:
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(
                f"histogram {self.name!r} observed non-finite value {value!r}"
            )
        child = self.labels(*label_values)
        if self.sketch_alpha is not None:
            if value < 0.0:
                raise ValueError(
                    f"sketch-backed histogram {self.name!r} observed "
                    f"negative value {value}"
                )
            child.sketch.add(value)
            return
        child.bucket_counts[bisect_left(self.buckets, value)] += 1
        child.sum += value
        child.count += 1

    def quantile(self, q: float, *label_values) -> Optional[float]:
        """Sketch-backed percentile (``q`` in [0, 100]); ``None`` while
        empty.  Bucketed histograms refuse — their fixed buckets cannot
        honour an error bound."""
        if self.sketch_alpha is None:
            raise ValueError(
                f"histogram {self.name!r} has no sketch backend; construct "
                f"it with sketch_alpha to query quantiles"
            )
        return self.labels(*label_values).sketch.percentile(q)

    # Export: the standard bucket/sum/count explosion -------------------
    def _bucket_name(self, labels: Tuple[str, ...], le: str) -> str:
        inner = ",".join(
            f'{ln}="{_escape_label(lv)}"'
            for ln, lv in zip(self.labelnames, labels)
        )
        sep = "," if inner else ""
        return f'{self.name}_bucket{{{inner}{sep}le="{le}"}}'

    def _sketch_buckets(self, child: _Child) -> List[Tuple[str, int]]:
        """Cumulative ``(le, count)`` pairs of one sketch-backed child.

        The zero bucket renders at ``le="0.0"`` and each occupied sketch
        bucket at its exact upper boundary ``gamma**k`` — ascending, so
        the output is a standard valid Prometheus cumulative histogram.
        """
        sketch = child.sketch
        acc = sketch.zero_count
        out = [(_fmt(0.0), acc)]
        for k, n in sketch.positive_bin_items():
            acc += n
            out.append((_fmt(sketch.bin_upper(k)), acc))
        return out

    def samples(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for key, child in self._children.items():
            if self.sketch_alpha is not None:
                for le, acc in self._sketch_buckets(child):
                    out[self._bucket_name(key, le)] = float(acc)
                sketch = child.sketch
                out[self._bucket_name(key, "+Inf")] = float(sketch.count)
                out[self._series_name(key, "_sum")] = sketch.sum
                out[self._series_name(key, "_count")] = float(sketch.count)
                continue
            acc = 0
            for upper, n in zip(self.buckets, child.bucket_counts):
                acc += n
                out[self._bucket_name(key, _fmt(upper))] = float(acc)
            out[self._bucket_name(key, "+Inf")] = float(child.count)
            out[self._series_name(key, "_sum")] = child.sum
            out[self._series_name(key, "_count")] = float(child.count)
        return out

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for key, child in self._children.items():
            if self.sketch_alpha is not None:
                for le, acc in self._sketch_buckets(child):
                    lines.append(f"{self._bucket_name(key, le)} {acc}")
                sketch = child.sketch
                lines.append(
                    f'{self._bucket_name(key, "+Inf")} {sketch.count}'
                )
                lines.append(
                    f"{self._series_name(key, '_sum')} {_fmt(sketch.sum)}"
                )
                lines.append(
                    f"{self._series_name(key, '_count')} {sketch.count}"
                )
                continue
            acc = 0
            for upper, n in zip(self.buckets, child.bucket_counts):
                acc += n
                lines.append(f"{self._bucket_name(key, _fmt(upper))} {acc}")
            lines.append(f'{self._bucket_name(key, "+Inf")} {child.count}')
            lines.append(f"{self._series_name(key, '_sum')} {_fmt(child.sum)}")
            lines.append(f"{self._series_name(key, '_count')} {child.count}")
        return lines


class MetricsRegistry:
    """All metrics of one deployment, in registration order."""

    def __init__(self):
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls, name, help, labelnames, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.labelnames != tuple(
                labelnames
            ):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}{existing.labelnames}"
                )
            return existing
        metric = cls(name, help, tuple(labelnames), **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
        sketch_alpha: Optional[float] = None,
    ) -> Histogram:
        return self._get_or_create(
            Histogram,
            name,
            help,
            labelnames,
            buckets=buckets,
            sketch_alpha=sketch_alpha,
        )

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def metrics(self) -> List[_Metric]:
        return list(self._metrics.values())

    def samples(self) -> Dict[str, float]:
        """Every exported sample as ``{series_name: value}`` — the exact
        dict :func:`parse_prometheus_text` recovers from the text dump."""
        out: Dict[str, float] = {}
        for metric in self._metrics.values():
            out.update(metric.samples())
        return out

    def prometheus_text(self) -> str:
        """The Prometheus text exposition format dump (deterministic)."""
        lines: List[str] = []
        for metric in self._metrics.values():
            lines.extend(metric.render())
        return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Parse a Prometheus text dump back to ``{series_name: value}``.

    The inverse of :meth:`MetricsRegistry.prometheus_text` for the
    round-trip gate: values render via ``repr(float)``, so
    ``parse_prometheus_text(registry.prometheus_text()) ==
    registry.samples()`` must hold with exact float equality.

    A line that is not a comment and not ``name[{labels}] value`` raises
    ``ValueError`` naming the offending line — silent skips would let a
    truncated dump "round-trip" to a subset.
    """
    out: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        # The series name may contain spaces (and even ``}``) only
        # inside the label braces; the value never contains ``}``, so
        # the *last* closing brace ends the name.
        if "}" in line:
            brace = line.rindex("}")
            name, value_str = line[: brace + 1], line[brace + 1 :].strip()
        else:
            parts = line.split(None, 1)
            if len(parts) != 2:
                raise ValueError(f"malformed Prometheus sample line: {line!r}")
            name, value_str = parts
        if not name or not value_str:
            raise ValueError(f"malformed Prometheus sample line: {line!r}")
        try:
            out[name] = float(value_str)
        except ValueError:
            raise ValueError(
                f"malformed Prometheus sample value in line: {line!r}"
            ) from None
    return out
