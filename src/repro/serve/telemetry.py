"""Serving telemetry: latency percentiles, throughput, batching stats.

Collects per-request records and runtime samples during a scenario and
reduces them to the numbers an SRE would page on: p50/p95/p99 latency,
sustained throughput, batch-size histogram, queue depth over time,
admission rejections, and programmed-cache hit rate.

Because service times come from the analytic hardware model
(:mod:`repro.arch.latency` via :func:`repro.arch.inference.per_request_latency`),
the report can *cross-check* itself: recomputing each dispatched batch's
service latency from its (model, batch-size) pair must reproduce the
recorded busy intervals exactly.  ``slo_attainment`` then reads as
"fraction of admitted requests that met their latency target on the
simulated hardware"; with priority-classed traffic the summary splits it
per class (``per_class``: completions, sheds — rejections *and*
evictions — attainment and p99 per priority), and the windowed
:meth:`Telemetry.latencies` filter is what the replica autoscaler's
control loop reads.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .observability.metrics import MetricsRegistry
from .observability.quantiles import percentile
from .observability.sketch import QuantileSketch
from .observability.streaming import SpaceSavingTopK, WindowedSketch
from .request import InferenceRequest, RequestStatus

__all__ = [
    "EngineTelemetry",
    "Telemetry",
    "percentile",  # re-exported from observability.quantiles (shared impl)
    "summarize_latencies",
]


def summarize_latencies(latencies: Sequence[float]) -> Dict[str, float]:
    return {
        "p50_s": percentile(latencies, 50),
        "p95_s": percentile(latencies, 95),
        "p99_s": percentile(latencies, 99),
        "mean_s": float(np.mean(latencies)) if len(latencies) else 0.0,
        "max_s": float(np.max(latencies)) if len(latencies) else 0.0,
    }


@dataclass
class _BatchRecord:
    model: str
    batch_size: int
    worker_id: int
    dispatch_time: float
    service_s: float


class Telemetry:
    """Accumulates serving events; reduces to a summary dict.

    Every recording method also updates a typed
    :class:`~repro.serve.observability.metrics.MetricsRegistry` (pass
    one to share it with the tracer/SLO plane; a private registry is
    created otherwise), so any run can be exported in Prometheus text
    format and any gauge read as a streaming ``(t, value)`` series.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self._m_completed = reg.counter(
            "serve_requests_completed_total",
            "Requests completed, by model and priority class",
            ("model", "priority"),
        )
        self._m_shed = reg.counter(
            "serve_requests_shed_total",
            "Requests lost before completion, by priority class and reason",
            ("priority", "reason"),
        )
        self._m_retries = reg.counter(
            "serve_retries_total",
            "Requests re-entering admission after a lost dispatch",
            ("hedged",),
        )
        self._m_crashes = reg.counter(
            "serve_worker_crashes_total", "Worker crash events observed"
        )
        self._m_replacements = reg.counter(
            "serve_worker_replacements_total", "Dead workers replaced"
        )
        self._m_batches = reg.counter(
            "serve_batches_dispatched_total",
            "Batches dispatched, by model",
            ("model",),
        )
        self._m_batch_size = reg.histogram(
            "serve_batch_size",
            "Dispatched batch sizes, by model",
            ("model",),
            buckets=(1, 2, 4, 8, 16, 32, 64),
        )
        self._m_latency = reg.histogram(
            "serve_request_latency_seconds",
            "End-to-end request latency, by model",
            ("model",),
        )
        self._m_queue_depth = reg.gauge(
            "serve_queue_depth", "Admission queue depth (streamed series)"
        )
        self.completed: List[InferenceRequest] = []
        self.rejected: int = 0
        self.rejected_by_class: Counter = Counter()
        self.evicted: int = 0
        self.batches: List[_BatchRecord] = []
        self._depth_samples: List[Tuple[float, int]] = []
        # Failure plane (PR 6): counters stay zero on fault-free runs,
        # and the summary only grows a "resilience" section when the
        # run actually saw failure activity.
        self.retries = 0
        self.hedges = 0
        self.timeouts = 0
        self.timeouts_by_class: Counter = Counter()
        self.failed = 0
        self.failed_by_class: Counter = Counter()
        self.crashes = 0
        self.replacements = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_rejection(self, request: InferenceRequest) -> None:
        """A shed request — rejected at admission or evicted by a higher
        class; both count against its class's SLO attainment."""
        self.rejected += 1
        self.rejected_by_class[request.priority] += 1
        if request.status == RequestStatus.EVICTED:
            self.evicted += 1
            self._m_shed.labels(request.priority, "evicted").inc()
        else:
            self._m_shed.labels(request.priority, "rejected").inc()

    def record_retry(self, request: InferenceRequest, hedged: bool = False) -> None:
        """A request re-entering admission after its dispatch was lost
        to a worker failure; ``hedged=True`` marks a suspect-worker
        hedge (re-dispatched before the worker was declared dead)."""
        self.retries += 1
        if hedged:
            self.hedges += 1
        self._m_retries.labels("true" if hedged else "false").inc()

    def record_timeout(self, request: InferenceRequest) -> None:
        """A request whose per-request deadline expired before service.

        Counts as an SLO miss for its class, like a rejection."""
        self.timeouts += 1
        self.timeouts_by_class[request.priority] += 1
        self._m_shed.labels(request.priority, "timeout").inc()

    def record_failure(self, request: InferenceRequest) -> None:
        """A request abandoned after exhausting its retry budget.

        Counts as an SLO miss for its class, like a rejection."""
        self.failed += 1
        self.failed_by_class[request.priority] += 1
        self._m_shed.labels(request.priority, "failed").inc()

    def record_crash(self, worker_id: int) -> None:
        self.crashes += 1
        self._m_crashes.labels().inc()

    def record_replacement(self, dead_worker_id: int, new_worker_id: int) -> None:
        self.replacements += 1
        self._m_replacements.labels().inc()

    def record_batch(
        self,
        model: str,
        requests: Sequence[InferenceRequest],
        worker_id: int,
        dispatch_time: float,
        service_s: float,
    ) -> int:
        """Record one dispatched batch; returns its index in ``batches``
        (the id the runtime stamps on the batch's service span)."""
        index = len(self.batches)
        self.batches.append(
            _BatchRecord(model, len(requests), worker_id, dispatch_time, service_s)
        )
        self._m_batches.labels(model).inc()
        self._m_batch_size.observe(len(requests), model)
        return index

    def record_completion(self, request: InferenceRequest) -> None:
        self.completed.append(request)
        self._m_completed.labels(request.model, request.priority).inc()
        if request.total_latency is not None:
            self._m_latency.observe(request.total_latency, request.model)

    def sample_queue_depth(self, now: float, depth: int) -> None:
        self._depth_samples.append((now, depth))
        self._m_queue_depth.labels().set(depth, t=now)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def latencies(
        self,
        model: Optional[str] = None,
        priority: Optional[int] = None,
        since: Optional[float] = None,
    ) -> List[float]:
        """Total latencies of completed requests, optionally filtered by
        model, priority class, and completion time (``since`` — the
        autoscaler's sliding window).

        Completions are recorded in nondecreasing ``completion_time``
        order (the event loop pops worker-free events in time order), so
        the ``since`` window starts at a bisected index instead of
        scanning the whole history — the autoscaler queries this every
        control tick.
        """
        start = 0
        if since is not None:
            start = bisect_left(
                self.completed, since, key=lambda r: r.completion_time
            )
        return [
            r.total_latency
            for r in self.completed[start:]
            if r.total_latency is not None
            and (model is None or r.model == model)
            and (priority is None or r.priority == priority)
        ]

    def classes_seen(self) -> List[int]:
        """Priority classes observed across completions and misses."""
        seen = {r.priority for r in self.completed}
        seen.update(self.rejected_by_class)
        seen.update(self.timeouts_by_class)
        seen.update(self.failed_by_class)
        return sorted(seen)

    def _misses(self, priority: Optional[int] = None) -> int:
        """Requests that never completed: shed, timed out, or failed."""
        if priority is None:
            return self.rejected + self.timeouts + self.failed
        return (
            self.rejected_by_class.get(priority, 0)
            + self.timeouts_by_class.get(priority, 0)
            + self.failed_by_class.get(priority, 0)
        )

    def batch_size_histogram(self) -> Dict[int, int]:
        return dict(sorted(Counter(b.batch_size for b in self.batches).items()))

    def mean_batch_size(self) -> float:
        if not self.batches:
            return 0.0
        total = sum(b.batch_size for b in self.batches)
        return total / len(self.batches)

    def throughput(self, horizon_s: float) -> float:
        """Completed requests per second over ``horizon_s``."""
        if horizon_s <= 0:
            return 0.0
        return len(self.completed) / horizon_s

    def makespan(self) -> float:
        """Time of the last completion (simulated seconds)."""
        if not self.completed:
            return 0.0
        return max(r.completion_time for r in self.completed)

    def queue_depth_stats(self) -> Dict[str, float]:
        if not self._depth_samples:
            return {"mean": 0.0, "max": 0.0}
        depths = np.array([d for _, d in self._depth_samples], dtype=np.float64)
        return {"mean": float(depths.mean()), "max": float(depths.max())}

    def slo_attainment(self, slo_s: float) -> float:
        """Fraction of *admitted* requests completing within ``slo_s``.

        Rejected, timed-out, and retry-exhausted requests all count
        against attainment — any request that never completes is a miss
        from the caller's point of view.
        """
        lat = self.latencies()
        total = len(lat) + self._misses()
        if total == 0:
            return 1.0
        met = sum(1 for v in lat if v <= slo_s + 1e-15)
        return met / total

    def slo_attainment_by_class(self, slo_s: float) -> Dict[int, float]:
        """Per-priority-class SLO attainment (all misses count)."""
        out: Dict[int, float] = {}
        for p in self.classes_seen():
            lat = self.latencies(priority=p)
            total = len(lat) + self._misses(p)
            if total == 0:
                out[p] = 1.0
                continue
            met = sum(1 for v in lat if v <= slo_s + 1e-15)
            out[p] = met / total
        return out

    def cross_check_service_model(
        self, service_fn: Callable[[str, int], float]
    ) -> Dict[str, float]:
        """Verify recorded busy intervals against the analytic model.

        ``service_fn(model, batch_size)`` is the same analytic latency
        the runtime used at dispatch; any drift between recorded and
        recomputed service times means the telemetry and the
        ``arch.inference``/``arch.latency`` accounting have diverged.
        """
        if not self.batches:
            return {"max_abs_error_s": 0.0, "checked_batches": 0}
        errs = [
            abs(b.service_s - service_fn(b.model, b.batch_size))
            for b in self.batches
        ]
        return {
            "max_abs_error_s": float(max(errs)),
            "checked_batches": len(self.batches),
        }

    # ------------------------------------------------------------------
    def summary(
        self,
        horizon_s: float,
        slo_s: Optional[float] = None,
        cache_stats: Optional[Dict[str, float]] = None,
    ) -> Dict[str, object]:
        """One dict with everything the benchmarks report."""
        lat = self.latencies()
        out: Dict[str, object] = {
            "completed": len(self.completed),
            "rejected": self.rejected,
            "evicted": self.evicted,
            "throughput_rps": self.throughput(horizon_s),
            "latency": summarize_latencies(lat),
            "mean_batch_size": self.mean_batch_size(),
            "batch_size_histogram": {
                str(k): v for k, v in self.batch_size_histogram().items()
            },
            "queue_depth": self.queue_depth_stats(),
        }
        if slo_s is not None:
            out["slo_s"] = slo_s
            out["slo_attainment"] = self.slo_attainment(slo_s)
            # Single-class default-priority deployments keep the old
            # summary shape; any other class present adds the breakdown.
            classes = self.classes_seen()
            if classes != [0]:
                by_class = self.slo_attainment_by_class(slo_s)
                out["per_class"] = {
                    str(p): {
                        "completed": sum(
                            1 for r in self.completed if r.priority == p
                        ),
                        "rejected": self.rejected_by_class.get(p, 0),
                        "slo_attainment": by_class[p],
                        "p99_s": percentile(self.latencies(priority=p), 99),
                    }
                    for p in classes
                }
        if cache_stats is not None:
            out["programmed_cache"] = cache_stats
        if (
            self.retries
            or self.timeouts
            or self.failed
            or self.crashes
            or self.replacements
        ):
            out["resilience"] = {
                "retries": self.retries,
                "hedges": self.hedges,
                "timeouts": self.timeouts,
                "failed": self.failed,
                "crashes": self.crashes,
                "replacements": self.replacements,
            }
        return out


# ----------------------------------------------------------------------
# Token-level telemetry (autoregressive serving engine)
# ----------------------------------------------------------------------
@dataclass
class _StepRecord:
    """One iteration-level engine step: batch shape, cost, KV pressure.

    ``prefill_chunks`` holds one ``(resident_context, chunk_len)`` pair
    per prefill slice the step absorbed — a monolithic prefill is the
    single pair ``(0, prompt_len)``; prefix-cached and chunked prefills
    carry the already-resident context their chunk attends over.
    """

    t: float
    model: str
    batch: int
    active: int
    context_lens: Tuple[int, ...]
    prefill_chunks: Tuple[Tuple[int, int], ...]
    step_s: float
    kv_blocks: int
    kv_occupancy: float
    # Extra wall time beyond the analytic step cost (degraded/slow
    # worker).  Kept separate from ``step_s`` so the analytic decode
    # cross-check stays exact through fault storms.
    stall_s: float = 0.0


@dataclass
class _PrefixRecord:
    """One admission-time prefix-cache lookup."""

    prompt_tokens: int  # prompt ids presented to the cache
    cached_tokens: int  # context tokens served from cache (no prefill)


class EngineTelemetry:
    """Token-serving metrics: TTFT, TPOT, tokens/s, KV and prefix reuse.

    Sessions are duck-typed (:class:`repro.serve.engine.DecodeSession`):
    anything with ``priority``/``ttft``/``tpot``/``decode_len``/
    ``finish_time``/``preemptions`` records.  Per-step records keep the
    exact batch composition (context lengths and prefill chunks), so the
    report can re-derive every step's latency from
    :func:`repro.arch.inference.decode_step_latency` /
    :func:`repro.arch.inference.chunked_prefill_latency` and prove the
    engine's accounting matches the analytic hardware model — the same
    cross-check discipline as request-level :class:`Telemetry`.

    ``streaming=True`` switches to **bounded-memory** accounting: no
    per-session/per-step record lists (``sessions``/``rejected``/
    ``steps`` stay empty, ``ttfts()`` refuses), latency distributions
    fold into :class:`~repro.serve.observability.sketch.QuantileSketch`
    summaries with relative error ``sketch_alpha``, KV occupancy into a
    fixed-budget :class:`~repro.serve.observability.streaming.WindowedSketch`
    time series, and per-model/class attribution into a
    :class:`~repro.serve.observability.streaming.SpaceSavingTopK` —
    every event costs O(1) amortized memory, so telemetry stops scaling
    with traffic (the ``bench_obs_scale`` gate).  Exact scalar totals
    (tokens, counts, makespan, stall, prefix stats) are identical to
    the record-keeping mode; only the distribution summaries carry the
    declared ``alpha``.  Streaming gauges update their last value
    without appending the unbounded ``(t, value)`` series.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        streaming: bool = False,
        sketch_alpha: float = 0.01,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.streaming = bool(streaming)
        self.sketch_alpha = float(sketch_alpha)
        reg = self.registry
        self._m_sessions = reg.counter(
            "engine_sessions_completed_total",
            "Sessions decoded to completion, by model and priority class",
            ("model", "priority"),
        )
        self._m_rejected = reg.counter(
            "engine_sessions_rejected_total",
            "Sessions rejected or shed before completion",
            ("priority",),
        )
        self._m_tokens = reg.counter(
            "engine_tokens_generated_total",
            "Tokens committed by completed sessions, by model",
            ("model",),
        )
        self._m_steps = reg.counter(
            "engine_steps_total",
            "Iteration-level engine steps dispatched, by model",
            ("model",),
        )
        self._m_preemptions = reg.counter(
            "engine_preemptions_total",
            "Sessions preempted, by priority class",
            ("priority",),
        )
        self._m_faults = reg.counter(
            "engine_faults_injected_total",
            "Injected fault events applied, by kind",
            ("kind",),
        )
        self._m_transients = reg.counter(
            "engine_transients_total",
            "RRNS-detected transient faults, by outcome",
            ("outcome",),
        )
        self._m_recovered = reg.counter(
            "engine_sessions_recovered_total", "Sessions rescued off lost KV"
        )
        self._m_failed = reg.counter(
            "engine_sessions_failed_total", "Sessions terminally failed"
        )
        self._m_kv_lost = reg.counter(
            "engine_kv_blocks_lost_total", "KV blocks destroyed by faults"
        )
        self._m_crashes = reg.counter(
            "engine_replica_crashes_total", "Replica crash events observed"
        )
        self._m_replacements = reg.counter(
            "engine_replica_replacements_total", "Dead replicas replaced"
        )
        self._m_health = reg.counter(
            "engine_health_transitions_total",
            "Fleet monitor health transitions, by target state",
            ("to",),
        )
        self._m_stall = reg.counter(
            "engine_stall_seconds_total",
            "Wall time lost to degraded workers (simulated seconds)",
        )
        self._m_ttft = reg.histogram(
            "engine_ttft_seconds",
            "Time to first token, by priority class",
            ("priority",),
            sketch_alpha=self.sketch_alpha if self.streaming else None,
        )
        self._m_kv_occupancy = reg.gauge(
            "engine_kv_occupancy",
            "KV block pool occupancy after each step (streamed series)",
        )
        self._m_batch_active = reg.gauge(
            "engine_active_decoders",
            "Active decode slots per step (streamed series)",
        )
        self.sessions: List = []
        self.rejected: List = []
        self.steps: List[_StepRecord] = []
        self.preemptions = 0
        self.preemptions_by_class: Counter = Counter()
        self.prefix_records: List[_PrefixRecord] = []
        # Fault/recovery plane (PR 6) — all zero on fault-free runs.
        self.faults_injected: Counter = Counter()  # by FaultKind
        self.faults_corrected = 0
        self.faults_uncorrectable = 0
        self.tokens_retried = 0
        self.sessions_recovered = 0
        self.sessions_failed = 0
        self.sessions_shed = 0
        self.recovery_reprefill_tokens = 0
        self.kv_blocks_lost = 0
        self.replica_crashes = 0
        self.replicas_replaced = 0
        self.health_transitions: List[Dict] = []
        # Streaming-mode accumulators: O(1) state per event, replacing
        # the record lists above (which stay empty in streaming mode).
        alpha = self.sketch_alpha
        self._steps_n = 0
        self._active_total = 0
        self._stall_total = 0.0
        self._kv_peak_occ = 0.0
        self._kv_occ_total = 0.0
        self._kv_peak_blocks = 0
        self._prefill_priced = 0
        self._step_sketch = QuantileSketch(alpha=alpha)
        self._kv_windows = WindowedSketch(
            window_s=1e-9, max_windows=64, alpha=alpha
        )
        self._sessions_n = 0
        self._sessions_by_class: Counter = Counter()
        self._rejected_n = 0
        self._rejected_by_class: Counter = Counter()
        self._tokens_total = 0
        self._tpot_span = 0.0
        self._tpot_tokens = 0
        self._last_finish = 0.0
        self._ttft_sketch = QuantileSketch(alpha=alpha)
        self._ttft_total = 0.0
        self._ttft_sq_total = 0.0
        self._ttft_by_class: Dict[int, QuantileSketch] = {}
        self._e2e_sketch = QuantileSketch(alpha=alpha)
        self._attribution = SpaceSavingTopK(16)
        self._prefix_lookups = 0
        self._prefix_hits = 0
        self._prefix_saved = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_step(
        self,
        t: float,
        model: str,
        context_lens: Sequence[int],
        prefill_chunks: Sequence[Tuple[int, int]],
        active: int,
        step_s: float,
        kv_blocks: int,
        kv_occupancy: float,
        stall_s: float = 0.0,
    ) -> int:
        """Record one engine step; returns its index in ``steps`` (the
        id the scheduler stamps on the step's phase spans, closing the
        span→telemetry causal join the critical-path analysis uses)."""
        if self.streaming:
            index = self._steps_n
            self._steps_n += 1
            self._active_total += int(active)
            self._stall_total += float(stall_s)
            occupancy = float(kv_occupancy)
            if occupancy > self._kv_peak_occ:
                self._kv_peak_occ = occupancy
            self._kv_occ_total += occupancy
            blocks = int(kv_blocks)
            if blocks > self._kv_peak_blocks:
                self._kv_peak_blocks = blocks
            for _, chunk_len in prefill_chunks:
                self._prefill_priced += int(chunk_len)
            self._step_sketch.add(float(step_s))
            self._kv_windows.add(t, occupancy)
            self._m_steps.labels(model).inc()
            # Last-value only: the (t, value) gauge series would grow
            # with the step count, defeating the memory bound.
            self._m_kv_occupancy.labels().set(kv_occupancy)
            self._m_batch_active.labels().set(active)
            if stall_s > 0.0:
                self._m_stall.labels().inc(stall_s)
            return index
        index = len(self.steps)
        self.steps.append(
            _StepRecord(
                t,
                model,
                len(context_lens),
                active,
                tuple(context_lens),
                tuple((int(c), int(q)) for c, q in prefill_chunks),
                step_s,
                kv_blocks,
                kv_occupancy,
                stall_s=stall_s,
            )
        )
        self._m_steps.labels(model).inc()
        self._m_kv_occupancy.labels().set(kv_occupancy, t=t)
        self._m_batch_active.labels().set(active, t=t)
        if stall_s > 0.0:
            self._m_stall.labels().inc(stall_s)
        return index

    def record_session(self, session) -> None:
        if self.streaming:
            self._fold_session(session)
        else:
            self.sessions.append(session)
        self._m_sessions.labels(session.model, session.priority).inc()
        self._m_tokens.labels(session.model).inc(session.tokens_generated)
        if session.ttft is not None:
            self._m_ttft.observe(session.ttft, str(session.priority))

    def _fold_session(self, session) -> None:
        """Streaming-mode completion: fold, never retain the session."""
        priority = int(session.priority)
        self._sessions_n += 1
        self._sessions_by_class[priority] += 1
        tokens = int(session.tokens_generated)
        self._tokens_total += tokens
        fin = session.finish_time
        if fin is not None:
            fin = float(fin)
            if fin > self._last_finish:
                self._last_finish = fin
            self._e2e_sketch.add(fin - float(session.arrival_time))
        ttft = session.ttft
        if ttft is not None:
            ttft = float(ttft)
            self._ttft_sketch.add(ttft)
            self._ttft_total += ttft
            self._ttft_sq_total += ttft * ttft
            by_class = self._ttft_by_class.get(priority)
            if by_class is None:
                by_class = self._ttft_by_class[priority] = QuantileSketch(
                    alpha=self.sketch_alpha
                )
            by_class.add(ttft)
        tpot = session.tpot
        if tpot is not None:
            lanes = session.decode_len - 1
            self._tpot_span += float(tpot) * lanes
            self._tpot_tokens += lanes
        self._attribution.add(
            f"{session.model}/class{priority}", weight=max(1, tokens)
        )

    def record_rejection(self, session) -> None:
        if self.streaming:
            self._rejected_n += 1
            self._rejected_by_class[int(session.priority)] += 1
        else:
            self.rejected.append(session)
        self._m_rejected.labels(session.priority).inc()

    def record_preemption(self, session) -> None:
        self.preemptions += 1
        self.preemptions_by_class[session.priority] += 1
        self._m_preemptions.labels(session.priority).inc()

    def record_prefix(self, prompt_tokens: int, cached_tokens: int) -> None:
        """One admission's prefix-cache outcome (lookups only — an
        engine with caching disabled records nothing here)."""
        if self.streaming:
            self._prefix_lookups += 1
            if cached_tokens > 0:
                self._prefix_hits += 1
            self._prefix_saved += int(cached_tokens)
            return
        self.prefix_records.append(_PrefixRecord(prompt_tokens, cached_tokens))

    def record_fault(self, kind: str) -> None:
        """One injected fault event applied to the engine."""
        self.faults_injected[kind] += 1
        self._m_faults.labels(kind).inc()

    def record_transient(self, uncorrectable: bool, tokens_retried: int = 0) -> None:
        """One RRNS-detected transient compute fault.

        Corrected faults cost nothing (the redundant residues absorb
        them); uncorrectable ones poison the affected session's step
        output, which is discarded and recomputed — ``tokens_retried``
        counts that discarded work.
        """
        if uncorrectable:
            self.faults_uncorrectable += 1
            self.tokens_retried += tokens_retried
            self._m_transients.labels("uncorrectable").inc()
        else:
            self.faults_corrected += 1
            self._m_transients.labels("corrected").inc()

    def record_recovery(self, session, reprefill_tokens: int) -> None:
        """A session rescued off a dead replica (or lost KV) and
        requeued; ``reprefill_tokens`` is the context it must rebuild."""
        self.sessions_recovered += 1
        self.recovery_reprefill_tokens += int(reprefill_tokens)
        self._m_recovered.labels().inc()

    def record_session_failure(self, session) -> None:
        """A session abandoned because recovery is disabled (or
        impossible) after its replica died."""
        self.sessions_failed += 1
        self._m_failed.labels().inc()

    def record_shed(self, session) -> None:
        """A waiting session shed to protect higher classes under
        capacity loss; also counts as a rejection for SLO purposes."""
        self.sessions_shed += 1
        if self.streaming:
            self._rejected_n += 1
            self._rejected_by_class[int(session.priority)] += 1
        else:
            self.rejected.append(session)
        self._m_rejected.labels(session.priority).inc()

    def record_kv_loss(self, blocks: int) -> None:
        self.kv_blocks_lost += int(blocks)
        self._m_kv_lost.labels().inc(int(blocks))

    def record_crash(self, worker_id: int) -> None:
        self.replica_crashes += 1
        self._m_crashes.labels().inc()

    def record_replacement(self, dead_worker_id: int, new_worker_id: int) -> None:
        self.replicas_replaced += 1
        self._m_replacements.labels().inc()

    def record_health_transition(self, transition: Dict) -> None:
        """One monitor transition (healthy→suspect→dead) with timing —
        the unavailability-window audit trail."""
        self.health_transitions.append(dict(transition))
        self._m_health.labels(transition["to"]).inc()

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def classes_seen(self) -> List[int]:
        if self.streaming:
            seen = set(self._sessions_by_class)
            seen.update(self._rejected_by_class)
            return sorted(seen)
        seen = {s.priority for s in self.sessions}
        seen.update(s.priority for s in self.rejected)
        return sorted(seen)

    def sessions_count(self) -> int:
        return self._sessions_n if self.streaming else len(self.sessions)

    def rejected_count(self) -> int:
        return self._rejected_n if self.streaming else len(self.rejected)

    def steps_count(self) -> int:
        return self._steps_n if self.streaming else len(self.steps)

    def ttfts(self, priority: Optional[int] = None) -> List[float]:
        if self.streaming:
            raise ValueError(
                "streaming telemetry keeps no per-session TTFT list; "
                "query the summary's sketched percentiles instead"
            )
        return [
            s.ttft
            for s in self.sessions
            if s.ttft is not None
            and (priority is None or s.priority == priority)
        ]

    def tokens_generated(self) -> int:
        if self.streaming:
            return self._tokens_total
        return sum(s.tokens_generated for s in self.sessions)

    def tokens_per_s(self, horizon_s: float) -> float:
        if horizon_s <= 0:
            return 0.0
        return self.tokens_generated() / horizon_s

    def makespan(self) -> float:
        if self.streaming:
            return self._last_finish
        if not self.sessions:
            return 0.0
        return max(s.finish_time for s in self.sessions)

    def mean_tpot(self) -> float:
        """Pooled time-per-output-token after the first, across sessions."""
        if self.streaming:
            if not self._tpot_tokens:
                return 0.0
            return self._tpot_span / self._tpot_tokens
        span = 0.0
        tokens = 0
        for s in self.sessions:
            if s.tpot is None:
                continue
            steps = s.decode_len - 1
            span += s.tpot * steps
            tokens += steps
        return span / tokens if tokens else 0.0

    def mean_batch_size(self) -> float:
        if self.streaming:
            if not self._steps_n:
                return 0.0
            return self._active_total / self._steps_n
        if not self.steps:
            return 0.0
        return sum(r.active for r in self.steps) / len(self.steps)

    def kv_stats(self) -> Dict[str, float]:
        if self.streaming:
            if not self._steps_n:
                return {
                    "peak_occupancy": 0.0,
                    "mean_occupancy": 0.0,
                    "peak_blocks": 0,
                }
            return {
                "peak_occupancy": self._kv_peak_occ,
                "mean_occupancy": self._kv_occ_total / self._steps_n,
                "peak_blocks": self._kv_peak_blocks,
            }
        if not self.steps:
            return {"peak_occupancy": 0.0, "mean_occupancy": 0.0, "peak_blocks": 0}
        occ = [r.kv_occupancy for r in self.steps]
        return {
            "peak_occupancy": float(max(occ)),
            "mean_occupancy": float(np.mean(occ)),
            "peak_blocks": max(r.kv_blocks for r in self.steps),
        }

    def prefill_tokens_priced(self) -> int:
        """Prompt/context tokens whose prefill GEMMs were actually
        scheduled (sum of every step's chunk lengths) — what the prefix
        cache shrinks relative to the tokens sessions *needed* resident."""
        if self.streaming:
            return self._prefill_priced
        return sum(q for r in self.steps for _, q in r.prefill_chunks)

    def prefix_stats(self) -> Dict[str, float]:
        """Shared-prefix cache effectiveness at the token level.

        ``prefill_tokens_saved`` counts context tokens served from cache
        at admission; ``cached_token_fraction`` is their share of all
        context tokens admissions needed resident (saved + priced);
        ``hit_rate`` is the fraction of cache lookups that reused at
        least one token.  Engines with caching disabled report zeros.
        """
        if self.streaming:
            saved = self._prefix_saved
            priced = self.prefill_tokens_priced()
            lookups = self._prefix_lookups
            return {
                "lookups": lookups,
                "hit_rate": (self._prefix_hits / lookups) if lookups else 0.0,
                "prefill_tokens_saved": saved,
                "prefill_tokens_priced": priced,
                "cached_token_fraction": (
                    saved / (saved + priced) if saved + priced else 0.0
                ),
            }
        saved = sum(r.cached_tokens for r in self.prefix_records)
        priced = self.prefill_tokens_priced()
        lookups = len(self.prefix_records)
        return {
            "lookups": lookups,
            "hit_rate": (
                sum(1 for r in self.prefix_records if r.cached_tokens > 0)
                / lookups
                if lookups
                else 0.0
            ),
            "prefill_tokens_saved": saved,
            "prefill_tokens_priced": priced,
            "cached_token_fraction": (
                saved / (saved + priced) if saved + priced else 0.0
            ),
        }

    def ttft_jitter(self) -> Dict[str, float]:
        """TTFT spread — what chunked prefill exists to bound.

        ``p99_minus_p50_s`` is the headline jitter number (tail latency
        over the typical first token); ``std_s`` the full-distribution
        spread.  Streaming mode derives the std from exact running sums
        and the jitter from sketched percentiles (within ``alpha``).
        """
        if self.streaming:
            n = self._ttft_sketch.count
            if not n:
                return {"std_s": 0.0, "p99_minus_p50_s": 0.0}
            mean = self._ttft_total / n
            variance = max(0.0, self._ttft_sq_total / n - mean * mean)
            return {
                "std_s": math.sqrt(variance),
                "p99_minus_p50_s": (
                    self._ttft_sketch.percentile(99.0)
                    - self._ttft_sketch.percentile(50.0)
                ),
            }
        ttfts = self.ttfts()
        if not ttfts:
            return {"std_s": 0.0, "p99_minus_p50_s": 0.0}
        return {
            "std_s": float(np.std(np.asarray(ttfts, dtype=np.float64))),
            "p99_minus_p50_s": percentile(ttfts, 99) - percentile(ttfts, 50),
        }

    def ttft_slo_attainment(
        self, slo_s: float, priority: Optional[int] = None
    ) -> float:
        """Fraction of sessions whose first token met ``slo_s``.

        Rejected sessions count as misses, mirroring request-level SLO
        accounting (shedding is a miss from the caller's side).

        Streaming mode answers from the TTFT sketch's CDF — exact up to
        bucket resolution at the threshold, i.e. only sessions whose
        TTFT is within relative ``alpha`` of ``slo_s`` itself can be
        counted on the wrong side.
        """
        if self.streaming:
            if priority is None:
                sketch = self._ttft_sketch
                shed = self._rejected_n
            else:
                sketch = self._ttft_by_class.get(int(priority))
                shed = self._rejected_by_class.get(int(priority), 0)
            n = sketch.count if sketch is not None else 0
            total = n + shed
            if total == 0:
                return 1.0
            met = sketch.cdf(slo_s) * n if n else 0.0
            return met / total
        ttfts = self.ttfts(priority=priority)
        shed = sum(
            1
            for s in self.rejected
            if priority is None or s.priority == priority
        )
        total = len(ttfts) + shed
        if total == 0:
            return 1.0
        met = sum(1 for v in ttfts if v <= slo_s + 1e-15)
        return met / total

    def stall_time(self) -> float:
        """Total wall time lost to degraded (slow) workers."""
        if self.streaming:
            return self._stall_total
        return float(sum(r.stall_s for r in self.steps))

    def unavailability_windows(self) -> List[Dict[str, float]]:
        """Per-worker fail→dead detection windows from the transitions."""
        fail_seen: Dict[int, Dict[str, float]] = {}
        windows: List[Dict[str, float]] = []
        for tr in self.health_transitions:
            wid = tr["worker_id"]
            if tr["to"] == "suspect" and wid not in fail_seen:
                fail_seen[wid] = {
                    "worker_id": wid,
                    "failed_at_s": tr["t"] - tr["silent_for_s"],
                    "suspected_at_s": tr["t"],
                }
            elif tr["to"] == "dead":
                win = fail_seen.pop(
                    wid,
                    {
                        "worker_id": wid,
                        "failed_at_s": tr["t"] - tr["silent_for_s"],
                        "suspected_at_s": tr["t"],
                    },
                )
                win["dead_at_s"] = tr["t"]
                win["detection_s"] = win["dead_at_s"] - win["failed_at_s"]
                windows.append(win)
        # Workers suspected but never declared dead (storm ended first).
        windows.extend(fail_seen.values())
        return windows

    def fault_stats(self) -> Dict[str, object]:
        """One dict aggregating the whole fault/recovery plane."""
        return {
            "injected": {k: int(v) for k, v in sorted(self.faults_injected.items())},
            "transient_corrected": self.faults_corrected,
            "transient_uncorrectable": self.faults_uncorrectable,
            "tokens_retried": self.tokens_retried,
            "sessions_recovered": self.sessions_recovered,
            "sessions_failed": self.sessions_failed,
            "sessions_shed": self.sessions_shed,
            "recovery_reprefill_tokens": self.recovery_reprefill_tokens,
            "kv_blocks_lost": self.kv_blocks_lost,
            "replica_crashes": self.replica_crashes,
            "replicas_replaced": self.replicas_replaced,
            "health_transitions": len(self.health_transitions),
            "unavailability_windows": self.unavailability_windows(),
            "stall_s": self.stall_time(),
        }

    def cross_check_decode_model(
        self, step_fn: Callable[[str, Sequence[int], Sequence[int]], float]
    ) -> Dict[str, float]:
        """Re-derive every step's cost from the analytic decode model.

        ``step_fn(model, context_lens, prefill_chunks)`` must reproduce
        each recorded ``step_s`` exactly — including steps that carry
        chunked or prefix-trimmed prefills (each ``(resident_context,
        chunk_len)`` pair reprices independently) — or the engine's
        dispatch accounting has drifted from ``arch.inference``.
        """
        if not self.steps:
            return {"max_abs_error_s": 0.0, "checked_steps": 0}
        errs = [
            abs(r.step_s - step_fn(r.model, r.context_lens, r.prefill_chunks))
            for r in self.steps
        ]
        return {
            "max_abs_error_s": float(max(errs)),
            "checked_steps": len(self.steps),
        }

    # ------------------------------------------------------------------
    def _sketched_latency_summary(self, sketch: QuantileSketch) -> Dict[str, float]:
        """The :func:`summarize_latencies` shape, from a sketch (p50/p95/
        p99 within ``alpha``; mean and max exact)."""
        if not sketch.count:
            return {
                "p50_s": 0.0,
                "p95_s": 0.0,
                "p99_s": 0.0,
                "mean_s": 0.0,
                "max_s": 0.0,
            }
        return {
            "p50_s": sketch.percentile(50.0),
            "p95_s": sketch.percentile(95.0),
            "p99_s": sketch.percentile(99.0),
            "mean_s": sketch.sum / sketch.count,
            "max_s": sketch.max,
        }

    def summary(
        self, horizon_s: float, ttft_slo_s: Optional[float] = None
    ) -> Dict[str, object]:
        """The numbers an LLM-serving dashboard pages on."""
        out: Dict[str, object] = {
            "sessions": self.sessions_count(),
            "rejected": self.rejected_count(),
            "tokens": self.tokens_generated(),
            "tokens_per_s": self.tokens_per_s(horizon_s),
            "ttft": (
                self._sketched_latency_summary(self._ttft_sketch)
                if self.streaming
                else summarize_latencies(self.ttfts())
            ),
            "ttft_jitter": self.ttft_jitter(),
            "tpot_s": self.mean_tpot(),
            "steps": self.steps_count(),
            "mean_batch_size": self.mean_batch_size(),
            "preemptions": self.preemptions,
            "kv": self.kv_stats(),
            "prefix": self.prefix_stats(),
        }
        if self.streaming:
            out["streaming"] = {
                "alpha": self.sketch_alpha,
                "e2e": self._sketched_latency_summary(self._e2e_sketch),
                "step": self._sketched_latency_summary(self._step_sketch),
                "sketch_bytes": (
                    self._ttft_sketch.byte_size()
                    + self._e2e_sketch.byte_size()
                    + self._step_sketch.byte_size()
                    + sum(
                        self._ttft_by_class[p].byte_size()
                        for p in self._ttft_by_class
                    )
                ),
                "attribution_topk": self._attribution.to_dict(),
                "kv_occupancy_windows": {
                    "windows": len(self._kv_windows),
                    "window_s": self._kv_windows.window_s,
                    "compactions": self._kv_windows.compactions,
                    "samples": self._kv_windows.total_count(),
                },
            }
        if (
            self.faults_injected
            or self.sessions_recovered
            or self.sessions_failed
            or self.replica_crashes
            or self.health_transitions
        ):
            out["faults"] = self.fault_stats()
        if ttft_slo_s is not None:
            out["ttft_slo_s"] = ttft_slo_s
            out["ttft_slo_attainment"] = self.ttft_slo_attainment(ttft_slo_s)
            classes = self.classes_seen()
            if classes != [0]:
                out["per_class"] = {
                    str(p): {
                        "sessions": (
                            self._sessions_by_class.get(p, 0)
                            if self.streaming
                            else sum(
                                1 for s in self.sessions if s.priority == p
                            )
                        ),
                        "rejected": (
                            self._rejected_by_class.get(p, 0)
                            if self.streaming
                            else sum(
                                1 for s in self.rejected if s.priority == p
                            )
                        ),
                        "preemptions": self.preemptions_by_class.get(p, 0),
                        "ttft_p99_s": self._class_ttft_p99(p),
                        "ttft_slo_attainment": self.ttft_slo_attainment(
                            ttft_slo_s, priority=p
                        ),
                    }
                    for p in classes
                }
        return out

    def _class_ttft_p99(self, priority: int) -> float:
        if self.streaming:
            sketch = self._ttft_by_class.get(int(priority))
            if sketch is None or not sketch.count:
                return 0.0
            return sketch.percentile(99.0)
        return percentile(self.ttfts(priority=priority), 99)
