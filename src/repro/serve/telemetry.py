"""Serving telemetry: latency percentiles, throughput, batching stats.

Collects per-request records and runtime samples during a scenario and
reduces them to the numbers an SRE would page on: p50/p95/p99 latency,
sustained throughput, batch-size histogram, queue depth over time,
admission rejections, and programmed-cache hit rate.

Because service times come from the analytic hardware model
(:mod:`repro.arch.latency` via :func:`repro.arch.inference.per_request_latency`),
the report can *cross-check* itself: recomputing each dispatched batch's
service latency from its (model, batch-size) pair must reproduce the
recorded busy intervals exactly.  ``slo_attainment`` then reads as
"fraction of admitted requests that met their latency target on the
simulated hardware"; with priority-classed traffic the summary splits it
per class (``per_class``: completions, sheds — rejections *and*
evictions — attainment and p99 per priority), and the windowed
:meth:`Telemetry.latencies` filter is what the replica autoscaler's
control loop reads.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .request import InferenceRequest, RequestStatus

__all__ = ["Telemetry", "percentile", "summarize_latencies"]


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile à la np.percentile (q in [0, 100]);
    0.0 for empty input."""
    if not len(values):
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


def summarize_latencies(latencies: Sequence[float]) -> Dict[str, float]:
    return {
        "p50_s": percentile(latencies, 50),
        "p95_s": percentile(latencies, 95),
        "p99_s": percentile(latencies, 99),
        "mean_s": float(np.mean(latencies)) if len(latencies) else 0.0,
        "max_s": float(np.max(latencies)) if len(latencies) else 0.0,
    }


@dataclass
class _BatchRecord:
    model: str
    batch_size: int
    worker_id: int
    dispatch_time: float
    service_s: float


class Telemetry:
    """Accumulates serving events; reduces to a summary dict."""

    def __init__(self):
        self.completed: List[InferenceRequest] = []
        self.rejected: int = 0
        self.rejected_by_class: Counter = Counter()
        self.evicted: int = 0
        self.batches: List[_BatchRecord] = []
        self._depth_samples: List[Tuple[float, int]] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_rejection(self, request: InferenceRequest) -> None:
        """A shed request — rejected at admission or evicted by a higher
        class; both count against its class's SLO attainment."""
        self.rejected += 1
        self.rejected_by_class[request.priority] += 1
        if request.status == RequestStatus.EVICTED:
            self.evicted += 1

    def record_batch(
        self,
        model: str,
        requests: Sequence[InferenceRequest],
        worker_id: int,
        dispatch_time: float,
        service_s: float,
    ) -> None:
        self.batches.append(
            _BatchRecord(model, len(requests), worker_id, dispatch_time, service_s)
        )

    def record_completion(self, request: InferenceRequest) -> None:
        self.completed.append(request)

    def sample_queue_depth(self, now: float, depth: int) -> None:
        self._depth_samples.append((now, depth))

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def latencies(
        self,
        model: Optional[str] = None,
        priority: Optional[int] = None,
        since: Optional[float] = None,
    ) -> List[float]:
        """Total latencies of completed requests, optionally filtered by
        model, priority class, and completion time (``since`` — the
        autoscaler's sliding window).

        Completions are recorded in nondecreasing ``completion_time``
        order (the event loop pops worker-free events in time order), so
        the ``since`` window starts at a bisected index instead of
        scanning the whole history — the autoscaler queries this every
        control tick.
        """
        start = 0
        if since is not None:
            start = bisect_left(
                self.completed, since, key=lambda r: r.completion_time
            )
        return [
            r.total_latency
            for r in self.completed[start:]
            if r.total_latency is not None
            and (model is None or r.model == model)
            and (priority is None or r.priority == priority)
        ]

    def classes_seen(self) -> List[int]:
        """Priority classes observed across completions and rejections."""
        seen = {r.priority for r in self.completed}
        seen.update(self.rejected_by_class)
        return sorted(seen)

    def batch_size_histogram(self) -> Dict[int, int]:
        return dict(sorted(Counter(b.batch_size for b in self.batches).items()))

    def mean_batch_size(self) -> float:
        if not self.batches:
            return 0.0
        total = sum(b.batch_size for b in self.batches)
        return total / len(self.batches)

    def throughput(self, horizon_s: float) -> float:
        """Completed requests per second over ``horizon_s``."""
        if horizon_s <= 0:
            return 0.0
        return len(self.completed) / horizon_s

    def makespan(self) -> float:
        """Time of the last completion (simulated seconds)."""
        if not self.completed:
            return 0.0
        return max(r.completion_time for r in self.completed)

    def queue_depth_stats(self) -> Dict[str, float]:
        if not self._depth_samples:
            return {"mean": 0.0, "max": 0.0}
        depths = np.array([d for _, d in self._depth_samples], dtype=np.float64)
        return {"mean": float(depths.mean()), "max": float(depths.max())}

    def slo_attainment(self, slo_s: float) -> float:
        """Fraction of *admitted* requests completing within ``slo_s``.

        Rejected requests count against attainment — shedding load is a
        miss from the caller's point of view.
        """
        lat = self.latencies()
        total = len(lat) + self.rejected
        if total == 0:
            return 1.0
        met = sum(1 for v in lat if v <= slo_s + 1e-15)
        return met / total

    def slo_attainment_by_class(self, slo_s: float) -> Dict[int, float]:
        """Per-priority-class SLO attainment (rejections count as misses)."""
        out: Dict[int, float] = {}
        for p in self.classes_seen():
            lat = self.latencies(priority=p)
            total = len(lat) + self.rejected_by_class.get(p, 0)
            if total == 0:
                out[p] = 1.0
                continue
            met = sum(1 for v in lat if v <= slo_s + 1e-15)
            out[p] = met / total
        return out

    def cross_check_service_model(
        self, service_fn: Callable[[str, int], float]
    ) -> Dict[str, float]:
        """Verify recorded busy intervals against the analytic model.

        ``service_fn(model, batch_size)`` is the same analytic latency
        the runtime used at dispatch; any drift between recorded and
        recomputed service times means the telemetry and the
        ``arch.inference``/``arch.latency`` accounting have diverged.
        """
        if not self.batches:
            return {"max_abs_error_s": 0.0, "checked_batches": 0}
        errs = [
            abs(b.service_s - service_fn(b.model, b.batch_size))
            for b in self.batches
        ]
        return {
            "max_abs_error_s": float(max(errs)),
            "checked_batches": len(self.batches),
        }

    # ------------------------------------------------------------------
    def summary(
        self,
        horizon_s: float,
        slo_s: Optional[float] = None,
        cache_stats: Optional[Dict[str, float]] = None,
    ) -> Dict[str, object]:
        """One dict with everything the benchmarks report."""
        lat = self.latencies()
        out: Dict[str, object] = {
            "completed": len(self.completed),
            "rejected": self.rejected,
            "evicted": self.evicted,
            "throughput_rps": self.throughput(horizon_s),
            "latency": summarize_latencies(lat),
            "mean_batch_size": self.mean_batch_size(),
            "batch_size_histogram": {
                str(k): v for k, v in self.batch_size_histogram().items()
            },
            "queue_depth": self.queue_depth_stats(),
        }
        if slo_s is not None:
            out["slo_s"] = slo_s
            out["slo_attainment"] = self.slo_attainment(slo_s)
            # Single-class default-priority deployments keep the old
            # summary shape; any other class present adds the breakdown.
            classes = self.classes_seen()
            if classes != [0]:
                by_class = self.slo_attainment_by_class(slo_s)
                out["per_class"] = {
                    str(p): {
                        "completed": sum(
                            1 for r in self.completed if r.priority == p
                        ),
                        "rejected": self.rejected_by_class.get(p, 0),
                        "slo_attainment": by_class[p],
                        "p99_s": percentile(self.latencies(priority=p), 99),
                    }
                    for p in classes
                }
        if cache_stats is not None:
            out["programmed_cache"] = cache_stats
        return out
