"""Photonic inference serving runtime.

Production-shaped serving on top of the paper's accelerator model:
bounded admission with class-aware load shedding, priority-ordered
dynamic micro-batching into weight-programmed batched GEMM streams,
executor pools sharding models (and replicas of hot models) across
photonic cores with SLO-driven replica autoscaling, synthetic traffic
scenarios on a deterministic simulated clock, and telemetry (including
per-priority-class SLO attainment) cross-checked against the analytic
``repro.arch`` latency model.
"""

from .batcher import BatchPolicy, MicroBatcher
from .clock import SimulatedClock, time_at_or_before, time_tolerance
from .pool import ExecutorPool, PoolWorker, ROUTING_POLICIES
from .request import AdmissionQueue, InferenceRequest, Priority, RequestStatus
from .runtime import (
    Autoscaler,
    AutoscalerPolicy,
    ModelProfile,
    ServiceModel,
    ServingRuntime,
    infer_input_dim,
    model_layer_shapes,
)
from .telemetry import Telemetry, percentile, summarize_latencies
from .traffic import (
    SCENARIO_NAMES,
    Scenario,
    bursty_scenario,
    diurnal_scenario,
    multi_tenant_priority_scenario,
    multi_tenant_scenario,
    poisson_scenario,
    priority_scenario,
)

__all__ = [
    "AdmissionQueue",
    "Autoscaler",
    "AutoscalerPolicy",
    "BatchPolicy",
    "ExecutorPool",
    "InferenceRequest",
    "MicroBatcher",
    "ModelProfile",
    "PoolWorker",
    "Priority",
    "RequestStatus",
    "ROUTING_POLICIES",
    "SCENARIO_NAMES",
    "Scenario",
    "ServiceModel",
    "ServingRuntime",
    "SimulatedClock",
    "Telemetry",
    "bursty_scenario",
    "diurnal_scenario",
    "infer_input_dim",
    "model_layer_shapes",
    "multi_tenant_priority_scenario",
    "multi_tenant_scenario",
    "percentile",
    "poisson_scenario",
    "priority_scenario",
    "summarize_latencies",
    "time_at_or_before",
    "time_tolerance",
]
