"""Photonic inference serving runtime.

Production-shaped serving on top of the paper's accelerator model:
bounded admission, dynamic micro-batching into weight-programmed batched
GEMM streams, executor pools sharding models (and replicas of hot
models) across photonic cores, synthetic traffic scenarios on a
deterministic simulated clock, and telemetry cross-checked against the
analytic ``repro.arch`` latency model.
"""

from .batcher import BatchPolicy, MicroBatcher
from .clock import SimulatedClock
from .pool import ExecutorPool, PoolWorker, ROUTING_POLICIES
from .request import AdmissionQueue, InferenceRequest, RequestStatus
from .runtime import (
    ModelProfile,
    ServiceModel,
    ServingRuntime,
    infer_input_dim,
    model_layer_shapes,
)
from .telemetry import Telemetry, percentile, summarize_latencies
from .traffic import (
    SCENARIO_NAMES,
    Scenario,
    bursty_scenario,
    diurnal_scenario,
    multi_tenant_scenario,
    poisson_scenario,
)

__all__ = [
    "AdmissionQueue",
    "BatchPolicy",
    "ExecutorPool",
    "InferenceRequest",
    "MicroBatcher",
    "ModelProfile",
    "PoolWorker",
    "RequestStatus",
    "ROUTING_POLICIES",
    "SCENARIO_NAMES",
    "Scenario",
    "ServiceModel",
    "ServingRuntime",
    "SimulatedClock",
    "Telemetry",
    "bursty_scenario",
    "diurnal_scenario",
    "infer_input_dim",
    "model_layer_shapes",
    "multi_tenant_scenario",
    "percentile",
    "poisson_scenario",
    "summarize_latencies",
]
