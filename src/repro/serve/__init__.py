"""Photonic inference serving runtime.

Production-shaped serving on top of the paper's accelerator model:
bounded admission with class-aware load shedding, priority-ordered
dynamic micro-batching into weight-programmed batched GEMM streams,
executor pools sharding models (and replicas of hot models) across
photonic cores with SLO-driven replica autoscaling, synthetic traffic
scenarios on a deterministic simulated clock, and telemetry (including
per-priority-class SLO attainment) cross-checked against the analytic
``repro.arch`` latency model.

Architecture
------------
Two execution models share the same substrate (clock, traffic, pool,
telemetry cross-check discipline):

* **Request-level** (:class:`ServingRuntime`) — one-shot forward passes.
  Arrivals enter the bounded :class:`AdmissionQueue` (per model *and*
  priority class, shedding the lowest class first), the
  :class:`MicroBatcher` coalesces compatible requests on size/deadline
  triggers, and each micro-batch dispatches through an
  :class:`ExecutorPool` replica as one batched GEMM stream, with the
  :class:`Autoscaler` growing/draining replica sets against windowed
  p99-vs-SLO.

* **Token-level** (:mod:`repro.serve.engine`) — autoregressive decode,
  where a request is a :class:`~repro.serve.engine.DecodeSession` whose
  KV state grows with every generated token::

      decode_scenario / shared_prefix / fewshot_pool / multiturn
                              │ (per priority class waiting queues)
                              ▼ admit (KV blocks permitting)
      TokenServingEngine ── re-forms the running batch EVERY step:
          │    admit / retire / preempt-low-class-under-KV-pressure
          │
          ├─> RadixPrefixIndex  radix tree over chained token-block
          │        hashes: admission attaches the prompt's cached head
          │        (copy-on-write inside a divergent block), LRU evicts
          │        unreferenced cached prefixes, leaves first
          ├─> KVBlockManager   refcounted block tables, budget derived
          │        from MemorySystemModel / MirageConfig; sessions
          │        sharing a prompt head pin the SAME physical blocks;
          │        preemption decrefs (never frees shared state), so a
          │        resumed session re-attaches its still-cached prefix
          │        and re-prefills only the evicted private suffix
          ├─> chunked prefill  the UNCACHED suffix is sliced into
          │        prefill_chunk_tokens chunks interleaved with running
          │        decode steps (bounding TTFT jitter), each priced by
          │        arch.inference.chunked_prefill_latency over the
          │        resident context; a fully cached prompt costs zero
          │        GEMM time but still one scheduling step
          ▼
      ExecutorPool worker ── one batched GEMM stream per decode step
          (functional surrogate recurrence: per-token outputs bit-exact
          vs batch-1), clock advanced by arch.inference's
          decode_step_latency / chunked_prefill_latency; EngineTelemetry
          scores TTFT (+jitter), TPOT, tokens/s, KV occupancy, prefix
          hit rate / cached-token fraction / prefill tokens saved, and
          per-class TTFT SLO.

The engine is why mixed-length decode traffic keeps the accelerator
busy: request-level batching would pad every batch to its slowest
member and pin worst-case KV for the whole ride (measured as the
``continuous``-vs-``static`` gap in ``benchmarks/bench_continuous.py``),
and why fleets sharing a system prompt don't re-prefill it per session
(the ``bench_prefix.py`` prefill-token-reduction and TTFT-p99 gates).

Fault plane (:mod:`repro.serve.faults`)
---------------------------------------
Both execution models replay deterministic :class:`FaultPlan`\\ s — a
sorted, seeded schedule of :class:`FaultEvent`\\ s — against the same
simulated clock::

    FaultPlan ── replica crashes / stuck workers   (worker kinds)
        │        degraded (slow) workers
        │        RRNS transient compute faults      (session kinds,
        │        KV-block loss                       engine only)
        ▼ FaultInjector.due(now)  — fires each event exactly once
    ExecutorPool health plane: ground truth (``responsive``) vs the
        *detected* state (``health``), advanced by FleetMonitor's
        heartbeat sweeps per HealthPolicy — healthy → suspect → dead;
        detection latency is real simulated time lost, not hindsight
        ▼ recovery
    request-level: in-flight work on the failed worker is stranded,
        hedged back to the queue head at *suspect*, and the worker is
        replaced at *dead* (RetryPolicy: per-request deadlines, retry
        budgets); the replacement pays the weight-reprogram charge.
    token-level: sessions are *homed* to a replica (KV locality);
        sessions homed on a dead replica are preempted, their KV freed,
        and they resume elsewhere re-prefilling only the suffix the
        shared-prefix cache cannot supply (EngineConfig.recovery;
        ``max_waiting`` sheds the lowest class under capacity loss).
        Uncorrectable RRNS verdicts (rates from
        ``repro.core.rrns_fault_rates``) void a step's commit for the
        victim session and recompute it bit-identically next step.

``benchmarks/bench_resilience.py`` gates this end to end: a scripted
storm (two replicas killed mid-ramp plus an RRNS transient burst) must
keep goodput within 0.9x of fault-free, interactive TTFT SLO
attainment >= 0.95, decode outputs bit-exact versus the fault-free
run, and KV refcounts balanced at drain.

Observability plane (:mod:`repro.serve.observability`)
------------------------------------------------------
One :class:`Observability` instance passed to either execution model
wires the whole plane through pool, batcher, monitor and telemetry::

    Observability ──┬─ Tracer           span-based tracing on the
                    │     simulated clock: per-session/request phase
                    │     timelines (enqueue → queue_wait → admit →
                    │     prefill/decode → preempt/stall/recover →
                    │     retire), pool dispatch/reprogram spans,
                    │     crash/replace + health-transition instants,
                    │     autoscaler decisions with windowed-p99
                    │     evidence; queryable in memory (gap-free
                    │     timeline checks with exact float boundaries)
                    │     and exportable as Chrome trace-event JSON
                    │     (Perfetto-loadable)
                    ├─ MetricsRegistry  typed counters/gauges/histograms
                    │     with label sets; Telemetry/EngineTelemetry
                    │     record through it; lossless Prometheus text
                    │     export (parse(render()) == samples() exactly)
                    │     and streaming (t, value) gauge series
                    ├─ HardwareAttributionProfiler  splits every
                    │     recorded busy interval into the analytic
                    │     model's reprogram/stream/attention components
                    │     (flame-graph rollups); the serving
                    │     cross-checks live inside it as bit-exactness
                    │     assertions
                    └─ SLOTracker       multi-window error-budget
                          burn-rate monitors per class/tenant, surfaced
                          by (not acted on by) the autoscaler

An **analysis layer** sits on top of the recording plane — pure
functions of a finished run, never touched on the hot path::

    Tracer + sessions ──> session_breakdown / fleet_rollup
        per-session phase decompositions (queue_wait / dispatch_wait /
        prefill / decode / stall) whose exact-rational phase sums
        telescope to the enqueue→retire interval *bit-exactly*; fleet
        rollups attribute TTFT/E2E p50/p99 to phases and tag worst-k
        blocking sessions per class with deterministic MAD outliers
    Observability ──> export_run / diff_runs / render_diff
        a run snapshot as plain JSON (sorted keys: seeded replays are
        byte-identical) and a leaf-by-leaf comparison engine;
        ``python -m repro.serve.observability.diff a.json b.json``
        exits non-zero on regressions, so replay determinism and
        perf drift are CI-checkable
    everything ──> build_flight_report / report_to_markdown
        the one-stop deterministic post-run artifact: config, trace
        volume, critical-path rollup, bit-exact hardware attribution,
        SLO attainment — as JSON and markdown

A **bounded-memory streaming layer** keeps observability cost fixed
while traffic scales (the path to million-session benches)::

    QuantileSketch      deterministic DDSketch-style log-bucketed
        quantiles with provable relative error alpha, exact count/sum,
        lossless associative merge, canonical serialization; histograms
        take ``sketch_alpha=...`` to use it as their backend while
        still rendering valid round-trippable Prometheus text
    TailSampler         Dapper-style tail-based trace retention: full
        span timelines survive only for faulted/stalled, SLO-violating
        and MAD-outlier sessions plus a deterministic 1-in-N head
        sample (session-id hash); every terminal session's phase
        durations fold into sketches first, so population quantiles
        stay answerable within alpha after the spans are gone
    SpaceSavingTopK / WindowedSketch / ByteBudgetRing
        fixed-budget heavy-hitter attribution, zoomable windowed
        sketch series, and byte-budgeted exemplar rings;
        ``EngineTelemetry(streaming=True)`` (or
        ``Observability(streaming=True)``) runs the token-engine
        telemetry entirely on these — O(1) memory per event

``benchmarks/bench_observability.py`` gates the plane on a replayed
fault storm: gap-free span timelines for every completed session,
attribution equal to recorded busy time bit-for-bit, exact Prometheus
round-trip, byte-identical repeat-run exports, bounded tracing
overhead, per-session critical-path sums bit-exact against the
enqueue→retire interval, self-diff of two seeded replays reporting
zero deltas (CLI exit 0; perturbed config exit 1), and bounded
analysis overhead.  ``benchmarks/bench_obs_scale.py`` gates the
streaming layer: sketched quantiles within the declared alpha of exact
nearest-rank values, retained records and sketch bytes under fixed
budgets independent of session count, 100% full-fidelity retention of
faulted/SLO-violating sessions, and byte-identical seeded replays.
"""

from .batcher import BatchPolicy, MicroBatcher
from .clock import SimulatedClock, time_at_or_before, time_tolerance
from .engine import (
    DecodeModelProfile,
    DecodeServiceModel,
    DecodeSession,
    EngineConfig,
    KVBlockManager,
    RadixPrefixIndex,
    TokenServingEngine,
    build_sessions,
    chain_block_hashes,
    next_token_input,
    sequential_decode_outputs,
)
from .faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FleetMonitor,
    HealthPolicy,
    WorkerHealth,
)
from .observability import (
    BurnRateMonitor,
    BurnWindow,
    ByteBudgetRing,
    HardwareAttributionProfiler,
    MetricsRegistry,
    Observability,
    QuantileSketch,
    SLOSpec,
    SLOTracker,
    SpaceSavingTopK,
    TailSampler,
    TailSamplingPolicy,
    Tracer,
    WindowedSketch,
    build_flight_report,
    default_windows,
    diff_runs,
    export_run,
    fleet_rollup,
    parse_prometheus_text,
    render_diff,
    report_to_markdown,
    session_breakdown,
)
from .pool import ExecutorPool, PoolWorker, ROUTING_POLICIES
from .request import AdmissionQueue, InferenceRequest, Priority, RequestStatus
from .runtime import (
    Autoscaler,
    AutoscalerPolicy,
    ModelProfile,
    RetryPolicy,
    ServiceModel,
    ServingRuntime,
    infer_input_dim,
    model_layer_shapes,
)
from .telemetry import EngineTelemetry, Telemetry, percentile, summarize_latencies
from .traffic import (
    SCENARIO_NAMES,
    Scenario,
    bursty_scenario,
    decode_scenario,
    diurnal_scenario,
    fewshot_pool_scenario,
    geometric_lengths,
    lognormal_lengths,
    multi_tenant_priority_scenario,
    multi_tenant_scenario,
    multiturn_scenario,
    poisson_scenario,
    priority_scenario,
    shared_prefix_scenario,
)

__all__ = [
    "AdmissionQueue",
    "Autoscaler",
    "AutoscalerPolicy",
    "BatchPolicy",
    "BurnRateMonitor",
    "BurnWindow",
    "ByteBudgetRing",
    "DecodeModelProfile",
    "DecodeServiceModel",
    "DecodeSession",
    "EngineConfig",
    "EngineTelemetry",
    "ExecutorPool",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FleetMonitor",
    "HardwareAttributionProfiler",
    "HealthPolicy",
    "InferenceRequest",
    "KVBlockManager",
    "MetricsRegistry",
    "MicroBatcher",
    "ModelProfile",
    "Observability",
    "PoolWorker",
    "Priority",
    "QuantileSketch",
    "RadixPrefixIndex",
    "RequestStatus",
    "RetryPolicy",
    "ROUTING_POLICIES",
    "SCENARIO_NAMES",
    "SLOSpec",
    "SLOTracker",
    "Scenario",
    "ServiceModel",
    "ServingRuntime",
    "SimulatedClock",
    "SpaceSavingTopK",
    "TailSampler",
    "TailSamplingPolicy",
    "Telemetry",
    "TokenServingEngine",
    "Tracer",
    "WindowedSketch",
    "WorkerHealth",
    "build_flight_report",
    "build_sessions",
    "bursty_scenario",
    "chain_block_hashes",
    "decode_scenario",
    "diff_runs",
    "default_windows",
    "diurnal_scenario",
    "export_run",
    "fewshot_pool_scenario",
    "fleet_rollup",
    "geometric_lengths",
    "infer_input_dim",
    "lognormal_lengths",
    "model_layer_shapes",
    "multi_tenant_priority_scenario",
    "multi_tenant_scenario",
    "multiturn_scenario",
    "next_token_input",
    "parse_prometheus_text",
    "percentile",
    "poisson_scenario",
    "priority_scenario",
    "render_diff",
    "report_to_markdown",
    "sequential_decode_outputs",
    "session_breakdown",
    "shared_prefix_scenario",
    "summarize_latencies",
    "time_at_or_before",
    "time_tolerance",
]
