"""Executor pool: models sharded across multiple photonic cores.

Each :class:`PoolWorker` owns one :class:`~repro.core.PhotonicExecutor`
(and therefore one :class:`~repro.core.PhotonicRnsTensorCore` with its own
programmed-weight cache).  Models are *placed* on a subset of workers —
replicas of hot models spread load, cold models share cores — and
per-request routing among a model's free replicas is pluggable:

* ``round_robin`` — cycle through the model's free replicas;
* ``least_loaded`` — free replica with the least accumulated busy time;
* ``cache_affinity`` — prefer free replicas whose core has already
  programmed this model's weight tiles (maximises programmed-cache hits,
  falling back to least-loaded among cold replicas).

The pool executes micro-batches *functionally* (real batched GEMMs
through the photonic core model) while the runtime advances simulated
time with the analytic hardware latency — so outputs are real and cache
hit rates are measured, not modelled.

Replica sets are dynamic: :meth:`ExecutorPool.scale_to` grows or shrinks
a model's replica set at simulated time ``now``, charging cold additions
the weight-tile reprogramming latency (prewarm) and draining retired
workers before they leave the routing set — the hooks the runtime's
:class:`~repro.serve.runtime.Autoscaler` drives.

Workers are also *mortal*: :meth:`ExecutorPool.crash` marks one
unresponsive (its in-flight work is stranded and its KV state lost),
:meth:`ExecutorPool.slow` degrades its service rate for a window, and
the ``healthy → suspect → dead`` progression is driven externally by a
:class:`~repro.serve.faults.FleetMonitor` watching heartbeats on the
simulated clock.  Routing only ever considers *available* workers
(responsive and not declared dead); :meth:`ExecutorPool.replace_worker`
swaps a fresh core (new id, cold caches, reprogramming charged) into
every replica set the dead worker served, and :meth:`scale_to`'s
scale-down retires dead and suspect workers first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from ..core.pipeline import PhotonicExecutor
from ..nn.layers import Sequential
from .clock import time_at_or_before
from .request import InferenceRequest

__all__ = ["PoolWorker", "ExecutorPool", "ROUTING_POLICIES"]

ROUTING_POLICIES = ("round_robin", "least_loaded", "cache_affinity")


class PoolWorker:
    """One photonic core + executor with availability and load tracking."""

    def __init__(self, worker_id: int, executor: PhotonicExecutor):
        self.worker_id = worker_id
        self.executor = executor
        # Observability hook (set via ExecutorPool.set_tracer): when
        # present, every booked busy window emits a dispatch span on the
        # worker track of the simulated-clock trace.
        self.tracer = None
        self.busy_until = 0.0
        self.busy_time = 0.0
        self.batches_served = 0
        self.requests_served = 0
        self.tokens_served = 0
        self.models_programmed: Set[str] = set()
        # Health plane (see repro.serve.faults.FleetMonitor): ``health``
        # is the *detected* state the monitor advances; ``responsive``
        # is ground truth — a crashed worker stops responding long
        # before anyone declares it suspect or dead.
        self.health = "healthy"
        self.responsive = True
        self.fail_time: Optional[float] = None
        self.last_seen = 0.0
        self.slow_factor = 1.0
        self.slow_until = 0.0

    def is_free(self, now: float) -> bool:
        # Relative tolerance: an absolute epsilon (the old 1e-15) is below
        # double spacing once timestamps pass ~1 s, so a worker freed "at
        # exactly now" would compare busy forever at large simulated times.
        return time_at_or_before(self.busy_until, now)

    def is_available(self, now: float) -> bool:
        """Free *and* routable: responsive, not declared dead."""
        return self.responsive and self.health != "dead" and self.is_free(now)

    def service_scale(self, now: float) -> float:
        """Service-time multiplier at ``now`` (> 1 while degraded)."""
        return self.slow_factor if now < self.slow_until else 1.0

    def run_booking(
        self,
        model_name: str,
        batch: int,
        now: float,
        service_s: float,
        tokens: int = 0,
    ) -> None:
        """Book the busy window only (timing-only runs, no functional exec).

        ``tokens`` is the number of output tokens this busy window
        produced — 0 for one-shot request serving, the decode-batch size
        for an engine step.
        """
        self.busy_until = now + service_s
        self.busy_time += service_s
        self.batches_served += 1
        self.requests_served += batch
        self.tokens_served += tokens
        self.models_programmed.add(model_name)
        if self.tracer is not None:
            self.tracer.span(
                "worker",
                self.worker_id,
                f"dispatch:{model_name}",
                now,
                self.busy_until,
                category="dispatch",
                args={"batch": batch, "tokens": tokens},
            )

    def run_batch(
        self,
        model_name: str,
        model: Sequential,
        xs: Sequence[np.ndarray],
        now: float,
        service_s: float,
        tokens: int = 0,
    ) -> np.ndarray:
        """Execute one micro-batch functionally and book the busy window."""
        stacked = np.stack([np.asarray(x, dtype=np.float64) for x in xs])
        out = self.executor.run_sequential(model, stacked)
        self.run_booking(model_name, len(xs), now, service_s, tokens=tokens)
        return out


class ExecutorPool:
    """A fixed set of workers plus model placement and routing."""

    def __init__(
        self,
        num_workers: int,
        policy: str = "least_loaded",
        executor_factory=None,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if policy not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {policy!r}; pick from {ROUTING_POLICIES}"
            )
        self._factory = executor_factory or (lambda: PhotonicExecutor())
        self.workers = [PoolWorker(i, self._factory()) for i in range(num_workers)]
        self.tracer = None
        self._next_worker_id = num_workers
        self.policy = policy
        self._models: Dict[str, Sequential] = {}
        self._replicas: Dict[str, List[int]] = {}
        self._rr_state: Dict[str, int] = {}
        self._place_cursor = 0

    def set_tracer(self, tracer) -> None:
        """Install an observability tracer on the pool and every worker.

        Replacement workers created later inherit it automatically.
        """
        self.tracer = tracer
        for w in self.workers:
            w.tracer = tracer

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def place(
        self,
        name: str,
        model: Sequential,
        replicas: int = 1,
        prewarm: bool = False,
    ) -> List[int]:
        """Assign ``replicas`` workers to ``name`` (round-robin sharding).

        ``prewarm=True`` programs the model's weight tiles on every
        replica immediately, so the first live batch hits the cache.
        """
        replicas = min(max(1, replicas), len(self.workers))
        assigned = []
        for _ in range(replicas):
            assigned.append(self._place_cursor % len(self.workers))
            self._place_cursor += 1
        self._models[name] = model
        self._replicas[name] = assigned
        self._rr_state[name] = 0
        if prewarm:
            for wid in assigned:
                self.workers[wid].executor.prewarm(model)
                self.workers[wid].models_programmed.add(name)
        return assigned

    def scale_to(
        self,
        name: str,
        n: int,
        now: float,
        prewarm_latency_s: float = 0.0,
    ) -> Dict[str, List[int]]:
        """Grow or shrink ``name``'s replica set to ``n`` workers.

        Scale-up assigns additional workers (cache-warm ones first, then
        least-loaded), programs the model's weight tiles on each *cold*
        addition, and charges ``prewarm_latency_s`` of reprogramming time
        (from ``arch.latency``: one phase-shifter settle per weight tile)
        to that worker's busy window — a freshly added cold replica serves
        its first batch only after its tiles are programmed.  Warm
        rejoining workers pay nothing.

        Scale-down is **drain-before-retire**: retired workers leave the
        routing set immediately (no new batches land on them) but keep
        their booked busy window, so an in-flight batch always completes.
        Crash-aware retirement order: dead/unresponsive replicas retire
        first, then suspect ones, then healthy last-added-first.  ``n``
        is clamped to ``[1, num_workers]``.  Returns the worker ids
        ``added`` (with the ``cold`` subset that actually paid the
        reprogram) and ``removed``.
        """
        if name not in self._replicas:
            raise KeyError(f"model {name!r} is not placed on this pool")
        n = min(max(1, n), len(self.workers))
        current = self._replicas[name]
        added: List[int] = []
        cold: List[int] = []
        removed: List[int] = []
        if n > len(current):
            candidates = [
                w
                for w in self.workers
                if w.worker_id not in current
                and w.responsive
                and w.health != "dead"
            ]
            # Warm workers rejoin free; cold ones by load, then id.
            candidates.sort(
                key=lambda w: (
                    name not in w.models_programmed,
                    w.busy_time,
                    w.worker_id,
                )
            )
            for w in candidates[: n - len(current)]:
                if name not in w.models_programmed:
                    w.executor.prewarm(self._models[name])
                    w.models_programmed.add(name)
                    t0 = max(w.busy_until, now)
                    w.busy_until = t0 + prewarm_latency_s
                    w.busy_time += prewarm_latency_s
                    cold.append(w.worker_id)
                    if self.tracer is not None and prewarm_latency_s > 0.0:
                        self.tracer.span(
                            "worker",
                            w.worker_id,
                            f"reprogram:{name}",
                            t0,
                            w.busy_until,
                            category="reprogram",
                        )
                current.append(w.worker_id)
                added.append(w.worker_id)
        elif n < len(current):
            def retire_rank(wid: int) -> int:
                w = self.workers[wid]
                if not w.responsive or w.health == "dead":
                    return 0
                if w.health == "suspect":
                    return 1
                return 2

            order = sorted(
                range(len(current)),
                key=lambda i: (retire_rank(current[i]), -i),
            )
            victims = set(order[: len(current) - n])
            removed = [current[i] for i in sorted(victims)]
            self._replicas[name] = [
                current[i] for i in range(len(current)) if i not in victims
            ]
            self._rr_state[name] = self._rr_state[name] % max(1, n)
        return {"added": added, "cold": cold, "removed": removed}

    def num_replicas(self, name: str) -> int:
        return len(self._replicas[name])

    def model(self, name: str) -> Sequential:
        return self._models[name]

    def replicas(self, name: str) -> List[int]:
        return list(self._replicas[name])

    def model_names(self) -> List[str]:
        return list(self._models)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route(self, name: str, now: float) -> Optional[PoolWorker]:
        """Pick an available replica worker for ``name`` under the policy.

        Only *available* workers are candidates — free, responsive, and
        not declared dead; a crashed-but-undetected worker therefore
        silently drops out of routing, which is exactly what a real load
        balancer's failed health probe does.  Returns None when no
        replica is available (the runtime then waits for the next
        worker-done event or health transition).
        """
        if name not in self._replicas:
            raise KeyError(f"model {name!r} is not placed on this pool")
        free = [
            self.workers[w] for w in self._replicas[name]
            if self.workers[w].is_available(now)
        ]
        if not free:
            return None
        if self.policy == "round_robin":
            order = self._replicas[name]
            start = self._rr_state[name]
            for i in range(len(order)):
                wid = order[(start + i) % len(order)]
                if self.workers[wid].is_available(now):
                    self._rr_state[name] = (start + i + 1) % len(order)
                    return self.workers[wid]
            return None
        if self.policy == "cache_affinity":
            warm = [w for w in free if name in w.models_programmed]
            pick_from = warm or free
        else:  # least_loaded
            pick_from = free
        return min(pick_from, key=lambda w: (w.busy_time, w.worker_id))

    def next_free_time(self, name: str) -> float:
        """Earliest time a *routable* replica of ``name`` becomes free.

        Falls back to the raw minimum over all replicas when none is
        routable (fleet-wide outage) so callers always get a finite time.
        """
        routable = [
            self.workers[w].busy_until
            for w in self._replicas[name]
            if self.workers[w].responsive and self.workers[w].health != "dead"
        ]
        if routable:
            return min(routable)
        return min(self.workers[w].busy_until for w in self._replicas[name])

    def next_available_time(self, name: str) -> Optional[float]:
        """Earliest free time among routable replicas; None if there are none."""
        routable = [
            self.workers[w].busy_until
            for w in self._replicas[name]
            if self.workers[w].responsive and self.workers[w].health != "dead"
        ]
        return min(routable) if routable else None

    # ------------------------------------------------------------------
    # Failures and replacement
    # ------------------------------------------------------------------
    def crash(self, worker_id: int, now: float) -> None:
        """Worker ``worker_id`` stops responding at ``now``.

        Covers both hard crashes and wedged (stuck) workers: the worker
        no longer answers heartbeats or completes work.  Detection —
        the ``healthy → suspect → dead`` progression — is the
        :class:`~repro.serve.faults.FleetMonitor`'s job; until it
        reacts, the worker simply vanishes from routing.
        """
        w = self.workers[worker_id]
        if not w.responsive:
            return
        w.responsive = False
        w.fail_time = now
        if self.tracer is not None:
            self.tracer.instant("worker", worker_id, "crash", now)

    def slow(self, worker_id: int, factor: float, until: float) -> None:
        """Degrade ``worker_id``: service times scale by ``factor`` until ``until``."""
        if factor <= 1.0:
            raise ValueError(f"slowdown factor must be > 1, got {factor}")
        w = self.workers[worker_id]
        w.slow_factor = factor
        w.slow_until = until

    def live_workers(self) -> List[PoolWorker]:
        """Workers still routable (responsive, not declared dead), by id."""
        return sorted(
            (w for w in self.workers if w.responsive and w.health != "dead"),
            key=lambda w: w.worker_id,
        )

    def live_replicas(self, name: str) -> List[int]:
        """Routable replica ids of ``name``."""
        return [
            wid
            for wid in self._replicas[name]
            if self.workers[wid].responsive
            and self.workers[wid].health != "dead"
        ]

    def resolve_worker(self, selector: int) -> Optional[int]:
        """Map a fault-plan target selector to a live worker id.

        Selectors index the live workers modulo their count (sorted by
        id), so a plan built before the run stays meaningful whatever
        ids replacements were assigned.  None when no worker is live.
        """
        live = self.live_workers()
        if not live:
            return None
        return live[selector % len(live)].worker_id

    def replace_worker(
        self,
        dead_worker_id: int,
        now: float,
        prewarm_latency_s=0.0,
    ) -> int:
        """Swap a fresh worker (new id, cold caches) in for a dead one.

        The replacement takes the dead worker's slot in every replica
        set it served, and pays the weight-tile reprogramming charge
        (``prewarm_latency_s`` per hosted model — a float, or a
        per-model callable ``name -> seconds``) before serving its
        first batch — a cold photonic core must program its phase
        shifters, exactly like a cold ``scale_to`` addition.  The dead
        worker stays in :attr:`workers` so its ledgers remain auditable,
        but is never routed to again.  Returns the new worker id.
        """
        dead = self.workers[dead_worker_id]
        if dead.responsive and dead.health != "dead":
            raise ValueError(
                f"worker {dead_worker_id} is still live; refusing to replace"
            )
        fresh = PoolWorker(self._next_worker_id, self._factory())
        self._next_worker_id += 1
        fresh.last_seen = now
        fresh.tracer = self.tracer
        self.workers.append(fresh)
        if self.tracer is not None:
            self.tracer.instant(
                "worker",
                fresh.worker_id,
                "replace",
                now,
                args={"replaces": dead_worker_id},
            )
        for name, replica_ids in self._replicas.items():
            if dead_worker_id not in replica_ids:
                continue
            replica_ids[replica_ids.index(dead_worker_id)] = fresh.worker_id
            fresh.executor.prewarm(self._models[name])
            fresh.models_programmed.add(name)
            charge = (
                prewarm_latency_s(name)
                if callable(prewarm_latency_s)
                else prewarm_latency_s
            )
            t0 = max(fresh.busy_until, now)
            fresh.busy_until = t0 + charge
            fresh.busy_time += charge
            if self.tracer is not None and charge > 0.0:
                self.tracer.span(
                    "worker",
                    fresh.worker_id,
                    f"reprogram:{name}",
                    t0,
                    fresh.busy_until,
                    category="reprogram",
                )
        return fresh.worker_id

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, float]:
        """Aggregated programmed-weight cache counters across workers."""
        hits = misses = evictions = 0
        for w in self.workers:
            info = w.executor.cache_info()
            hits += info["hits"]
            misses += info["misses"]
            evictions += info["evictions"]
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "hit_rate": hits / total if total else 0.0,
        }

    def worker_stats(self) -> List[Dict[str, float]]:
        return [
            {
                "worker_id": w.worker_id,
                "batches": w.batches_served,
                "requests": w.requests_served,
                "tokens": w.tokens_served,
                "busy_time_s": w.busy_time,
                "health": w.health,
                "responsive": w.responsive,
            }
            for w in self.workers
        ]
