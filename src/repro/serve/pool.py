"""Executor pool: models sharded across multiple photonic cores.

Each :class:`PoolWorker` owns one :class:`~repro.core.PhotonicExecutor`
(and therefore one :class:`~repro.core.PhotonicRnsTensorCore` with its own
programmed-weight cache).  Models are *placed* on a subset of workers —
replicas of hot models spread load, cold models share cores — and
per-request routing among a model's free replicas is pluggable:

* ``round_robin`` — cycle through the model's free replicas;
* ``least_loaded`` — free replica with the least accumulated busy time;
* ``cache_affinity`` — prefer free replicas whose core has already
  programmed this model's weight tiles (maximises programmed-cache hits,
  falling back to least-loaded among cold replicas).

The pool executes micro-batches *functionally* (real batched GEMMs
through the photonic core model) while the runtime advances simulated
time with the analytic hardware latency — so outputs are real and cache
hit rates are measured, not modelled.

Replica sets are dynamic: :meth:`ExecutorPool.scale_to` grows or shrinks
a model's replica set at simulated time ``now``, charging cold additions
the weight-tile reprogramming latency (prewarm) and draining retired
workers before they leave the routing set — the hooks the runtime's
:class:`~repro.serve.runtime.Autoscaler` drives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from ..core.pipeline import PhotonicExecutor
from ..nn.layers import Sequential
from .clock import time_at_or_before
from .request import InferenceRequest

__all__ = ["PoolWorker", "ExecutorPool", "ROUTING_POLICIES"]

ROUTING_POLICIES = ("round_robin", "least_loaded", "cache_affinity")


class PoolWorker:
    """One photonic core + executor with availability and load tracking."""

    def __init__(self, worker_id: int, executor: PhotonicExecutor):
        self.worker_id = worker_id
        self.executor = executor
        self.busy_until = 0.0
        self.busy_time = 0.0
        self.batches_served = 0
        self.requests_served = 0
        self.tokens_served = 0
        self.models_programmed: Set[str] = set()

    def is_free(self, now: float) -> bool:
        # Relative tolerance: an absolute epsilon (the old 1e-15) is below
        # double spacing once timestamps pass ~1 s, so a worker freed "at
        # exactly now" would compare busy forever at large simulated times.
        return time_at_or_before(self.busy_until, now)

    def run_booking(
        self,
        model_name: str,
        batch: int,
        now: float,
        service_s: float,
        tokens: int = 0,
    ) -> None:
        """Book the busy window only (timing-only runs, no functional exec).

        ``tokens`` is the number of output tokens this busy window
        produced — 0 for one-shot request serving, the decode-batch size
        for an engine step.
        """
        self.busy_until = now + service_s
        self.busy_time += service_s
        self.batches_served += 1
        self.requests_served += batch
        self.tokens_served += tokens
        self.models_programmed.add(model_name)

    def run_batch(
        self,
        model_name: str,
        model: Sequential,
        xs: Sequence[np.ndarray],
        now: float,
        service_s: float,
        tokens: int = 0,
    ) -> np.ndarray:
        """Execute one micro-batch functionally and book the busy window."""
        stacked = np.stack([np.asarray(x, dtype=np.float64) for x in xs])
        out = self.executor.run_sequential(model, stacked)
        self.run_booking(model_name, len(xs), now, service_s, tokens=tokens)
        return out


class ExecutorPool:
    """A fixed set of workers plus model placement and routing."""

    def __init__(
        self,
        num_workers: int,
        policy: str = "least_loaded",
        executor_factory=None,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if policy not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {policy!r}; pick from {ROUTING_POLICIES}"
            )
        factory = executor_factory or (lambda: PhotonicExecutor())
        self.workers = [PoolWorker(i, factory()) for i in range(num_workers)]
        self.policy = policy
        self._models: Dict[str, Sequential] = {}
        self._replicas: Dict[str, List[int]] = {}
        self._rr_state: Dict[str, int] = {}
        self._place_cursor = 0

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def place(
        self,
        name: str,
        model: Sequential,
        replicas: int = 1,
        prewarm: bool = False,
    ) -> List[int]:
        """Assign ``replicas`` workers to ``name`` (round-robin sharding).

        ``prewarm=True`` programs the model's weight tiles on every
        replica immediately, so the first live batch hits the cache.
        """
        replicas = min(max(1, replicas), len(self.workers))
        assigned = []
        for _ in range(replicas):
            assigned.append(self._place_cursor % len(self.workers))
            self._place_cursor += 1
        self._models[name] = model
        self._replicas[name] = assigned
        self._rr_state[name] = 0
        if prewarm:
            for wid in assigned:
                self.workers[wid].executor.prewarm(model)
                self.workers[wid].models_programmed.add(name)
        return assigned

    def scale_to(
        self,
        name: str,
        n: int,
        now: float,
        prewarm_latency_s: float = 0.0,
    ) -> Dict[str, List[int]]:
        """Grow or shrink ``name``'s replica set to ``n`` workers.

        Scale-up assigns additional workers (cache-warm ones first, then
        least-loaded), programs the model's weight tiles on each *cold*
        addition, and charges ``prewarm_latency_s`` of reprogramming time
        (from ``arch.latency``: one phase-shifter settle per weight tile)
        to that worker's busy window — a freshly added cold replica serves
        its first batch only after its tiles are programmed.  Warm
        rejoining workers pay nothing.

        Scale-down is **drain-before-retire**: retired workers leave the
        routing set immediately (no new batches land on them) but keep
        their booked busy window, so an in-flight batch always completes.
        Last-added replicas retire first.  ``n`` is clamped to
        ``[1, num_workers]``.  Returns the worker ids ``added`` (with the
        ``cold`` subset that actually paid the reprogram) and ``removed``.
        """
        if name not in self._replicas:
            raise KeyError(f"model {name!r} is not placed on this pool")
        n = min(max(1, n), len(self.workers))
        current = self._replicas[name]
        added: List[int] = []
        cold: List[int] = []
        removed: List[int] = []
        if n > len(current):
            candidates = [
                w for w in self.workers if w.worker_id not in current
            ]
            # Warm workers rejoin free; cold ones by load, then id.
            candidates.sort(
                key=lambda w: (
                    name not in w.models_programmed,
                    w.busy_time,
                    w.worker_id,
                )
            )
            for w in candidates[: n - len(current)]:
                if name not in w.models_programmed:
                    w.executor.prewarm(self._models[name])
                    w.models_programmed.add(name)
                    w.busy_until = (
                        max(w.busy_until, now) + prewarm_latency_s
                    )
                    w.busy_time += prewarm_latency_s
                    cold.append(w.worker_id)
                current.append(w.worker_id)
                added.append(w.worker_id)
        elif n < len(current):
            removed = current[n:]
            del current[n:]
            self._rr_state[name] = self._rr_state[name] % max(1, n)
        return {"added": added, "cold": cold, "removed": removed}

    def num_replicas(self, name: str) -> int:
        return len(self._replicas[name])

    def model(self, name: str) -> Sequential:
        return self._models[name]

    def replicas(self, name: str) -> List[int]:
        return list(self._replicas[name])

    def model_names(self) -> List[str]:
        return list(self._models)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route(self, name: str, now: float) -> Optional[PoolWorker]:
        """Pick a free replica worker for ``name`` under the pool policy.

        Returns None when every replica is busy (the runtime then waits
        for the next worker-done event).
        """
        if name not in self._replicas:
            raise KeyError(f"model {name!r} is not placed on this pool")
        free = [
            self.workers[w] for w in self._replicas[name]
            if self.workers[w].is_free(now)
        ]
        if not free:
            return None
        if self.policy == "round_robin":
            order = self._replicas[name]
            start = self._rr_state[name]
            for i in range(len(order)):
                wid = order[(start + i) % len(order)]
                if self.workers[wid].is_free(now):
                    self._rr_state[name] = (start + i + 1) % len(order)
                    return self.workers[wid]
            return None
        if self.policy == "cache_affinity":
            warm = [w for w in free if name in w.models_programmed]
            pick_from = warm or free
        else:  # least_loaded
            pick_from = free
        return min(pick_from, key=lambda w: (w.busy_time, w.worker_id))

    def next_free_time(self, name: str) -> float:
        """Earliest time any replica of ``name`` becomes free."""
        return min(
            self.workers[w].busy_until for w in self._replicas[name]
        )

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, float]:
        """Aggregated programmed-weight cache counters across workers."""
        hits = misses = evictions = 0
        for w in self.workers:
            info = w.executor.cache_info()
            hits += info["hits"]
            misses += info["misses"]
            evictions += info["evictions"]
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "hit_rate": hits / total if total else 0.0,
        }

    def worker_stats(self) -> List[Dict[str, float]]:
        return [
            {
                "worker_id": w.worker_id,
                "batches": w.batches_served,
                "requests": w.requests_served,
                "tokens": w.tokens_served,
                "busy_time_s": w.busy_time,
            }
            for w in self.workers
        ]
