"""Request/response abstraction and the bounded admission queue.

A serving deployment accepts :class:`InferenceRequest`\\ s — one input row
for one named model — through an :class:`AdmissionQueue` with a hard
capacity bound.  Requests past the bound are rejected immediately
(load-shedding at admission, not after queueing delay), which keeps tail
latency of admitted traffic bounded under overload.

The queue is organised per model so the micro-batching scheduler
(:mod:`repro.serve.batcher`) can coalesce compatible requests: only
requests for the same model can share a batched GEMM stream through the
weight-programmed executor.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional

import numpy as np

__all__ = [
    "RequestStatus",
    "InferenceRequest",
    "AdmissionQueue",
]


class RequestStatus:
    """Lifecycle states of a request (plain strings, cheap to log)."""

    QUEUED = "queued"
    REJECTED = "rejected"
    DISPATCHED = "dispatched"
    COMPLETED = "completed"


@dataclass
class InferenceRequest:
    """One inference call: an input row destined for a named model.

    Timing fields are simulated-clock seconds, filled in as the request
    moves through the runtime; ``output`` receives the model's output row
    when the batch it rode in completes.
    """

    request_id: int
    model: str
    x: np.ndarray  # (input_dim,) one input row
    arrival_time: float
    status: str = RequestStatus.QUEUED
    dispatch_time: Optional[float] = None
    completion_time: Optional[float] = None
    batch_size: Optional[int] = None
    worker_id: Optional[int] = None
    output: Optional[np.ndarray] = None

    @property
    def queue_latency(self) -> Optional[float]:
        if self.dispatch_time is None:
            return None
        return self.dispatch_time - self.arrival_time

    @property
    def total_latency(self) -> Optional[float]:
        if self.completion_time is None:
            return None
        return self.completion_time - self.arrival_time


class AdmissionQueue:
    """Bounded FIFO admission queue, sharded per model.

    ``capacity`` bounds the *total* number of waiting requests across all
    models.  ``offer`` returns False (and marks the request rejected)
    when the bound is hit.  Per-model FIFO order is preserved so batches
    always contain the oldest waiting requests of their model.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._queues: "OrderedDict[str, Deque[InferenceRequest]]" = OrderedDict()
        self._depth = 0
        self.admitted = 0
        self.rejected = 0

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        return self._depth

    def pending(self, model: str) -> int:
        q = self._queues.get(model)
        return len(q) if q else 0

    def models_waiting(self) -> List[str]:
        """Models with at least one waiting request, oldest-queue first."""
        return [m for m, q in self._queues.items() if q]

    def oldest_arrival(self, model: str) -> Optional[float]:
        q = self._queues.get(model)
        return q[0].arrival_time if q else None

    # ------------------------------------------------------------------
    def offer(self, request: InferenceRequest) -> bool:
        """Admit ``request`` or reject it when the queue is full."""
        if self._depth >= self.capacity:
            request.status = RequestStatus.REJECTED
            self.rejected += 1
            return False
        self._queues.setdefault(request.model, deque()).append(request)
        self._depth += 1
        self.admitted += 1
        request.status = RequestStatus.QUEUED
        return True

    def pop_batch(self, model: str, max_n: int) -> List[InferenceRequest]:
        """Pop up to ``max_n`` oldest waiting requests of ``model``."""
        q = self._queues.get(model)
        if not q:
            return []
        n = min(max_n, len(q))
        batch = [q.popleft() for _ in range(n)]
        self._depth -= n
        return batch
