"""Request/response abstraction and the bounded admission queue.

A serving deployment accepts :class:`InferenceRequest`\\ s — one input row
for one named model — through an :class:`AdmissionQueue` with a hard
capacity bound.  Requests past the bound are rejected immediately
(load-shedding at admission, not after queueing delay), which keeps tail
latency of admitted traffic bounded under overload.

Every request carries a **priority class** (a small int, higher = more
important; see :class:`Priority` for the canonical three).  The queue is
organised per model *and* per class:

* batches only ever mix requests for the same model (only those can share
  a batched GEMM stream through the weight-programmed executor);
* load shedding is class-aware — when the queue is full, an arriving
  request may **evict** the youngest waiting request of a strictly lower
  class instead of being rejected, so overload sheds batch traffic before
  interactive traffic;
* within a class, FIFO order is preserved, and the micro-batching
  scheduler (:mod:`repro.serve.batcher`) drains classes highest-first
  with an aging term that keeps low classes from starving.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Tuple

import numpy as np

__all__ = [
    "Priority",
    "RequestStatus",
    "InferenceRequest",
    "AdmissionQueue",
]


class Priority:
    """Canonical priority classes (any int works; higher = more urgent)."""

    BATCH = 0
    STANDARD = 1
    INTERACTIVE = 2


class RequestStatus:
    """Lifecycle states of a request (plain strings, cheap to log).

    ``RUNNING``/``PREEMPTED`` belong to autoregressive decode sessions
    (:mod:`repro.serve.engine`): a session alternates between holding a
    slot in the running batch and being preempted back to the waiting
    queue when a higher class needs its KV-cache blocks.
    """

    QUEUED = "queued"
    REJECTED = "rejected"
    EVICTED = "evicted"
    DISPATCHED = "dispatched"
    RUNNING = "running"
    PREEMPTED = "preempted"
    COMPLETED = "completed"
    # Failure-plane terminal states (PR 6): a request whose deadline
    # expired before completion, and one abandoned after its retry
    # budget was exhausted by worker failures.
    TIMED_OUT = "timed_out"
    FAILED = "failed"


@dataclass
class InferenceRequest:
    """One inference call: an input row destined for a named model.

    Timing fields are simulated-clock seconds, filled in as the request
    moves through the runtime; ``output`` receives the model's output row
    when the batch it rode in completes.  ``priority`` is the request's
    class (higher = more important); the default ``Priority.BATCH`` keeps
    single-class deployments identical to the pre-priority runtime.
    """

    request_id: int
    model: str
    x: np.ndarray  # (input_dim,) one input row
    arrival_time: float
    priority: int = Priority.BATCH
    status: str = RequestStatus.QUEUED
    dispatch_time: Optional[float] = None
    completion_time: Optional[float] = None
    batch_size: Optional[int] = None
    worker_id: Optional[int] = None
    output: Optional[np.ndarray] = None
    # Failure plane: how many times this request was re-dispatched after
    # a worker failure, and the absolute simulated time after which it
    # is no longer worth serving (None = no deadline).
    retries: int = 0
    deadline: Optional[float] = None

    @property
    def queue_latency(self) -> Optional[float]:
        if self.dispatch_time is None:
            return None
        return self.dispatch_time - self.arrival_time

    @property
    def total_latency(self) -> Optional[float]:
        if self.completion_time is None:
            return None
        return self.completion_time - self.arrival_time


class AdmissionQueue:
    """Bounded admission queue, sharded per model and per priority class.

    ``capacity`` bounds the *total* number of waiting requests across all
    models and classes.  ``offer`` at capacity first tries to evict the
    youngest waiting request of the lowest class strictly below the
    arrival's class (class-aware shedding); if no such victim exists the
    arrival itself is rejected.  Evicted victims are collected via
    :meth:`drain_evicted` so the runtime can record them.  Per-class FIFO
    order is preserved so batches always contain the oldest waiting
    requests of each class.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        # model -> priority -> FIFO deque (class dicts kept sorted on use).
        self._queues: "OrderedDict[str, Dict[int, Deque[InferenceRequest]]]" = (
            OrderedDict()
        )
        self._depth = 0
        self.admitted = 0
        self.rejected = 0
        self.evicted = 0
        self._evicted_pending: List[InferenceRequest] = []

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        return self._depth

    def pending(self, model: str) -> int:
        classes = self._queues.get(model)
        if not classes:
            return 0
        return sum(len(q) for q in classes.values())

    def pending_by_class(self, model: str) -> Dict[int, int]:
        classes = self._queues.get(model, {})
        return {p: len(q) for p, q in sorted(classes.items()) if q}

    def models_waiting(self) -> List[str]:
        """Models with at least one waiting request, oldest-queue first."""
        return [
            m
            for m, classes in self._queues.items()
            if any(classes.values())
        ]

    def oldest_arrival(self, model: str) -> Optional[float]:
        classes = self._queues.get(model)
        if not classes:
            return None
        heads = [q[0].arrival_time for q in classes.values() if q]
        return min(heads) if heads else None

    def class_heads(self, model: str) -> List[InferenceRequest]:
        """Oldest waiting request of each class of ``model``."""
        classes = self._queues.get(model, {})
        return [q[0] for q in classes.values() if q]

    # ------------------------------------------------------------------
    def offer(self, request: InferenceRequest, front: bool = False) -> bool:
        """Admit ``request``, evicting a lower-class victim if needed.

        Returns True when the request was admitted.  At capacity, the
        youngest waiting request of the lowest waiting class is evicted
        *iff* its class is strictly below the arrival's; otherwise the
        arrival is rejected (same-class traffic never preempts itself, so
        a single-class deployment behaves exactly like the plain bounded
        FIFO it used to be).

        ``front=True`` re-enqueues at the *head* of the request's class
        (head-of-class requeue): a retry whose first dispatch was lost to
        a worker failure has already waited its turn once and should not
        queue behind younger same-class arrivals.
        """
        if self._depth >= self.capacity:
            victim = self._evict_candidate(request.priority)
            if victim is None:
                request.status = RequestStatus.REJECTED
                self.rejected += 1
                return False
            self._remove(victim)
            victim.status = RequestStatus.EVICTED
            self.evicted += 1
            self._evicted_pending.append(victim)
        classes = self._queues.setdefault(request.model, {})
        q = classes.setdefault(request.priority, deque())
        if front:
            q.appendleft(request)
        else:
            q.append(request)
        self._depth += 1
        self.admitted += 1
        request.status = RequestStatus.QUEUED
        return True

    def drain_evicted(self) -> List[InferenceRequest]:
        """Victims evicted since the last drain (for telemetry)."""
        out, self._evicted_pending = self._evicted_pending, []
        return out

    def expire(self, now: float) -> List[InferenceRequest]:
        """Remove and return waiting requests whose deadline has passed.

        Per-class FIFO order of the survivors is preserved.  The runtime
        sweeps this on its clock so a request nobody will ever dispatch
        (e.g. queued behind a fleet outage) still reaches a terminal
        state instead of stranding the event loop.
        """
        from .clock import time_at_or_before

        expired: List[InferenceRequest] = []
        for classes in self._queues.values():
            for q in classes.values():
                if not q:
                    continue
                survivors = [
                    r
                    for r in q
                    if r.deadline is None or time_at_or_before(now, r.deadline)
                ]
                if len(survivors) != len(q):
                    expired.extend(
                        r
                        for r in q
                        if r.deadline is not None
                        and not time_at_or_before(now, r.deadline)
                    )
                    q.clear()
                    q.extend(survivors)
        for r in expired:
            r.status = RequestStatus.TIMED_OUT
            self._depth -= 1
        return expired

    def _evict_candidate(self, priority: int) -> Optional[InferenceRequest]:
        """Youngest waiting request of the lowest class strictly below
        ``priority``, searched across all models."""
        best: Optional[InferenceRequest] = None
        for classes in self._queues.values():
            for p, q in classes.items():
                if p >= priority or not q:
                    continue
                cand = q[-1]  # youngest of this class keeps FIFO fairness
                if (
                    best is None
                    or p < best.priority
                    or (p == best.priority and cand.arrival_time > best.arrival_time)
                ):
                    best = cand
        return best

    def _remove(self, request: InferenceRequest) -> None:
        q = self._queues[request.model][request.priority]
        q.remove(request)
        self._depth -= 1

    def pop_batch(
        self,
        model: str,
        max_n: int,
        now: Optional[float] = None,
        aging_rate: float = 0.0,
    ) -> List[InferenceRequest]:
        """Pop up to ``max_n`` waiting requests of ``model``.

        Requests drain in *effective-priority* order: the head of each
        class scores ``priority + aging_rate * (now - arrival)`` and the
        highest-scoring head pops first (ties: higher class, then older
        arrival).  With ``aging_rate = 0`` (or ``now`` omitted) this is
        plain class-descending order, FIFO within a class — so higher
        classes preempt the dispatch head, while a positive aging rate
        lets a long-waiting low-class head overtake and bounds starvation.
        """
        classes = self._queues.get(model)
        if not classes:
            return []
        batch: List[InferenceRequest] = []
        while len(batch) < max_n:
            best_p: Optional[int] = None
            best_score: Optional[Tuple[float, int, float]] = None
            for p, q in classes.items():
                if not q:
                    continue
                head = q[0]
                age = (now - head.arrival_time) if now is not None else 0.0
                score = (p + aging_rate * age, p, -head.arrival_time)
                if best_score is None or score > best_score:
                    best_score = score
                    best_p = p
            if best_p is None:
                break
            batch.append(classes[best_p].popleft())
        self._depth -= len(batch)
        return batch
