"""Autoregressive token serving engine (continuous batching over KV blocks).

The execution model is token-granular, not request-granular: arrivals
are :class:`DecodeSession`\\ s (prompt length, decode length, priority
class, optionally the prompt's token ids), a refcounting
:class:`KVBlockManager` pages their growing KV state inside a budget
derived from the accelerator's analytic memory model — sharing prompt
heads across sessions through the :class:`RadixPrefixIndex`
(:mod:`~repro.serve.engine.prefix`: radix tree over chained token-block
hashes, copy-on-write on divergence, LRU eviction of unreferenced
cached prefixes) — and the :class:`TokenServingEngine` re-forms the
running batch **every decode step**: admitting prefills as *chunked*
work priced only for the uncached suffix, retiring finished sessions,
and preempting low-class sessions under KV pressure (decref, so their
cached prefixes survive for resume).

See :mod:`repro.serve` for how this sits next to the request-level
runtime, ``benchmarks/bench_continuous.py`` for the headline comparison
against static request-level batching, and
``benchmarks/bench_prefix.py`` for the shared-prefix/chunked-prefill
gains.
"""

from .kvcache import KVBlockManager
from .prefix import (
    PrefixNode,
    RadixPrefixIndex,
    chain_block_hashes,
    common_prefix_len,
    full_blocks,
)
from .scheduler import (
    DecodeServiceModel,
    EngineConfig,
    TokenServingEngine,
    sequential_decode_outputs,
)
from .session import (
    DecodeModelProfile,
    DecodeSession,
    build_sessions,
    next_token_input,
)

__all__ = [
    "DecodeModelProfile",
    "DecodeServiceModel",
    "DecodeSession",
    "EngineConfig",
    "KVBlockManager",
    "PrefixNode",
    "RadixPrefixIndex",
    "TokenServingEngine",
    "build_sessions",
    "chain_block_hashes",
    "common_prefix_len",
    "full_blocks",
    "next_token_input",
    "sequential_decode_outputs",
]
