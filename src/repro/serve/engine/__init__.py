"""Autoregressive token serving engine (continuous batching over KV blocks).

The execution model is token-granular, not request-granular: arrivals
are :class:`DecodeSession`\\ s (prompt length, decode length, priority
class), a :class:`KVBlockManager` pages their growing KV state inside a
budget derived from the accelerator's analytic memory model, and the
:class:`TokenServingEngine` re-forms the running batch **every decode
step** — admitting prefills, retiring finished sessions, and preempting
low-class sessions under KV pressure — dispatching each step as one
batched GEMM stream through the weight-static executor pool.

See :mod:`repro.serve` for how this sits next to the request-level
runtime, and ``benchmarks/bench_continuous.py`` for the headline
comparison against static request-level batching.
"""

from .kvcache import KVBlockManager
from .scheduler import (
    DecodeServiceModel,
    EngineConfig,
    TokenServingEngine,
    sequential_decode_outputs,
)
from .session import (
    DecodeModelProfile,
    DecodeSession,
    build_sessions,
    next_token_input,
)

__all__ = [
    "DecodeModelProfile",
    "DecodeServiceModel",
    "DecodeSession",
    "EngineConfig",
    "KVBlockManager",
    "TokenServingEngine",
    "build_sessions",
    "next_token_input",
    "sequential_decode_outputs",
]
