"""Decode sessions: the request type of the token serving engine.

A :class:`DecodeSession` is one autoregressive generation: a prompt of
``prompt_len`` tokens is prefilled into KV state, then ``decode_len``
output tokens stream one per engine step.  Unlike the one-shot
:class:`~repro.serve.request.InferenceRequest`, a session is *stateful*:
its KV footprint grows with every generated token, it can be preempted
back to the waiting queue under memory pressure (and pays a re-prefill
over prompt + generated tokens when it resumes), and its latency splits
into time-to-first-token (TTFT) and time-per-output-token (TPOT).

Functionally the engine decodes a **surrogate recurrence** over the
profile's ``Sequential`` model: each step feeds every running session's
current input row through the batched GEMM stream and derives the next
input from the output row via :func:`next_token_input` — a row-local,
deterministic map, so a session's token stream is bit-exact regardless
of which batch compositions it rode in (the engine's correctness
check).  The *analytic* cost of attention and KV residency comes from
the profile's :class:`~repro.nn.attention.KVCacheSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ...nn.attention import KVCacheSpec
from ...nn.layers import Linear, Sequential
from ..request import Priority, RequestStatus
from ..traffic import Scenario

__all__ = [
    "DecodeModelProfile",
    "DecodeSession",
    "build_sessions",
    "next_token_input",
]


def next_token_input(out_row: np.ndarray) -> np.ndarray:
    """Deterministic token recurrence: the next step's input row.

    The output row, rescaled by its own max-magnitude when that exceeds
    one, so arbitrarily long decodes stay bounded.  Every operation is
    row-local (no reduction across the batch), which is what makes the
    per-token stream independent of batch composition.
    """
    row = np.asarray(out_row, dtype=np.float64)
    scale = float(np.max(np.abs(row))) if row.size else 0.0
    return row / scale if scale > 1.0 else row


@dataclass(frozen=True)
class DecodeModelProfile:
    """A served autoregressive model: functional surrogate + KV geometry.

    ``model`` must be Linear-based with matching input/output widths
    (the decode recurrence feeds outputs back as inputs); ``kv`` ties
    the analytic per-step attention cost and per-token memory growth to
    the attention stack the surrogate stands in for.  ``ttft_slo_s`` is
    the per-class SLO target the engine telemetry scores TTFT against.
    """

    name: str
    model: Sequential
    kv: KVCacheSpec
    replicas: int = 1
    ttft_slo_s: Optional[float] = None

    def __post_init__(self):
        linears = [l for l in self.model if isinstance(l, Linear)]
        if not linears:
            raise ValueError(
                f"decode profile {self.name!r} has no Linear layers to serve"
            )
        d_in = linears[0].in_features
        d_out = linears[-1].out_features
        if d_in != d_out:
            raise ValueError(
                f"decode profile {self.name!r} cannot recur: input width "
                f"{d_in} != output width {d_out}"
            )
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")
        if self.ttft_slo_s is not None and self.ttft_slo_s < 0:
            raise ValueError(
                f"ttft_slo_s must be >= 0, got {self.ttft_slo_s}"
            )

    def input_dim(self) -> int:
        for layer in self.model:
            if isinstance(layer, Linear):
                return layer.in_features
        raise ValueError(f"model {self.name!r} has no Linear layer")


@dataclass
class DecodeSession:
    """One autoregressive generation request and its engine-side state.

    ``x`` is the current recurrence input row (the functional stand-in
    for "last sampled token"); it survives preemption, so a resumed
    session continues its exact token stream while the *analytic* model
    charges it the KV re-prefill.  Timing fields are simulated-clock
    seconds filled in by the scheduler.
    """

    session_id: int
    model: str
    prompt_len: int
    decode_len: int
    arrival_time: float
    priority: int = Priority.BATCH
    prompt_tokens: Optional[Tuple[int, ...]] = None
    x: Optional[np.ndarray] = None
    status: str = RequestStatus.QUEUED
    tokens_generated: int = 0
    preemptions: int = 0
    admit_time: Optional[float] = None
    admit_order: int = -1  # monotonic per (re)admission; youngest = largest
    first_token_time: Optional[float] = None
    finish_time: Optional[float] = None
    outputs: List[np.ndarray] = field(default_factory=list)
    # Prefill progress, (re)set at each admission by the scheduler:
    # context tokens with valid KV vs the context the session must
    # rebuild before decoding (prompt + tokens generated pre-preemption).
    prefill_done: int = 0
    prefill_target: int = 0
    # Cumulative prompt tokens served from the shared-prefix cache
    # across all of this session's admissions (prefill work avoided).
    cached_prompt_tokens: int = 0
    # Times this session was rescued off a failed replica (or lost KV)
    # and re-dispatched — distinct from memory-pressure preemptions.
    recoveries: int = 0

    def __post_init__(self):
        if self.prompt_len < 1:
            raise ValueError(f"prompt_len must be >= 1, got {self.prompt_len}")
        if self.decode_len < 1:
            raise ValueError(f"decode_len must be >= 1, got {self.decode_len}")
        if self.prompt_tokens is not None:
            self.prompt_tokens = tuple(int(t) for t in self.prompt_tokens)
            if len(self.prompt_tokens) != self.prompt_len:
                raise ValueError(
                    f"prompt_tokens carries {len(self.prompt_tokens)} ids "
                    f"but prompt_len is {self.prompt_len}"
                )

    # ------------------------------------------------------------------
    @property
    def prefilling(self) -> bool:
        """KV still being rebuilt — not yet decoding."""
        return self.prefill_done < self.prefill_target

    # ------------------------------------------------------------------
    @property
    def context_len(self) -> int:
        """Tokens whose KV must be resident to decode the next token."""
        return self.prompt_len + self.tokens_generated

    @property
    def max_context_len(self) -> int:
        """Largest KV residency this session can ever need."""
        return self.prompt_len + self.decode_len

    @property
    def finished(self) -> bool:
        return self.tokens_generated >= self.decode_len

    # ------------------------------------------------------------------
    @property
    def ttft(self) -> Optional[float]:
        """Time to first token (arrival → first decode-step completion)."""
        if self.first_token_time is None:
            return None
        return self.first_token_time - self.arrival_time

    @property
    def total_latency(self) -> Optional[float]:
        if self.finish_time is None:
            return None
        return self.finish_time - self.arrival_time

    @property
    def tpot(self) -> Optional[float]:
        """Mean time per output token after the first (None for 1-token)."""
        if self.finish_time is None or self.first_token_time is None:
            return None
        if self.decode_len < 2:
            return None
        return (self.finish_time - self.first_token_time) / (self.decode_len - 1)


def build_sessions(
    profile: DecodeModelProfile,
    scenario: Scenario,
    seed: int = 0,
) -> List[DecodeSession]:
    """Materialise a scenario's arrivals as decode sessions.

    Each session's initial input row is drawn from its own
    ``default_rng([seed, session_id])`` stream, so session inputs are
    identical across engines regardless of admission order — the
    property the bit-exactness check against sequential batch-1 decode
    rests on.  Arrivals without length fields (plain request traffic)
    degenerate to 1-prompt/1-token sessions; six-field arrivals (the
    shared-prefix scenarios) additionally carry the prompt's token ids,
    which the engine's prefix cache content-addresses for KV reuse.
    """
    sessions: List[DecodeSession] = []
    dim = profile.input_dim()
    for i, arrival in enumerate(scenario.arrivals):
        t, model = arrival[0], arrival[1]
        if model != profile.name:
            raise KeyError(
                f"scenario names model {model!r} but this engine serves "
                f"{profile.name!r}"
            )
        priority = arrival[2] if len(arrival) > 2 else 0
        prompt_len = int(arrival[3]) if len(arrival) > 4 else 1
        decode_len = int(arrival[4]) if len(arrival) > 4 else 1
        prompt_tokens = (
            tuple(int(t_id) for t_id in arrival[5])
            if len(arrival) > 5 and arrival[5] is not None
            else None
        )
        rng = np.random.default_rng([seed, i])
        sessions.append(
            DecodeSession(
                i,
                model,
                prompt_len,
                decode_len,
                float(t),
                priority=priority,
                prompt_tokens=prompt_tokens,
                x=rng.standard_normal(dim),
            )
        )
    return sessions
