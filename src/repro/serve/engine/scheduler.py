"""Iteration-level scheduler: continuous batching over the executor pool.

:class:`TokenServingEngine` is the Orca-style serving loop: the running
batch is **re-formed at every decode step** instead of once per request
batch.  Each step it

1. admits waiting sessions (highest class first, FIFO within a class) as
   long as decode slots and KV blocks allow — prefills ride along with
   the running batch's next token, paying the analytic
   :func:`~repro.arch.inference.prefill_latency`;
2. grows every running session's KV residency by one token, **preempting
   the youngest lowest-class session** when the block pool runs dry
   (its blocks are freed, it requeues at the head of its class, and it
   re-prefills prompt + generated tokens when readmitted — the
   recompute-on-resume cost of paged KV serving);
3. dispatches the step as **one batched GEMM stream** through a
   weight-static :class:`~repro.serve.pool.ExecutorPool` worker — the
   functional surrogate recurrence really executes, so per-token outputs
   are bit-exact against sequential batch-1 decode — while simulated
   time advances by :func:`~repro.arch.inference.decode_step_latency`
   (token-parallel GEMMs at the batch size plus each session's
   attention read over its context);
4. retires finished sessions immediately, freeing their blocks for the
   next admission.

``EngineConfig(continuous=False)`` degenerates the same loop into the
classic **static request-level** baseline: admission only when the batch
has fully drained, worst-case KV reserved up front, finished sessions
pad the batch until the longest member completes — the regime whose
wasted slots and dead reservations continuous batching exists to
reclaim (the ``bench_continuous`` headline).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...arch.accelerator import MirageAccelerator
from ...arch.inference import (
    attention_token_latency,
    decode_step_latency,
    prefill_latency,
)
from ...arch.memory import MemorySystemModel
from ...core.pipeline import PhotonicExecutor
from ..clock import SimulatedClock
from ..pool import ExecutorPool
from ..request import RequestStatus
from ..runtime import ModelProfile, ServiceModel, model_layer_shapes
from ..telemetry import EngineTelemetry
from ..traffic import Scenario
from .kvcache import KVBlockManager
from .session import (
    DecodeModelProfile,
    DecodeSession,
    build_sessions,
    next_token_input,
)

__all__ = [
    "DecodeServiceModel",
    "EngineConfig",
    "TokenServingEngine",
    "sequential_decode_outputs",
]


class DecodeServiceModel(ServiceModel):
    """Analytic decode/prefill pricing, memoised for the engine hot loop.

    Extends :class:`~repro.serve.runtime.ServiceModel` (token-parallel
    batch GEMMs per (model, batch)) with two more memos: the per-token
    attention read per (model, context_len) and the prompt prefill per
    (model, prompt_len).  All three reduce to ``arch.inference`` calls,
    and the accumulation order mirrors :func:`decode_step_latency`
    exactly, so the telemetry cross-check reproduces every recorded
    step latency bit-for-bit from scratch.
    """

    def __init__(self, accelerator: Optional[MirageAccelerator] = None):
        super().__init__(accelerator)
        self._kv: Dict[str, object] = {}
        self._attn_cache: Dict[Tuple[str, int], float] = {}
        self._prefill_cache: Dict[Tuple[str, int], float] = {}

    def register_decode(self, profile: DecodeModelProfile) -> None:
        self.register(ModelProfile(profile.name, profile.model))
        self._kv[profile.name] = profile.kv
        for key in [k for k in self._attn_cache if k[0] == profile.name]:
            del self._attn_cache[key]
        for key in [k for k in self._prefill_cache if k[0] == profile.name]:
            del self._prefill_cache[key]

    def kv_spec(self, model: str):
        return self._kv[model]

    def attention_latency(self, model: str, context_len: int) -> float:
        key = (model, context_len)
        if key not in self._attn_cache:
            self._attn_cache[key] = attention_token_latency(
                self._kv[model], context_len, self.accelerator
            )
        return self._attn_cache[key]

    def step_latency(self, model: str, context_lens: Sequence[int]) -> float:
        """One decode step: batched token GEMMs + per-session KV reads."""
        token_s = self.batch_latency(model, len(context_lens))
        attention_s = 0.0
        for length in context_lens:
            attention_s += self.attention_latency(model, length)
        return token_s + attention_s

    def prefill(self, model: str, prompt_len: int) -> float:
        key = (model, prompt_len)
        if key not in self._prefill_cache:
            profile = self._profiles[model]
            shapes = model_layer_shapes(
                model, profile.model, prompt_len, profile.input_hw
            )
            self._prefill_cache[key] = prefill_latency(
                shapes, prompt_len, self._kv[model], self.accelerator
            )
        return self._prefill_cache[key]


@dataclass(frozen=True)
class EngineConfig:
    """Knobs of the token serving engine.

    ``continuous=False`` switches the loop to the static request-level
    baseline (admission only on a drained batch, worst-case KV reserved
    up front, finished sessions pad until the batch completes).
    ``preemption`` gates *admission-driven* priority preemption; KV-
    pressure requeue during decode growth is always allowed (the loop
    cannot deadlock on a full pool).
    """

    max_batch_size: int = 16
    max_prefills_per_step: int = 4
    block_tokens: int = 16
    kv_fraction: float = 0.5
    preemption: bool = True
    continuous: bool = True
    execute: bool = True

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_prefills_per_step < 1:
            raise ValueError(
                "max_prefills_per_step must be >= 1, got "
                f"{self.max_prefills_per_step}"
            )
        if self.block_tokens < 1:
            raise ValueError(
                f"block_tokens must be >= 1, got {self.block_tokens}"
            )
        if not 0.0 < self.kv_fraction <= 1.0:
            raise ValueError(
                f"kv_fraction must be in (0, 1], got {self.kv_fraction}"
            )


class TokenServingEngine:
    """One autoregressive serving deployment: sessions → steps → tokens.

    Use one engine instance per scenario run (KV state, worker windows
    and telemetry persist across steps within a run, deliberately).
    """

    def __init__(
        self,
        pool: ExecutorPool,
        profile: DecodeModelProfile,
        config: Optional[EngineConfig] = None,
        accelerator: Optional[MirageAccelerator] = None,
        memory: Optional[MemorySystemModel] = None,
    ):
        self.pool = pool
        self.profile = profile
        self.config = config or EngineConfig()
        self.service = DecodeServiceModel(accelerator)
        self.service.register_decode(profile)
        memory = memory or MemorySystemModel(self.service.accelerator.config)
        self.kv = KVBlockManager.from_memory_model(
            profile.kv,
            memory=memory,
            block_tokens=self.config.block_tokens,
            kv_fraction=self.config.kv_fraction,
        )
        self.clock = SimulatedClock()
        self.telemetry = EngineTelemetry()
        pool.place(
            profile.name, profile.model, replicas=profile.replicas, prewarm=True
        )
        self._admit_seq = itertools.count()

    # ------------------------------------------------------------------
    # Waiting-queue helpers (per-class FIFO, preempted resume at head)
    # ------------------------------------------------------------------
    @staticmethod
    def _waiting_any(waiting: Dict[int, Deque[DecodeSession]]) -> bool:
        return any(waiting.values())

    @staticmethod
    def _waiting_head(
        waiting: Dict[int, Deque[DecodeSession]]
    ) -> Optional[DecodeSession]:
        for priority in sorted(waiting, reverse=True):
            if waiting[priority]:
                return waiting[priority][0]
        return None

    def _requeue_preempted(
        self,
        session: DecodeSession,
        waiting: Dict[int, Deque[DecodeSession]],
        running: List[DecodeSession],
    ) -> None:
        self.kv.release(session.session_id)
        running.remove(session)
        session.status = RequestStatus.PREEMPTED
        session.preemptions += 1
        waiting.setdefault(session.priority, deque()).appendleft(session)
        self.telemetry.record_preemption(session)

    # ------------------------------------------------------------------
    # Admission (prefill scheduling)
    # ------------------------------------------------------------------
    def _admit(
        self,
        waiting: Dict[int, Deque[DecodeSession]],
        running: List[DecodeSession],
        now: float,
    ) -> List[DecodeSession]:
        """Admit waiting sessions into the running batch at time ``now``.

        Continuous mode reserves the *actual* context (prompt +
        generated so far, plus one slot for the step's new token) and
        may preempt strictly-lower-class running sessions to make room;
        static mode reserves the worst-case ``prompt + decode`` span and
        never preempts (the whole point of comparing the two).
        Admission stops at the first head-of-class that does not fit, so
        per-class FIFO order is never reordered by size.
        """
        admitted: List[DecodeSession] = []
        cfg = self.config
        # max_prefills_per_step bounds the prefill work a single
        # iteration-level step absorbs; static request-level batching has
        # no such concept — it fills the whole batch on drain.
        prefill_cap = (
            cfg.max_prefills_per_step if cfg.continuous else cfg.max_batch_size
        )
        while (
            len(running) < cfg.max_batch_size
            and len(admitted) < prefill_cap
        ):
            candidate = self._waiting_head(waiting)
            if candidate is None:
                break
            tokens = (
                candidate.context_len + 1
                if cfg.continuous
                else candidate.max_context_len
            )
            if not self.kv.can_reserve(tokens) and cfg.continuous and cfg.preemption:
                self._preempt_for_admission(candidate, tokens, waiting, running)
            if not self.kv.reserve(candidate.session_id, tokens):
                break
            waiting[candidate.priority].popleft()
            candidate.status = RequestStatus.RUNNING
            if candidate.admit_time is None:
                candidate.admit_time = now
            candidate.admit_order = next(self._admit_seq)
            running.append(candidate)
            admitted.append(candidate)
        return admitted

    def _preempt_for_admission(
        self,
        candidate: DecodeSession,
        tokens: int,
        waiting: Dict[int, Deque[DecodeSession]],
        running: List[DecodeSession],
    ) -> None:
        """Evict strictly-lower-class running sessions for ``candidate``.

        Victims are taken lowest class first, youngest admission first
        (least sunk prefill work), and only if evicting every eligible
        victim would actually make the reservation fit — a hopeless
        preemption spree would shed work without admitting anyone.
        """
        need = self.kv.blocks_for(tokens)
        victims = sorted(
            (s for s in running if s.priority < candidate.priority),
            key=lambda s: (s.priority, -s.admit_order),
        )
        reclaimable = self.kv.free_blocks + sum(
            self.kv.blocks_for(self.kv.resident_tokens(s.session_id))
            for s in victims
        )
        if reclaimable < need:
            return
        for victim in victims:
            if self.kv.free_blocks >= need:
                break
            self._requeue_preempted(victim, waiting, running)

    # ------------------------------------------------------------------
    # KV growth (one token per running session, preempt under pressure)
    # ------------------------------------------------------------------
    def _grow_for_step(
        self,
        waiting: Dict[int, Deque[DecodeSession]],
        running: List[DecodeSession],
    ) -> None:
        """Extend every running session's residency for this step's token.

        Highest class grows first (oldest admission breaking ties).  A
        session that cannot grow preempts the youngest not-yet-grown
        strictly-lower-class session; with no such victim it preempts
        *itself* — backpressure requeue, which is why the loop cannot
        deadlock on a full block pool.
        """
        order = sorted(
            list(running),
            key=lambda s: (-s.priority, s.admit_order),
        )
        grown: set = set()
        for session in order:
            if session not in running:
                continue  # preempted as a victim earlier in this pass
            while not self.kv.grow_to(session.session_id, session.context_len + 1):
                victims = [
                    s
                    for s in running
                    if s is not session
                    and s.session_id not in grown
                    and s.priority < session.priority
                ]
                if victims:
                    victim = min(
                        victims, key=lambda s: (s.priority, -s.admit_order)
                    )
                else:
                    victim = session
                self._requeue_preempted(victim, waiting, running)
                if victim is session:
                    break
            else:
                grown.add(session.session_id)

    # ------------------------------------------------------------------
    # The serving loop
    # ------------------------------------------------------------------
    def run(self, scenario: Scenario, seed: int = 0) -> EngineTelemetry:
        """Drive a full scenario of decode sessions; returns telemetry."""
        cfg = self.config
        sessions = build_sessions(self.profile, scenario, seed)
        waiting: Dict[int, Deque[DecodeSession]] = {}
        running: List[DecodeSession] = []
        idx = 0
        t = 0.0
        name = self.profile.name
        model = self.profile.model

        while idx < len(sessions) or self._waiting_any(waiting) or running:
            if not running and not self._waiting_any(waiting):
                t = max(t, sessions[idx].arrival_time)
            while idx < len(sessions) and sessions[idx].arrival_time <= t:
                arrival = sessions[idx]
                idx += 1
                if self.kv.blocks_for(arrival.max_context_len) > self.kv.num_blocks:
                    arrival.status = RequestStatus.REJECTED
                    self.telemetry.record_rejection(arrival)
                    continue
                waiting.setdefault(arrival.priority, deque()).append(arrival)

            prefills: List[DecodeSession] = []
            if cfg.continuous or not running:
                prefills = self._admit(waiting, running, t)
            if cfg.continuous:
                self._grow_for_step(waiting, running)
                # A session admitted above but preempted during growth
                # never joins this step's batch — it must not be priced
                # as a prefill here (it pays the prefill when readmitted).
                prefills = [s for s in prefills if s in running]
            if not running:
                continue  # everything admitted got preempted; retry at t

            # Price the step: token-parallel GEMMs at the slot count plus
            # each slot's attention read.  Finished sessions padding a
            # static batch attend at their frozen final context — the
            # wasted work request-level batching pays until its longest
            # member drains.
            lens = tuple(
                s.max_context_len if s.finished else s.context_len + 1
                for s in running
            )
            prefill_lens = tuple(s.context_len for s in prefills)
            step_s = self.service.step_latency(name, lens)
            for plen in prefill_lens:
                step_s += self.service.prefill(name, plen)

            worker = self.pool.route(name, t)
            if worker is None:
                t = max(t, self.pool.next_free_time(name))
                worker = self.pool.route(name, t)
            active = sum(1 for s in running if not s.finished)
            if cfg.execute:
                outputs = worker.run_batch(
                    name, model, [s.x for s in running], t, step_s, tokens=active
                )
            else:
                outputs = None
                worker.run_booking(name, len(running), t, step_s, tokens=active)

            t_end = t + step_s
            self.clock.advance_to(t_end)
            for i, session in enumerate(running):
                if session.finished:
                    continue  # static-mode padding slot
                session.tokens_generated += 1
                if outputs is not None:
                    row = outputs[i]
                    session.outputs.append(row.copy())
                    session.x = next_token_input(row)
                if session.first_token_time is None:
                    session.first_token_time = t_end
                if session.finished:
                    session.status = RequestStatus.COMPLETED
                    session.finish_time = t_end
                    self.telemetry.record_session(session)

            self.telemetry.record_step(
                t,
                name,
                lens,
                prefill_lens,
                active,
                step_s,
                self.kv.used_blocks,
                self.kv.occupancy(),
            )

            if cfg.continuous:
                for session in [s for s in running if s.finished]:
                    self.kv.release(session.session_id)
                    running.remove(session)
            elif all(s.finished for s in running):
                for session in running:
                    self.kv.release(session.session_id)
                running.clear()
            t = t_end

        return self.telemetry

    # ------------------------------------------------------------------
    def report(self, scenario: Scenario) -> Dict[str, object]:
        """Full engine report with the analytic-model cross-check.

        Every recorded step latency is re-derived from scratch through
        ``arch.inference`` (:func:`decode_step_latency` /
        :func:`prefill_latency`), bypassing the engine's memos — drift
        between dispatch accounting and the hardware model shows up as a
        nonzero ``max_abs_error_s``.
        """
        horizon = max(scenario.duration_s, self.telemetry.makespan())
        out = self.telemetry.summary(horizon, ttft_slo_s=self.profile.ttft_slo_s)
        out["mode"] = "continuous" if self.config.continuous else "static"
        out["offered_sessions"] = scenario.num_requests
        out["kv_manager"] = self.kv.stats()
        out["workers"] = self.pool.worker_stats()
        out["programmed_cache"] = self.pool.cache_stats()

        accelerator = self.service.accelerator
        kv_spec = self.profile.kv
        shape_cache: Dict[int, list] = {}

        def shapes_at(batch: int):
            if batch not in shape_cache:
                shape_cache[batch] = model_layer_shapes(
                    self.profile.name, self.profile.model, batch
                )
            return shape_cache[batch]

        def step_fn(model, context_lens, prefill_lens):
            total = decode_step_latency(
                shapes_at(len(context_lens)), context_lens, kv_spec, accelerator
            )["step_latency_s"]
            for plen in prefill_lens:
                total += prefill_latency(
                    shapes_at(plen), plen, kv_spec, accelerator
                )
            return total

        out["analytic_consistency"] = self.telemetry.cross_check_decode_model(
            step_fn
        )
        return out


def sequential_decode_outputs(
    profile: DecodeModelProfile,
    scenario: Scenario,
    seed: int = 0,
    executor: Optional[PhotonicExecutor] = None,
) -> Dict[int, List[np.ndarray]]:
    """Reference batch-1 decode of every session (no batching at all).

    Runs each session's full recurrence alone through a fresh
    weight-static executor; the engine's per-token outputs must match
    these **bit-exactly** for every batch composition the scheduler
    formed — the correctness bar of the continuous-batching benchmark.
    """
    executor = executor or PhotonicExecutor()
    outputs: Dict[int, List[np.ndarray]] = {}
    for session in build_sessions(profile, scenario, seed):
        x = session.x
        rows: List[np.ndarray] = []
        for _ in range(session.decode_len):
            out = executor.run_sequential(profile.model, x[None, :])
            row = out[0]
            rows.append(row.copy())
            x = next_token_input(row)
        outputs[session.session_id] = rows
    return outputs
