"""Iteration-level scheduler: continuous batching over the executor pool.

:class:`TokenServingEngine` is the Orca-style serving loop: the running
batch is **re-formed at every decode step** instead of once per request
batch.  Each step it

1. admits waiting sessions (highest class first, FIFO within a class) as
   long as decode slots and KV blocks allow.  Admission consults the
   shared-prefix cache (:mod:`~repro.serve.engine.prefix` via the
   reworked refcounting :class:`~repro.serve.engine.kvcache.KVBlockManager`):
   prompt blocks already cached are *attached*, not recomputed, and only
   the **uncached suffix** is scheduled as prefill work;
2. advances prefills as **chunked** work: the uncached suffix is split
   into ``prefill_chunk_tokens`` slices that interleave with running
   decode steps (bounding the TTFT jitter a monolithic long prefill
   would inflict on co-scheduled sessions), each priced by
   :func:`~repro.arch.inference.chunked_prefill_latency` over the
   already-resident context.  A session whose suffix completes within
   the step decodes its first token in that same step — so a fully
   cached prompt costs zero GEMM time but still exactly one scheduling
   step;
3. grows every decoding session's KV residency by one token, **preempting
   the youngest lowest-class session** when the block pool runs dry.
   Preemption *decrefs* the victim's blocks — shared prefix blocks stay
   cached — so a resumed session re-attaches to its still-cached prefix
   and re-prefills only the evicted private suffix;
4. dispatches the step as **one batched GEMM stream** through a
   weight-static :class:`~repro.serve.pool.ExecutorPool` worker — the
   functional surrogate recurrence really executes, so per-token outputs
   are bit-exact against sequential batch-1 decode — while simulated
   time advances by :func:`~repro.arch.inference.decode_step_latency`
   plus the step's prefill chunks;
5. retires finished sessions immediately, freeing their private blocks
   (and returning shared ones to the cache) for the next admission.

``EngineConfig(continuous=False)`` degenerates the same loop into the
classic **static request-level** baseline: admission only when the batch
has fully drained, worst-case KV reserved up front, finished sessions
pad the batch until the longest member completes, prompts prefill
monolithically with no prefix reuse — the regime whose wasted slots,
dead reservations and duplicate prefills the continuous engine exists
to reclaim (the ``bench_continuous`` / ``bench_prefix`` headlines).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...arch.accelerator import MirageAccelerator
from ...arch.inference import (
    attention_token_latency,
    chunked_prefill_latency,
    decode_step_latency,
)
from ...arch.memory import MemorySystemModel
from ...core.pipeline import PhotonicExecutor
from ..clock import SimulatedClock, time_at_or_before
from ..faults import FaultInjector, FaultKind, FaultPlan, FleetMonitor, HealthPolicy
from ..pool import ExecutorPool
from ..request import RequestStatus
from ..runtime import ModelProfile, ServiceModel, model_layer_shapes
from ..telemetry import EngineTelemetry
from ..traffic import Scenario
from .kvcache import KVBlockManager
from .session import (
    DecodeModelProfile,
    DecodeSession,
    build_sessions,
    next_token_input,
)

__all__ = [
    "DecodeServiceModel",
    "EngineConfig",
    "TokenServingEngine",
    "sequential_decode_outputs",
]


class DecodeServiceModel(ServiceModel):
    """Analytic decode/prefill pricing, memoised for the engine hot loop.

    Extends :class:`~repro.serve.runtime.ServiceModel` (token-parallel
    batch GEMMs per (model, batch)) with more memos: the per-token
    attention read per (model, context_len) and the prefill chunk per
    (model, chunk_len, resident_context).  All reduce to
    ``arch.inference`` calls, and the accumulation order mirrors
    :func:`decode_step_latency` / :func:`chunked_prefill_latency`
    exactly, so the telemetry cross-check reproduces every recorded
    step latency bit-for-bit from scratch.
    """

    def __init__(self, accelerator: Optional[MirageAccelerator] = None):
        super().__init__(accelerator)
        self._kv: Dict[str, object] = {}
        self._attn_cache: Dict[Tuple[str, int], float] = {}
        self._chunk_cache: Dict[Tuple[str, int, int], float] = {}

    def register_decode(self, profile: DecodeModelProfile) -> None:
        self.register(ModelProfile(profile.name, profile.model))
        self._kv[profile.name] = profile.kv
        for key in [k for k in self._attn_cache if k[0] == profile.name]:
            del self._attn_cache[key]
        for key in [k for k in self._chunk_cache if k[0] == profile.name]:
            del self._chunk_cache[key]

    def kv_spec(self, model: str):
        return self._kv[model]

    def attention_latency(self, model: str, context_len: int) -> float:
        key = (model, context_len)
        if key not in self._attn_cache:
            self._attn_cache[key] = attention_token_latency(
                self._kv[model], context_len, self.accelerator
            )
        return self._attn_cache[key]

    def step_latency(self, model: str, context_lens: Sequence[int]) -> float:
        """One decode step: batched token GEMMs + per-session KV reads.

        An empty batch (a step carrying only prefill chunks) decodes
        nothing and costs nothing here — the chunks are priced
        separately by :meth:`chunked_prefill`.
        """
        if not context_lens:
            return 0.0
        token_s = self.batch_latency(model, len(context_lens))
        attention_s = 0.0
        for length in context_lens:
            attention_s += self.attention_latency(model, length)
        return token_s + attention_s

    def chunked_prefill(
        self, model: str, chunk_len: int, context_len: int
    ) -> float:
        """One prefill chunk over ``context_len`` already-resident tokens."""
        key = (model, chunk_len, context_len)
        if key not in self._chunk_cache:
            if chunk_len == 0:
                self._chunk_cache[key] = 0.0
            else:
                profile = self._profiles[model]
                shapes = model_layer_shapes(
                    model, profile.model, chunk_len, profile.input_hw
                )
                self._chunk_cache[key] = chunked_prefill_latency(
                    shapes,
                    chunk_len,
                    context_len,
                    self._kv[model],
                    self.accelerator,
                )
        return self._chunk_cache[key]

    def prefill(self, model: str, prompt_len: int) -> float:
        """Monolithic prompt pass — the single-chunk, no-context case."""
        return self.chunked_prefill(model, prompt_len, 0)


@dataclass(frozen=True)
class EngineConfig:
    """Knobs of the token serving engine.

    ``continuous=False`` switches the loop to the static request-level
    baseline (admission only on a drained batch, worst-case KV reserved
    up front, finished sessions pad until the batch completes, no
    prefix reuse or chunking).  ``preemption`` gates *admission-driven*
    priority preemption; KV-pressure requeue during decode growth is
    always allowed (the loop cannot deadlock on a full pool).

    ``prefix_caching`` lets sessions whose prompts share a head attach
    to cached KV blocks (prefill work is priced only for the uncached
    suffix); ``prefill_chunk_tokens`` caps the prefill tokens one
    session contributes to a single step (None = the whole suffix in
    one step, the pre-chunking behaviour).

    ``recovery`` gates the fault-recovery plane: with it on, sessions
    homed on a replica declared dead are preempted, their KV freed, and
    they resume elsewhere re-prefilling only what the prefix cache does
    not hold — and the dead replica is replaced (charging the
    weight-reprogram latency).  With it off the same faults strand
    their sessions as ``FAILED`` (the no-recovery baseline the
    resilience bench contrasts).  ``max_waiting`` bounds the waiting
    queue under capacity loss: beyond it the engine sheds the youngest
    waiting session of the *lowest* class (graceful degradation — batch
    traffic sheds before interactive).
    """

    max_batch_size: int = 16
    max_prefills_per_step: int = 4
    block_tokens: int = 16
    kv_fraction: float = 0.5
    preemption: bool = True
    continuous: bool = True
    execute: bool = True
    prefix_caching: bool = True
    prefill_chunk_tokens: Optional[int] = None
    recovery: bool = True
    max_waiting: Optional[int] = None

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_prefills_per_step < 1:
            raise ValueError(
                "max_prefills_per_step must be >= 1, got "
                f"{self.max_prefills_per_step}"
            )
        if self.block_tokens < 1:
            raise ValueError(
                f"block_tokens must be >= 1, got {self.block_tokens}"
            )
        if not 0.0 < self.kv_fraction <= 1.0:
            raise ValueError(
                f"kv_fraction must be in (0, 1], got {self.kv_fraction}"
            )
        if self.prefill_chunk_tokens is not None and self.prefill_chunk_tokens < 1:
            raise ValueError(
                "prefill_chunk_tokens must be >= 1 or None, got "
                f"{self.prefill_chunk_tokens}"
            )
        if self.max_waiting is not None and self.max_waiting < 1:
            raise ValueError(
                f"max_waiting must be >= 1 or None, got {self.max_waiting}"
            )


class TokenServingEngine:
    """One autoregressive serving deployment: sessions → steps → tokens.

    Use one engine instance per scenario run (KV state, cached
    prefixes, worker windows and telemetry persist across steps within
    a run, deliberately).
    """

    def __init__(
        self,
        pool: ExecutorPool,
        profile: DecodeModelProfile,
        config: Optional[EngineConfig] = None,
        accelerator: Optional[MirageAccelerator] = None,
        memory: Optional[MemorySystemModel] = None,
        health: Optional[HealthPolicy] = None,
        observability=None,
    ):
        self.pool = pool
        self.profile = profile
        self.config = config or EngineConfig()
        self.health = health or HealthPolicy()
        self.obs = observability
        registry = observability.registry if observability is not None else None
        self.tracer = observability.tracer if observability is not None else None
        self._slo = observability.slo if observability is not None else None
        self.service = DecodeServiceModel(accelerator)
        self.service.register_decode(profile)
        memory = memory or MemorySystemModel(self.service.accelerator.config)
        self.kv = KVBlockManager.from_memory_model(
            profile.kv,
            memory=memory,
            block_tokens=self.config.block_tokens,
            kv_fraction=self.config.kv_fraction,
            prefix_cache=self.config.prefix_caching and self.config.continuous,
            registry=registry,
        )
        self.clock = SimulatedClock()
        streaming = bool(getattr(observability, "streaming", False))
        self.telemetry = EngineTelemetry(registry=registry, streaming=streaming)
        if self.tracer is not None:
            pool.set_tracer(self.tracer)
        pool.place(
            profile.name, profile.model, replicas=profile.replicas, prewarm=True
        )
        self._admit_seq = itertools.count()
        # Fault plane (populated by run(..., faults=...)): session homes
        # pin each running session's KV to one replica, poisoned session
        # ids carry an uncorrectable-RRNS verdict into the next commit,
        # and recovering ids flag the next readmission as a re-prefill
        # whose cost the telemetry attributes to recovery.
        self._injector: Optional[FaultInjector] = None
        self._monitor: Optional[FleetMonitor] = None
        self._homes: Dict[int, int] = {}
        self._home_load: Dict[int, int] = {}
        self._poisoned: set = set()
        self._recovering: set = set()
        # Tracing bookkeeping: when a session started waiting (for the
        # queue_wait span closed at admission) and the loop's current
        # simulated time (for methods that are not passed ``now``).
        self._wait_since: Dict[int, float] = {}
        self._now: float = 0.0

    # ------------------------------------------------------------------
    # Waiting-queue helpers (per-class FIFO, preempted resume at head)
    # ------------------------------------------------------------------
    @staticmethod
    def _waiting_any(waiting: Dict[int, Deque[DecodeSession]]) -> bool:
        return any(waiting.values())

    @staticmethod
    def _waiting_head(
        waiting: Dict[int, Deque[DecodeSession]]
    ) -> Optional[DecodeSession]:
        for priority in sorted(waiting, reverse=True):
            if waiting[priority]:
                return waiting[priority][0]
        return None

    def _requeue_preempted(
        self,
        session: DecodeSession,
        waiting: Dict[int, Deque[DecodeSession]],
        running: List[DecodeSession],
    ) -> None:
        # Decref, never free: shared prefix blocks the victim attached
        # stay cached for their other readers (and for the victim's own
        # resume), only its private blocks return to the pool.
        self.kv.release(session.session_id)
        running.remove(session)
        self._drop_home(session.session_id)
        self._poisoned.discard(session.session_id)
        session.status = RequestStatus.PREEMPTED
        session.preemptions += 1
        session.prefill_done = 0
        session.prefill_target = 0
        waiting.setdefault(session.priority, deque()).appendleft(session)
        self.telemetry.record_preemption(session)
        if self.tracer is not None:
            self._wait_since[session.session_id] = self._now
            self.tracer.instant(
                "session", session.session_id, "preempt", self._now
            )

    # ------------------------------------------------------------------
    # Session homes (KV locality under faults)
    # ------------------------------------------------------------------
    # Compute is weight-static and routes anywhere, but a session's KV
    # blocks live on one replica — its *home*.  When the home is
    # declared dead the KV is gone and the session must recover; while
    # the home is unresponsive but not yet declared, the session stalls
    # (detection latency is real time lost, not hindsight).
    def _assign_home(self, session: DecodeSession) -> None:
        live = self.pool.live_replicas(self.profile.name)
        if not live:
            return
        home = min(live, key=lambda wid: (self._home_load.get(wid, 0), wid))
        self._homes[session.session_id] = home
        self._home_load[home] = self._home_load.get(home, 0) + 1

    def _drop_home(self, session_id: int) -> None:
        home = self._homes.pop(session_id, None)
        if home is not None:
            self._home_load[home] = self._home_load.get(home, 1) - 1

    def _home_down(self, session: DecodeSession) -> bool:
        home = self._homes.get(session.session_id)
        if home is None:
            return False
        return not self.pool.workers[home].responsive

    # ------------------------------------------------------------------
    # Fault application and recovery
    # ------------------------------------------------------------------
    def _process_faults(
        self,
        now: float,
        waiting: Dict[int, Deque[DecodeSession]],
        running: List[DecodeSession],
    ) -> None:
        """Apply due fault events, then advance failure detection."""
        if self._injector is not None:
            for event in self._injector.due(now):
                self._apply_fault(event, now, waiting, running)
        if self._monitor is not None:
            for transition in self._monitor.observe(now):
                self.telemetry.record_health_transition(transition)
                if transition["to"] == "dead":
                    self._handle_dead_replica(
                        transition["worker_id"], now, waiting, running
                    )

    def _apply_fault(
        self,
        event,
        now: float,
        waiting: Dict[int, Deque[DecodeSession]],
        running: List[DecodeSession],
    ) -> None:
        self.telemetry.record_fault(event.kind)
        if event.kind in (FaultKind.REPLICA_CRASH, FaultKind.WORKER_STUCK):
            wid = self.pool.resolve_worker(event.target)
            if wid is None:
                return
            self.pool.crash(wid, now)
            self.telemetry.record_crash(wid)
            return
        if event.kind == FaultKind.WORKER_SLOW:
            wid = self.pool.resolve_worker(event.target)
            if wid is not None:
                self.pool.slow(wid, event.severity, now + event.duration_s)
            return
        victims = sorted(running, key=lambda s: s.session_id)
        if not victims:
            return  # transient hit an idle fleet: detected, nothing corrupted
        victim = victims[event.target % len(victims)]
        if event.kind == FaultKind.TRANSIENT:
            if event.uncorrectable:
                # RRNS detected more corrupt residue channels than the
                # redundancy can correct: the step's result for this
                # session is untrusted and must be recomputed.  The
                # poison mark suppresses this step's commit (token /
                # chunk advance) for the victim — the recurrence input
                # is untouched, so the retried step is bit-identical.
                self._poisoned.add(victim.session_id)
            else:
                # Detected and corrected in-line by the redundant
                # residues: no architectural effect, just a counter.
                self.telemetry.record_transient(uncorrectable=False)
            return
        if event.kind == FaultKind.KV_LOSS:
            lost = self.kv.discard(victim.session_id)
            self.telemetry.record_kv_loss(lost)
            self._recover(victim, waiting, running, release=False)

    def _handle_dead_replica(
        self,
        wid: int,
        now: float,
        waiting: Dict[int, Deque[DecodeSession]],
        running: List[DecodeSession],
    ) -> None:
        """A replica was declared dead: rescue or fail its sessions."""
        victims = [s for s in running if self._homes.get(s.session_id) == wid]
        for victim in victims:
            if self.config.recovery:
                self._recover(victim, waiting, running, release=True)
            else:
                self.kv.release(victim.session_id)
                running.remove(victim)
                self._drop_home(victim.session_id)
                self._poisoned.discard(victim.session_id)
                victim.status = RequestStatus.FAILED
                self.telemetry.record_session_failure(victim)
                if self.tracer is not None:
                    self.tracer.instant(
                        "session", victim.session_id, "fail", now
                    )
                if self._slo is not None:
                    self._slo.observe(
                        f"class{victim.priority}", now, good=False
                    )
        if self.config.recovery:
            new_wid = self.pool.replace_worker(
                wid, now, lambda name: self.service.prewarm_latency(name)
            )
            self.telemetry.record_replacement(wid, new_wid)

    def _recover(
        self,
        session: DecodeSession,
        waiting: Dict[int, Deque[DecodeSession]],
        running: List[DecodeSession],
        release: bool = True,
    ) -> None:
        """Rescue a session off lost KV: requeue at head-of-class.

        A plain ``release`` (dead replica) leaves published prefix
        blocks cached — the cache layer survives a replica, so the
        resumed session re-prefills only its uncached suffix.  KV loss
        uses the destructive ``discard`` upstream (``release=False``
        here), which purges what it can from the cache too.
        """
        if release:
            self.kv.release(session.session_id)
        running.remove(session)
        self._drop_home(session.session_id)
        self._poisoned.discard(session.session_id)
        session.status = RequestStatus.PREEMPTED
        session.recoveries += 1
        session.prefill_done = 0
        session.prefill_target = 0
        waiting.setdefault(session.priority, deque()).appendleft(session)
        self._recovering.add(session.session_id)
        self.telemetry.record_recovery(session, 0)
        if self.tracer is not None:
            self._wait_since[session.session_id] = self._now
            self.tracer.instant(
                "session", session.session_id, "recover", self._now
            )

    def _shed_waiting(
        self, waiting: Dict[int, Deque[DecodeSession]]
    ) -> None:
        """Graceful degradation: bound the waiting queue, lowest class
        first, youngest waiter first within the class."""
        cap = self.config.max_waiting
        if cap is None:
            return
        depth = sum(len(q) for q in waiting.values())
        while depth > cap:
            priority = min(p for p, q in waiting.items() if q)
            victim = waiting[priority].pop()
            victim.status = RequestStatus.EVICTED
            self.telemetry.record_shed(victim)
            if self.tracer is not None:
                self._wait_since.pop(victim.session_id, None)
                self.tracer.instant(
                    "session", victim.session_id, "shed", self._now
                )
            if self._slo is not None:
                self._slo.observe(
                    f"class{victim.priority}", self._now, good=False
                )
            depth -= 1

    def _next_fault_horizon(
        self, now: float, sessions: List[DecodeSession], idx: int
    ) -> Optional[float]:
        """Next future instant at which a stalled fleet can change state:
        an arrival, a pending fault event, or a health transition."""
        candidates = []
        if idx < len(sessions):
            candidates.append(sessions[idx].arrival_time)
        if self._injector is not None:
            nt = self._injector.next_time()
            if nt is not None:
                candidates.append(nt)
        if self._monitor is not None:
            mt = self._monitor.next_transition_time()
            if mt is not None:
                candidates.append(mt)
        future = [c for c in candidates if c > now]
        return min(future) if future else None

    def _trace_stall(
        self, running: List[DecodeSession], t0: float, t1: float
    ) -> None:
        """Cover a dead interval on every in-flight session's timeline."""
        if self.tracer is None or not t1 > t0:
            return
        for s in running:
            if not s.finished:
                self.tracer.span(
                    "session", s.session_id, "stall", t0, t1, category="stall"
                )

    def _fail_stranded(
        self,
        waiting: Dict[int, Deque[DecodeSession]],
        running: List[DecodeSession],
    ) -> None:
        """Terminal path for a permanently dead fleet (recovery off):
        every in-flight and waiting session fails instead of stranding
        the loop."""
        for session in list(running):
            self.kv.release(session.session_id)
            running.remove(session)
            self._drop_home(session.session_id)
            self._poisoned.discard(session.session_id)
            session.status = RequestStatus.FAILED
            self.telemetry.record_session_failure(session)
            if self.tracer is not None:
                self.tracer.instant(
                    "session", session.session_id, "fail", self._now
                )
            if self._slo is not None:
                self._slo.observe(
                    f"class{session.priority}", self._now, good=False
                )
        for q in waiting.values():
            while q:
                session = q.popleft()
                session.status = RequestStatus.FAILED
                self.telemetry.record_session_failure(session)
                if self.tracer is not None:
                    self._wait_since.pop(session.session_id, None)
                    self.tracer.instant(
                        "session", session.session_id, "fail", self._now
                    )
                if self._slo is not None:
                    self._slo.observe(
                        f"class{session.priority}", self._now, good=False
                    )

    # ------------------------------------------------------------------
    # Admission (prefix attach + prefill scheduling)
    # ------------------------------------------------------------------
    def _admit(
        self,
        waiting: Dict[int, Deque[DecodeSession]],
        running: List[DecodeSession],
        now: float,
    ) -> List[DecodeSession]:
        """Admit waiting sessions into the running batch at time ``now``.

        Continuous mode reserves the *actual* context (prompt +
        generated so far, plus one slot for the step's new token),
        attaching cached prefix blocks where the prompt's head is
        already resident, and may preempt strictly-lower-class running
        sessions to make room; static mode reserves the worst-case
        ``prompt + decode`` span cold and never preempts (the whole
        point of comparing the two).  Admission stops at the first
        head-of-class that does not fit, so per-class FIFO order is
        never reordered by size.  An admitted session's prefill state
        is (re)initialised here: ``prefill_target`` is the context to
        rebuild, ``prefill_done`` starts at the cached prefix length.
        """
        admitted: List[DecodeSession] = []
        cfg = self.config
        # max_prefills_per_step bounds the prefill work a single
        # iteration-level step absorbs; static request-level batching has
        # no such concept — it fills the whole batch on drain.
        prefill_cap = (
            cfg.max_prefills_per_step if cfg.continuous else cfg.max_batch_size
        )
        use_prefix = cfg.continuous and cfg.prefix_caching
        while (
            len(running) < cfg.max_batch_size
            and len(admitted) < prefill_cap
        ):
            candidate = self._waiting_head(waiting)
            if candidate is None:
                break
            tokens = (
                candidate.context_len + 1
                if cfg.continuous
                else candidate.max_context_len
            )
            prompt_tokens = candidate.prompt_tokens if use_prefix else None
            reserved = self.kv.reserve(
                candidate.session_id, tokens, prompt_tokens=prompt_tokens
            )
            if not reserved and cfg.continuous and cfg.preemption:
                self._preempt_for_admission(
                    candidate, tokens, prompt_tokens, waiting, running
                )
                reserved = self.kv.reserve(
                    candidate.session_id, tokens, prompt_tokens=prompt_tokens
                )
            if not reserved:
                break
            waiting[candidate.priority].popleft()
            candidate.status = RequestStatus.RUNNING
            if candidate.admit_time is None:
                candidate.admit_time = now
            candidate.admit_order = next(self._admit_seq)
            cached = self.kv.session_cached_tokens(candidate.session_id)
            candidate.prefill_target = candidate.context_len
            candidate.prefill_done = min(cached, candidate.prefill_target)
            candidate.cached_prompt_tokens += candidate.prefill_done
            if prompt_tokens is not None:
                self.telemetry.record_prefix(
                    len(prompt_tokens), candidate.prefill_done
                )
            running.append(candidate)
            admitted.append(candidate)
            if self._injector is not None:
                self._assign_home(candidate)
                if candidate.session_id in self._recovering:
                    # The recovery re-prefill bill, measured *after* the
                    # prefix attach: only the suffix the cache could not
                    # supply is charged to recovery.
                    self._recovering.discard(candidate.session_id)
                    self.telemetry.recovery_reprefill_tokens += (
                        candidate.prefill_target - candidate.prefill_done
                    )
        return admitted

    def _preempt_for_admission(
        self,
        candidate: DecodeSession,
        tokens: int,
        prompt_tokens,
        waiting: Dict[int, Deque[DecodeSession]],
        running: List[DecodeSession],
    ) -> None:
        """Evict strictly-lower-class running sessions for ``candidate``.

        ``need`` is the candidate's footprint in *free-capacity* terms:
        cached prompt blocks already pinned by running sessions attach
        for free, so they are excluded — sizing by the raw block count
        would over-preempt (or hopelessly stall) exactly the
        shared-prefix fleets this cache serves.  (Idle matched blocks
        still count: attaching them consumes reclaimable capacity.  If
        a victim was a matched block's only pinner, releasing it both
        grows ``free_blocks`` and un-pins that block by one — the two
        effects cancel, so the fixed ``need`` stays exact.)  Victims
        are taken lowest class first, youngest admission first (least
        sunk prefill work), and only if evicting every eligible victim
        could make the reservation fit — a hopeless preemption spree
        would shed work without admitting anyone.  The reclaimable
        estimate counts victims' table sizes, which is optimistic when
        victims share prefix blocks with survivors (shared blocks stay
        pinned); the subsequent ``reserve`` remains the ground truth.
        """
        need = self.kv.blocks_for(tokens) - self.kv.attachable_pinned_blocks(
            prompt_tokens
        )
        victims = sorted(
            (s for s in running if s.priority < candidate.priority),
            key=lambda s: (s.priority, -s.admit_order),
        )
        reclaimable = self.kv.free_blocks + sum(
            self.kv.blocks_for(self.kv.resident_tokens(s.session_id))
            for s in victims
        )
        if reclaimable < need:
            return
        for victim in victims:
            if self.kv.free_blocks >= need:
                break
            self._requeue_preempted(victim, waiting, running)

    # ------------------------------------------------------------------
    # KV growth (one token per decoding session, preempt under pressure)
    # ------------------------------------------------------------------
    def _grow_for_step(
        self,
        waiting: Dict[int, Deque[DecodeSession]],
        running: List[DecodeSession],
        growers: Sequence[DecodeSession],
    ) -> None:
        """Extend each decoding session's residency for this step's token.

        ``growers`` are the sessions decoding this step — sessions still
        mid-prefill reserved their full context at admission and grow
        nothing.  Highest class grows first (oldest admission breaking
        ties).  A session that cannot grow preempts the youngest
        not-yet-grown strictly-lower-class *running* session (prefilling
        sessions are eligible victims); with no such victim it preempts
        *itself* — backpressure requeue, which is why the loop cannot
        deadlock on a full block pool.
        """
        order = sorted(
            list(growers),
            key=lambda s: (-s.priority, s.admit_order),
        )
        grown: set = set()
        for session in order:
            if session not in running:
                continue  # preempted as a victim earlier in this pass
            while not self.kv.grow_to(session.session_id, session.context_len + 1):
                victims = [
                    s
                    for s in running
                    if s is not session
                    and s.session_id not in grown
                    and s.priority < session.priority
                ]
                if victims:
                    victim = min(
                        victims, key=lambda s: (s.priority, -s.admit_order)
                    )
                else:
                    victim = session
                self._requeue_preempted(victim, waiting, running)
                if victim is session:
                    break
            else:
                grown.add(session.session_id)

    # ------------------------------------------------------------------
    # The serving loop
    # ------------------------------------------------------------------
    def run(
        self,
        scenario: Scenario,
        seed: int = 0,
        faults: Optional[FaultPlan] = None,
    ) -> EngineTelemetry:
        """Drive a full scenario of decode sessions; returns telemetry.

        ``faults`` replays a deterministic :class:`FaultPlan` against
        the run: replica crashes and stuck/slow workers (worker kinds),
        plus RRNS transient compute faults and KV-block loss (session
        kinds).  Fault injection requires the continuous engine — the
        static baseline has no preemption machinery to recover with.
        """
        cfg = self.config
        if faults is not None:
            if not cfg.continuous:
                raise ValueError(
                    "fault injection requires the continuous engine "
                    "(EngineConfig.continuous=True)"
                )
            self._injector = FaultInjector(faults)
            self._monitor = FleetMonitor(self.pool, self.health)
            self._monitor.tracer = self.tracer
        sessions = build_sessions(self.profile, scenario, seed)
        waiting: Dict[int, Deque[DecodeSession]] = {}
        running: List[DecodeSession] = []
        idx = 0
        t = 0.0
        name = self.profile.name
        model = self.profile.model

        while idx < len(sessions) or self._waiting_any(waiting) or running:
            if not running and not self._waiting_any(waiting):
                t_next = sessions[idx].arrival_time
                if self._injector is not None:
                    # An idle fleet still ages: pending faults and
                    # health transitions fire at their own times, not
                    # lazily at the next arrival.
                    for cand in (
                        self._injector.next_time(),
                        self._monitor.next_transition_time(),
                    ):
                        if cand is not None and cand > t:
                            t_next = min(t_next, cand)
                t = max(t, t_next)
            while idx < len(sessions) and time_at_or_before(
                sessions[idx].arrival_time, t
            ):
                arrival = sessions[idx]
                idx += 1
                if self.kv.blocks_for(arrival.max_context_len) > self.kv.num_blocks:
                    arrival.status = RequestStatus.REJECTED
                    self.telemetry.record_rejection(arrival)
                    if self.tracer is not None:
                        self.tracer.instant(
                            "session", arrival.session_id, "reject", t
                        )
                    if self._slo is not None:
                        self._slo.observe(
                            f"class{arrival.priority}", t, good=False
                        )
                    continue
                waiting.setdefault(arrival.priority, deque()).append(arrival)
                if self.tracer is not None:
                    self._wait_since[arrival.session_id] = arrival.arrival_time
                    self.tracer.instant(
                        "session",
                        arrival.session_id,
                        "enqueue",
                        arrival.arrival_time,
                    )
            self._now = t

            if self._injector is not None:
                self._process_faults(t, waiting, running)
                self._shed_waiting(waiting)

            if cfg.continuous or not running:
                admitted = self._admit(waiting, running, t)
                if self.tracer is not None and admitted:
                    for s in admitted:
                        t0 = self._wait_since.pop(
                            s.session_id, s.arrival_time
                        )
                        self.tracer.span(
                            "session",
                            s.session_id,
                            "queue_wait",
                            t0,
                            t,
                            category="queue",
                        )
                        self.tracer.instant("session", s.session_id, "admit", t)

            # Plan this step's prefill chunks (applied only after the
            # growth pass settles preemption): each session mid-prefill
            # advances by at most prefill_chunk_tokens of its uncached
            # suffix, attending over everything resident so far.
            chunk_cap = cfg.prefill_chunk_tokens if cfg.continuous else None
            # Sessions homed on an unresponsive replica are *stalled*:
            # their KV is unreachable, so they neither prefill nor
            # decode until the monitor declares the replica dead and
            # recovery re-homes them.  Detection latency is real time
            # those sessions lose.
            stalled: set = set()
            if self._injector is not None:
                stalled = {
                    s.session_id for s in running if self._home_down(s)
                }
            plan: List[Tuple[DecodeSession, int, int]] = []
            for s in running:
                if s.prefilling and s.session_id not in stalled:
                    q = s.prefill_target - s.prefill_done
                    if chunk_cap is not None:
                        q = min(q, chunk_cap)
                    plan.append((s, s.prefill_done, q))
            done_after = {s.session_id: s.prefill_done + q for s, _, q in plan}

            if cfg.continuous:
                # Sessions whose prefill completes within this step
                # decode in this same step (a fully cached prompt costs
                # zero GEMM time but still one scheduling step).
                decoders = [
                    s
                    for s in running
                    if s.session_id not in stalled
                    and done_after.get(s.session_id, s.prefill_done)
                    >= s.prefill_target
                ]
                self._grow_for_step(waiting, running, decoders)
                # A session admitted above but preempted during growth
                # never joins this step's batch — its chunk must not be
                # priced (it re-prefills when readmitted).
                plan = [(s, c, q) for s, c, q in plan if s in running]
                decoders = [s for s in decoders if s in running]
            else:
                decoders = list(running)
            if not running:
                continue  # everything admitted got preempted; retry at t
            if self._injector is not None and not decoders and not plan:
                # Every runnable session is stalled behind undetected
                # failures: nothing can execute at t, so jump to the
                # next event that changes the picture (arrival, fault,
                # or health transition) instead of spinning a zero-cost
                # step forever.
                horizon = self._next_fault_horizon(t, sessions, idx)
                if horizon is None:
                    self._fail_stranded(waiting, running)
                    break
                self._trace_stall(running, t, horizon)
                t = horizon
                continue

            # An uncorrectable RRNS verdict poisons its victim's share
            # of this step: the work is still priced (the photonic
            # pass really ran, then failed residue checking), but its
            # result is discarded — no chunk advance, no token commit —
            # and the identical inputs recompute it next step.
            retried: set = set()
            for s, _, q in plan:
                if s.session_id in self._poisoned:
                    retried.add(s.session_id)
                    self.telemetry.record_transient(
                        uncorrectable=True, tokens_retried=q
                    )
                    continue
                s.prefill_done += q
                # A completed prefill makes its prompt blocks attachable:
                # publication waits for the chunks that compute the KV,
                # so followers never share state that does not exist yet
                # on the simulated timeline.
                if (
                    not s.prefilling
                    and s.prompt_tokens is not None
                    and self.kv.prefix is not None
                ):
                    self.kv.publish(s.session_id, s.prompt_tokens)

            # Price the step: token-parallel GEMMs at the decode slot
            # count plus each slot's attention read, plus this step's
            # prefill chunks over their resident contexts.  Finished
            # sessions padding a static batch attend at their frozen
            # final context — the wasted work request-level batching
            # pays until its longest member drains.
            if cfg.continuous:
                lens = tuple(s.context_len + 1 for s in decoders)
            else:
                lens = tuple(
                    s.max_context_len if s.finished else s.context_len + 1
                    for s in decoders
                )
            chunks = tuple((c, q) for _, c, q in plan)
            step_s = self.service.step_latency(name, lens)
            for c, q in chunks:
                step_s += self.service.chunked_prefill(name, q, c)

            t_route = t
            worker = self.pool.route(name, t)
            if worker is None:
                t = max(t, self.pool.next_free_time(name))
                worker = self.pool.route(name, t)
            if worker is None:
                # Total fleet outage (every replica dead or silent):
                # wait for the next fault/health event — a replacement
                # may restore capacity — or fail everything stranded
                # when no such event is coming.
                horizon = self._next_fault_horizon(t, sessions, idx)
                if horizon is None:
                    self._fail_stranded(waiting, running)
                    break
                self._trace_stall(running, t_route, horizon)
                t = horizon
                continue
            # The index the upcoming record_step call will occupy,
            # stamped on this step's spans so analysis can join a span
            # back to its exact telemetry record.
            step_id = self.telemetry.steps_count()
            step_args = {"step": step_id}
            if self.tracer is not None and t > t_route:
                # Every replica was busy: the whole step queued behind
                # the pool until a worker freed up.
                for s in running:
                    if not s.finished:
                        self.tracer.span(
                            "session",
                            s.session_id,
                            "dispatch_wait",
                            t_route,
                            t,
                            category="queue",
                            args=step_args,
                        )
            self._now = t
            # A degraded (slow) worker stretches the wall-clock booking
            # without changing the analytic step cost: the nominal
            # step_s keeps the cross-check exact, the stall is reported
            # separately.
            booked_s = step_s * worker.service_scale(t)
            stall_s = booked_s - step_s
            active = sum(1 for s in decoders if not s.finished)
            if cfg.execute and decoders:
                outputs = worker.run_batch(
                    name, model, [s.x for s in decoders], t, booked_s, tokens=active
                )
            else:
                outputs = None
                worker.run_booking(name, len(decoders), t, booked_s, tokens=active)

            t_end = t + booked_s
            self.clock.advance_to(t_end)
            if self.tracer is not None:
                # Phase spans, emitted against pre-commit state so a
                # session finishing inside this step still gets its
                # final span.  Every non-finished running session is
                # stalled, prefilling, or decoding — the three cover
                # [t, t_end] with no gap.
                plan_ids = {s.session_id for s, _, _ in plan}
                decoder_ids = {s.session_id for s in decoders}
                # Prefill spans carry their chunk geometry (resident
                # context + chunk length) alongside the step id — the
                # exact inputs the attribution layer re-prices.
                chunk_args = {
                    s.session_id: {"step": step_id, "context": c, "chunk": q}
                    for s, c, q in plan
                }
                for s in running:
                    if s.finished:
                        continue
                    sid = s.session_id
                    if sid in stalled:
                        phase = "stall"
                    elif sid in plan_ids:
                        phase = "prefill"
                    elif sid in decoder_ids:
                        phase = "decode"
                    else:
                        phase = "stall"
                    self.tracer.span(
                        "session",
                        sid,
                        phase,
                        t,
                        t_end,
                        category=phase,
                        args=chunk_args.get(sid, step_args),
                    )
            for i, session in enumerate(decoders):
                if session.finished:
                    continue  # static-mode padding slot
                if session.session_id in self._poisoned:
                    if session.session_id not in retried:
                        retried.add(session.session_id)
                        self.telemetry.record_transient(
                            uncorrectable=True, tokens_retried=1
                        )
                    continue
                session.tokens_generated += 1
                if outputs is not None:
                    row = outputs[i]
                    session.outputs.append(row.copy())
                    session.x = next_token_input(row)
                if session.first_token_time is None:
                    session.first_token_time = t_end
                    if self.tracer is not None:
                        self.tracer.instant(
                            "session", session.session_id, "first_token", t_end
                        )
                if session.finished:
                    session.status = RequestStatus.COMPLETED
                    session.finish_time = t_end
                    self.telemetry.record_session(session)
                    if self.tracer is not None:
                        self.tracer.instant(
                            "session", session.session_id, "retire", t_end
                        )
                    if self._slo is not None:
                        slo_s = self.profile.ttft_slo_s
                        self._slo.observe(
                            f"class{session.priority}",
                            t_end,
                            good=slo_s is None or session.ttft <= slo_s,
                        )
            self._poisoned -= retried

            self.telemetry.record_step(
                t,
                name,
                lens,
                chunks,
                active,
                step_s,
                self.kv.used_blocks,
                self.kv.occupancy(),
                stall_s=stall_s,
            )

            if cfg.continuous:
                for session in [s for s in running if s.finished]:
                    self.kv.release(session.session_id)
                    running.remove(session)
                    self._drop_home(session.session_id)
            elif all(s.finished for s in running):
                for session in running:
                    self.kv.release(session.session_id)
                running.clear()
            t = t_end

        return self.telemetry

    # ------------------------------------------------------------------
    def report(self, scenario: Scenario) -> Dict[str, object]:
        """Full engine report with the analytic-model cross-check.

        Every recorded step latency is re-derived from scratch through
        ``arch.inference`` (:func:`decode_step_latency` /
        :func:`chunked_prefill_latency`), bypassing the engine's memos —
        drift between dispatch accounting and the hardware model shows
        up as a nonzero ``max_abs_error_s``.  The check covers chunked
        steps: each recorded (resident_context, chunk_len) pair reprices
        independently.
        """
        horizon = max(scenario.duration_s, self.telemetry.makespan())
        out = self.telemetry.summary(horizon, ttft_slo_s=self.profile.ttft_slo_s)
        out["mode"] = "continuous" if self.config.continuous else "static"
        out["offered_sessions"] = scenario.num_requests
        out["kv_manager"] = self.kv.stats()
        out["workers"] = self.pool.worker_stats()
        out["programmed_cache"] = self.pool.cache_stats()

        accelerator = self.service.accelerator
        kv_spec = self.profile.kv
        shape_cache: Dict[int, list] = {}

        def shapes_at(batch: int):
            if batch not in shape_cache:
                shape_cache[batch] = model_layer_shapes(
                    self.profile.name, self.profile.model, batch
                )
            return shape_cache[batch]

        def step_fn(model, context_lens, prefill_chunks):
            total = 0.0
            if context_lens:
                total += decode_step_latency(
                    shapes_at(len(context_lens)),
                    context_lens,
                    kv_spec,
                    accelerator,
                )["step_latency_s"]
            for ctx, chunk in prefill_chunks:
                total += chunked_prefill_latency(
                    shapes_at(chunk), chunk, ctx, kv_spec, accelerator
                )
            return total

        out["analytic_consistency"] = self.telemetry.cross_check_decode_model(
            step_fn
        )
        return out


def sequential_decode_outputs(
    profile: DecodeModelProfile,
    scenario: Scenario,
    seed: int = 0,
    executor: Optional[PhotonicExecutor] = None,
) -> Dict[int, List[np.ndarray]]:
    """Reference batch-1 decode of every session (no batching at all).

    Runs each session's full recurrence alone through a fresh
    weight-static executor; the engine's per-token outputs must match
    these **bit-exactly** for every batch composition the scheduler
    formed — and regardless of prefix caching or chunking, since KV
    reuse changes *when* prefill work is priced, never *what* the
    decode recurrence computes.
    """
    executor = executor or PhotonicExecutor()
    outputs: Dict[int, List[np.ndarray]] = {}
    for session in build_sessions(profile, scenario, seed):
        x = session.x
        rows: List[np.ndarray] = []
        for _ in range(session.decode_len):
            out = executor.run_sequential(profile.model, x[None, :])
            row = out[0]
            rows.append(row.copy())
            x = next_token_input(row)
        outputs[session.session_id] = rows
    return outputs
