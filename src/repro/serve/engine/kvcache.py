"""Block-granular KV-cache memory manager (vLLM-style paging, analytic).

The engine tracks each session's KV residency in fixed-size **blocks**
of ``block_tokens`` tokens — allocation, per-token growth and release
all move whole blocks, so fragmentation is bounded to one partial block
per session and "does this prefill fit" is a single integer compare.

Capacity is not a free parameter: :meth:`KVBlockManager.from_memory_model`
derives the block budget from the accelerator's analytic memory system
(:class:`~repro.arch.memory.MemorySystemModel` over
:class:`~repro.arch.config.MirageConfig`): a ``kv_fraction`` share of
the per-type SRAM (the activation array holds KV between decode steps)
divided by the model's per-token KV footprint
(:class:`~repro.nn.attention.KVCacheSpec.bytes_per_token`).  The
scheduler preempts low-priority sessions when a grow or prefill cannot
be served — the manager itself only accounts, it never exceeds its
budget (``used_blocks <= num_blocks`` is an invariant the benchmarks
assert).
"""

from __future__ import annotations

from typing import Dict, Optional

from ...arch.memory import MemorySystemModel
from ...nn.attention import KVCacheSpec

__all__ = ["KVBlockManager"]


class KVBlockManager:
    """Block allocator for session KV state with occupancy telemetry."""

    def __init__(
        self,
        num_blocks: int,
        block_tokens: int,
        bytes_per_token: Optional[int] = None,
    ):
        if num_blocks < 1:
            raise ValueError(f"num_blocks must be >= 1, got {num_blocks}")
        if block_tokens < 1:
            raise ValueError(f"block_tokens must be >= 1, got {block_tokens}")
        if bytes_per_token is not None and bytes_per_token < 1:
            raise ValueError(
                f"bytes_per_token must be >= 1, got {bytes_per_token}"
            )
        self.num_blocks = num_blocks
        self.block_tokens = block_tokens
        self.bytes_per_token = bytes_per_token
        self._tokens: Dict[int, int] = {}  # session_id -> resident tokens
        self._blocks: Dict[int, int] = {}  # session_id -> blocks held
        self.used_blocks = 0
        self.peak_blocks = 0
        self.reserves = 0
        self.releases = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_memory_model(
        cls,
        kv: KVCacheSpec,
        memory: Optional[MemorySystemModel] = None,
        block_tokens: int = 16,
        kv_fraction: float = 0.5,
    ) -> "KVBlockManager":
        """Size the block pool from the analytic memory model.

        ``kv_fraction`` is the share of one SRAM type's capacity
        (``MirageConfig.sram_bytes``) granted to KV residency; the rest
        stays working memory for the streaming activations the
        interleaved digital pipeline reads each cycle.
        """
        if not 0.0 < kv_fraction <= 1.0:
            raise ValueError(
                f"kv_fraction must be in (0, 1], got {kv_fraction}"
            )
        memory = memory or MemorySystemModel()
        budget_bytes = int(memory.config.sram_bytes * kv_fraction)
        block_bytes = block_tokens * kv.bytes_per_token
        num_blocks = budget_bytes // block_bytes
        if num_blocks < 1:
            raise ValueError(
                f"KV budget {budget_bytes} B cannot hold one "
                f"{block_bytes} B block (block_tokens={block_tokens}, "
                f"bytes/token={kv.bytes_per_token}); shrink the model or "
                "the block size"
            )
        return cls(num_blocks, block_tokens, bytes_per_token=kv.bytes_per_token)

    # ------------------------------------------------------------------
    def blocks_for(self, tokens: int) -> int:
        """Blocks needed to hold ``tokens`` tokens (ceiling division)."""
        if tokens < 0:
            raise ValueError(f"tokens must be >= 0, got {tokens}")
        return -(-tokens // self.block_tokens)

    @property
    def free_blocks(self) -> int:
        return self.num_blocks - self.used_blocks

    def holds(self, session_id: int) -> bool:
        return session_id in self._blocks

    def resident_tokens(self, session_id: int) -> int:
        return self._tokens.get(session_id, 0)

    def occupancy(self) -> float:
        return self.used_blocks / self.num_blocks

    @property
    def budget_bytes(self) -> Optional[int]:
        if self.bytes_per_token is None:
            return None
        return self.num_blocks * self.block_tokens * self.bytes_per_token

    def used_bytes(self) -> Optional[int]:
        """Bytes actually pinned by resident tokens (sub-block exact)."""
        if self.bytes_per_token is None:
            return None
        return sum(self._tokens.values()) * self.bytes_per_token

    # ------------------------------------------------------------------
    def can_reserve(self, tokens: int) -> bool:
        return self.blocks_for(tokens) <= self.free_blocks

    def reserve(self, session_id: int, tokens: int) -> bool:
        """Allocate a fresh residency of ``tokens`` tokens (prefill).

        Returns False (allocating nothing) when the pool cannot hold it
        — the scheduler then decides between waiting and preempting.
        """
        if session_id in self._blocks:
            raise ValueError(f"session {session_id} already holds KV blocks")
        need = self.blocks_for(tokens)
        if need > self.free_blocks:
            return False
        self._tokens[session_id] = tokens
        self._blocks[session_id] = need
        self.used_blocks += need
        self.peak_blocks = max(self.peak_blocks, self.used_blocks)
        self.reserves += 1
        return True

    def grow_to(self, session_id: int, tokens: int) -> bool:
        """Extend a session's residency to ``tokens`` tokens (decode).

        Most decode steps stay inside the session's last partial block
        and cost nothing; crossing a block boundary claims one more
        block.  Returns False (state unchanged) when the pool is out of
        blocks — the preemption trigger.
        """
        if session_id not in self._blocks:
            raise KeyError(f"session {session_id} holds no KV blocks")
        if tokens < self._tokens[session_id]:
            raise ValueError(
                f"KV residency cannot shrink: {tokens} < "
                f"{self._tokens[session_id]} (release and re-prefill instead)"
            )
        extra = self.blocks_for(tokens) - self._blocks[session_id]
        if extra > self.free_blocks:
            return False
        self._tokens[session_id] = tokens
        self._blocks[session_id] += extra
        self.used_blocks += extra
        self.peak_blocks = max(self.peak_blocks, self.used_blocks)
        return True

    def release(self, session_id: int) -> int:
        """Free a session's blocks (finish or preemption); returns count."""
        if session_id not in self._blocks:
            raise KeyError(f"session {session_id} holds no KV blocks")
        freed = self._blocks.pop(session_id)
        del self._tokens[session_id]
        self.used_blocks -= freed
        self.releases += 1
        return freed

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        return {
            "num_blocks": self.num_blocks,
            "block_tokens": self.block_tokens,
            "used_blocks": self.used_blocks,
            "peak_blocks": self.peak_blocks,
            "peak_occupancy": self.peak_blocks / self.num_blocks,
            "reserves": self.reserves,
            "releases": self.releases,
        }
