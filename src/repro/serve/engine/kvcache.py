"""Block-granular KV-cache manager with shared-prefix reference counting.

The engine tracks each session's KV residency in fixed-size **blocks**
of ``block_tokens`` tokens.  Since the shared-prefix rework each session
owns an ordered *block table* of physical block ids and every block
carries a **reference count**: sessions whose prompts share a head
attach to the same physical blocks (the head's KV is computed once),
and a block is reclaimed only when its refcount is zero.

The sharing machinery (enabled per manager via ``prefix_cache``):

* **Prefix attach** — :meth:`reserve` with ``prompt_tokens`` consults
  the :class:`~repro.serve.engine.prefix.RadixPrefixIndex`: every
  cached full block of the prompt's head is attached (incref) instead
  of allocated, and the matched token count is recorded so the
  scheduler prices only the *uncached suffix* of the prefill.
* **Copy-on-write on divergence** — when the prompt agrees with a
  cached block on only part of its tokens, the block is not attached
  (other readers depend on its content); the overlapping tokens' KV is
  copied into the session's fresh private block instead
  (``cow_copies``), still saving their recompute.
* **Publish on prefill completion** — a session's full prompt blocks
  enter the index via :meth:`publish` only once the scheduler has run
  the prefill chunks that compute them, so followers never attach KV
  the simulated timeline says does not exist yet.
* **Decref, not free** — :meth:`release` (finish *and* preemption)
  decrements every table entry.  A published block whose refcount drops
  to zero stays **cached** in the index (its KV is retained and
  re-attachable) and joins the LRU pool; unpublished private blocks
  (partial tails, decode growth, CoW copies) return to the free list.
* **Eviction at refcount 0 only** — allocation falls back to evicting
  the least-recently-used unreferenced cached leaf; referenced blocks
  are never evicted, so attaching sessions can trust their prefix.

Capacity is not a free parameter: :meth:`KVBlockManager.from_memory_model`
derives the block budget from the accelerator's analytic memory system
(:class:`~repro.arch.memory.MemorySystemModel` over
:class:`~repro.arch.config.MirageConfig`): a ``kv_fraction`` share of
the per-type SRAM divided by the model's per-token KV footprint
(:class:`~repro.nn.attention.KVCacheSpec.bytes_per_token`).  The
invariant the benchmarks assert — pinned + cached + free blocks always
equals ``num_blocks`` and never exceeds the budget — is checked by
:meth:`check_invariants`; :meth:`refcounts_balanced` is the drain-time
proof that every reserve was matched by a release.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ...arch.memory import MemorySystemModel
from ...nn.attention import KVCacheSpec
from .prefix import RadixPrefixIndex

__all__ = ["KVBlockManager"]


class KVBlockManager:
    """Refcounted block allocator with radix prefix reuse and telemetry."""

    def __init__(
        self,
        num_blocks: int,
        block_tokens: int,
        bytes_per_token: Optional[int] = None,
        prefix_cache: bool = True,
        registry=None,
    ):
        if num_blocks < 1:
            raise ValueError(f"num_blocks must be >= 1, got {num_blocks}")
        if block_tokens < 1:
            raise ValueError(f"block_tokens must be >= 1, got {block_tokens}")
        if bytes_per_token is not None and bytes_per_token < 1:
            raise ValueError(
                f"bytes_per_token must be >= 1, got {bytes_per_token}"
            )
        self.num_blocks = num_blocks
        self.block_tokens = block_tokens
        self.bytes_per_token = bytes_per_token
        self.prefix: Optional[RadixPrefixIndex] = (
            RadixPrefixIndex(block_tokens) if prefix_cache else None
        )
        # Pop order is ascending block id; purely cosmetic determinism.
        self._free: List[int] = list(range(num_blocks - 1, -1, -1))
        self._ref: Dict[int, int] = {}  # block_id -> references (> 0)
        self._tables: Dict[int, List[int]] = {}  # session_id -> block ids
        self._tokens: Dict[int, int] = {}  # session_id -> resident tokens
        self._cached: Dict[int, int] = {}  # session_id -> prefix tokens reused
        self.used_blocks = 0  # distinct blocks with ref > 0
        self.peak_blocks = 0
        self.reserves = 0
        self.releases = 0
        self.cow_copies = 0
        self.prefix_evictions = 0  # cached prefix blocks reclaimed by LRU
        self._tick = 0  # LRU clock (monotonic operation counter)
        # Optional observability registry: mirror the lifecycle counters
        # as Prometheus-exportable metrics (children cached, so the hot
        # path stays one attribute bump).
        if registry is not None:
            self._m_reserves = registry.counter(
                "kv_reserves_total", "KV block-table reservations"
            ).labels()
            self._m_releases = registry.counter(
                "kv_releases_total", "KV block-table releases"
            ).labels()
            self._m_cow = registry.counter(
                "kv_cow_copies_total", "Copy-on-write block copies"
            ).labels()
            self._m_evictions = registry.counter(
                "kv_prefix_evictions_total",
                "Cached prefix blocks evicted by LRU pressure",
            ).labels()
        else:
            self._m_reserves = None
            self._m_releases = None
            self._m_cow = None
            self._m_evictions = None

    # ------------------------------------------------------------------
    @classmethod
    def from_memory_model(
        cls,
        kv: KVCacheSpec,
        memory: Optional[MemorySystemModel] = None,
        block_tokens: int = 16,
        kv_fraction: float = 0.5,
        prefix_cache: bool = True,
        registry=None,
    ) -> "KVBlockManager":
        """Size the block pool from the analytic memory model.

        ``kv_fraction`` is the share of one SRAM type's capacity
        (``MirageConfig.sram_bytes``) granted to KV residency; the rest
        stays working memory for the streaming activations the
        interleaved digital pipeline reads each cycle.
        """
        if not 0.0 < kv_fraction <= 1.0:
            raise ValueError(
                f"kv_fraction must be in (0, 1], got {kv_fraction}"
            )
        memory = memory or MemorySystemModel()
        budget_bytes = int(memory.config.sram_bytes * kv_fraction)
        block_bytes = block_tokens * kv.bytes_per_token
        num_blocks = budget_bytes // block_bytes
        if num_blocks < 1:
            raise ValueError(
                f"KV budget {budget_bytes} B cannot hold one "
                f"{block_bytes} B block (block_tokens={block_tokens}, "
                f"bytes/token={kv.bytes_per_token}); shrink the model or "
                "the block size"
            )
        return cls(
            num_blocks,
            block_tokens,
            bytes_per_token=kv.bytes_per_token,
            prefix_cache=prefix_cache,
            registry=registry,
        )

    # ------------------------------------------------------------------
    def blocks_for(self, tokens: int) -> int:
        """Blocks needed to hold ``tokens`` tokens (ceiling division)."""
        if tokens < 0:
            raise ValueError(f"tokens must be >= 0, got {tokens}")
        return -(-tokens // self.block_tokens)

    @property
    def cached_blocks(self) -> int:
        """Unreferenced published blocks retained for prefix reuse."""
        return self.prefix.cached_blocks if self.prefix is not None else 0

    @property
    def free_blocks(self) -> int:
        """Blocks an allocation can claim: never-used plus evictable cached."""
        return self.num_blocks - self.used_blocks

    def holds(self, session_id: int) -> bool:
        return session_id in self._tables

    def resident_tokens(self, session_id: int) -> int:
        return self._tokens.get(session_id, 0)

    def block_table(self, session_id: int) -> List[int]:
        """The session's physical block ids, prefix head first (a copy)."""
        if session_id not in self._tables:
            raise KeyError(
                f"session {session_id} holds no KV blocks "
                "(unknown or already released)"
            )
        return list(self._tables[session_id])

    def ref_count(self, block_id: int) -> int:
        return self._ref.get(block_id, 0)

    def session_cached_tokens(self, session_id: int) -> int:
        """Prompt tokens this session's last reserve served from cache."""
        return self._cached.get(session_id, 0)

    def occupancy(self) -> float:
        return self.used_blocks / self.num_blocks

    @property
    def budget_bytes(self) -> Optional[int]:
        if self.bytes_per_token is None:
            return None
        return self.num_blocks * self.block_tokens * self.bytes_per_token

    def used_bytes(self) -> Optional[int]:
        """Bytes pinned by referenced blocks (shared blocks counted once).

        A session's partial tail block — always private, since matched
        prefix blocks are full by construction — is counted sub-block
        exact; every other pinned block counts a full block.
        """
        if self.bytes_per_token is None:
            return None
        tails = [
            self._tokens[sid] % self.block_tokens
            for sid, table in self._tables.items()
            if table and self._tokens[sid] % self.block_tokens
        ]
        full = self.used_blocks - len(tails)
        return (full * self.block_tokens + sum(tails)) * self.bytes_per_token

    # ------------------------------------------------------------------
    # Refcount plumbing
    # ------------------------------------------------------------------
    def _incref(self, block_id: int) -> None:
        refs = self._ref.get(block_id, 0)
        if refs == 0:
            self.used_blocks += 1
            if self.prefix is not None:
                self.prefix.pin(block_id)
        self._ref[block_id] = refs + 1

    def _decref(self, block_id: int) -> None:
        refs = self._ref[block_id] - 1
        if refs > 0:
            self._ref[block_id] = refs
            return
        del self._ref[block_id]
        self.used_blocks -= 1
        if self.prefix is not None and block_id in self.prefix:
            self._tick += 1
            self.prefix.unpin(block_id, self._tick)
        else:
            self._free.append(block_id)

    def _allocate(self) -> Optional[int]:
        """A free physical block, evicting the LRU cached prefix if needed."""
        if self._free:
            return self._free.pop()
        if self.prefix is not None:
            block_id = self.prefix.evict_lru()
            if block_id is not None:
                self.prefix_evictions += 1
                if self._m_evictions is not None:
                    self._m_evictions.inc()
            return block_id
        return None

    def _claim_fresh(self, count: int) -> Optional[List[int]]:
        """``count`` referenced fresh blocks, or None — checked *before*
        any eviction, so a doomed claim never flushes cached prefixes.

        The capacity check is exact: every idle cached block is
        reclaimable by repeated leaf eviction (a pinned descendant
        implies a pinned ancestor, so idle subtrees peel from the tail).
        """
        if count > len(self._free) + self.cached_blocks:
            return None
        fresh: List[int] = []
        for _ in range(count):
            block_id = self._allocate()
            assert block_id is not None, "capacity check admitted a dry pool"
            fresh.append(block_id)
            self._incref(block_id)
        return fresh

    # ------------------------------------------------------------------
    def can_reserve(self, tokens: int) -> bool:
        """Conservative fit check (ignores possible prefix savings)."""
        return self.blocks_for(tokens) <= self.free_blocks

    def attachable_pinned_blocks(
        self, prompt_tokens: Optional[Sequence[int]]
    ) -> int:
        """Cached prompt blocks a reserve would attach that are *pinned*
        by other sessions — the part of the prompt's footprint that
        consumes no free capacity at all (idle matched blocks do: they
        flip from reclaimable to pinned).  A pure probe — no stats or
        LRU movement — for the scheduler's preemption sizing.
        """
        if self.prefix is None or prompt_tokens is None:
            return 0
        nodes, _ = self.prefix.match(prompt_tokens)
        return sum(1 for n in nodes if self._ref.get(n.block_id, 0) > 0)

    def reserve(
        self,
        session_id: int,
        tokens: int,
        prompt_tokens: Optional[Sequence[int]] = None,
    ) -> bool:
        """Build a fresh residency of ``tokens`` tokens (prefill).

        With ``prompt_tokens`` (and the prefix cache enabled) the head
        of the table attaches to cached blocks where the prompt matches
        published content; :meth:`session_cached_tokens` then reports
        how many prompt tokens need no prefill GEMMs.  Returns False —
        with **no side effects at all**: no eviction, no refcount
        churn, no cache-stats or LRU movement — when the pool cannot
        hold the uncached remainder; the scheduler then decides between
        waiting and preempting, and its retries do not distort the
        prefix telemetry.
        """
        if session_id in self._tables:
            raise ValueError(f"session {session_id} already holds KV blocks")
        need = self.blocks_for(tokens)
        nodes: List = []
        partial = 0
        cached_tokens = 0
        cow = 0
        if self.prefix is not None and prompt_tokens is not None:
            if len(prompt_tokens) > tokens:
                raise ValueError(
                    f"prompt_tokens ({len(prompt_tokens)}) exceed the "
                    f"reservation ({tokens} tokens)"
                )
            nodes, partial = self.prefix.match(prompt_tokens)
            cached_tokens = len(nodes) * self.block_tokens
            if partial:
                # Divergence inside a cached block: the overlap's KV is
                # copied into this session's fresh private block rather
                # than attaching the block (its other readers keep it).
                cached_tokens += partial
                cow = 1
            cached_tokens = min(cached_tokens, len(prompt_tokens))
        matched = [n.block_id for n in nodes]
        # Feasibility before any mutation: attaching an *idle* matched
        # block consumes one unit of reclaimable capacity (it flips to
        # pinned), a matched block pinned by others consumes none.
        idle_matched = sum(1 for b in matched if self._ref.get(b, 0) == 0)
        if need - len(matched) > (
            len(self._free) + self.cached_blocks - idle_matched
        ):
            return False
        for block_id in matched:
            self._incref(block_id)
        fresh = self._claim_fresh(need - len(matched))
        assert fresh is not None, "feasibility check admitted a dry pool"
        if self.prefix is not None and prompt_tokens is not None:
            self._tick += 1
            self.prefix.record_lookup(prompt_tokens, nodes, partial, self._tick)
        table = matched + fresh
        self._tables[session_id] = table
        self._tokens[session_id] = tokens
        self._cached[session_id] = cached_tokens
        self.cow_copies += cow
        self.peak_blocks = max(self.peak_blocks, self.used_blocks)
        self.reserves += 1
        if self._m_reserves is not None:
            self._m_reserves.inc()
            if cow:
                self._m_cow.inc(cow)
        return True

    def publish(self, session_id: int, prompt_tokens: Sequence[int]) -> int:
        """Make the session's full prompt blocks attachable (prefill done).

        Publication is deliberately decoupled from :meth:`reserve`: a
        block's KV exists only once the prefill chunks covering it have
        actually run, so the scheduler calls this when a session's
        prefill completes — a follower can never attach KV the
        simulated timeline says is still being computed.  Idempotent
        for already-published positions (a resumed session re-publishes
        its re-prefilled suffix alongside its surviving cached head).
        Returns the number of newly published blocks.
        """
        if session_id not in self._tables:
            raise KeyError(
                f"session {session_id} holds no KV blocks "
                "(unknown or already released)"
            )
        if self.prefix is None:
            return 0
        self._tick += 1
        return self.prefix.insert(
            prompt_tokens, self._tables[session_id], self._tick
        )

    def grow_to(self, session_id: int, tokens: int) -> bool:
        """Extend a session's residency to ``tokens`` tokens (decode).

        Most decode steps stay inside the session's last partial block
        and cost nothing; crossing a block boundary claims one more
        (private) block.  Returns False (state unchanged) when the pool
        — including evictable cached prefixes — is out of blocks: the
        preemption trigger.  Unknown or already-released sessions raise
        ``KeyError`` rather than silently corrupting the accounting.
        """
        if session_id not in self._tables:
            raise KeyError(
                f"session {session_id} holds no KV blocks "
                "(unknown or already released)"
            )
        if tokens < self._tokens[session_id]:
            raise ValueError(
                f"KV residency cannot shrink: {tokens} < "
                f"{self._tokens[session_id]} (release and re-prefill instead)"
            )
        table = self._tables[session_id]
        fresh = self._claim_fresh(self.blocks_for(tokens) - len(table))
        if fresh is None:
            return False
        table.extend(fresh)
        self._tokens[session_id] = tokens
        self.peak_blocks = max(self.peak_blocks, self.used_blocks)
        return True

    def release(self, session_id: int) -> int:
        """Drop the session's references (finish **or** preemption).

        Every table entry is decref'd — never freed outright: a shared
        prefix block stays resident for its other readers, and a
        published block at refcount 0 stays cached (LRU-evictable) so a
        preempted session can re-attach on resume.  Returns the number
        of table entries released.  Unknown or already-released sessions
        raise ``KeyError``.
        """
        if session_id not in self._tables:
            raise KeyError(
                f"session {session_id} holds no KV blocks "
                "(unknown or already released)"
            )
        table = self._tables.pop(session_id)
        del self._tokens[session_id]
        self._cached.pop(session_id, None)
        for block_id in reversed(table):  # leaf-most first
            self._decref(block_id)
        self.releases += 1
        if self._m_releases is not None:
            self._m_releases.inc()
        return len(table)

    def discard(self, session_id: int) -> int:
        """Destructively drop the session's residency (KV **loss**).

        The failure-plane counterpart of :meth:`release`: the session's
        blocks hold *corrupted or lost* content, so nothing of its table
        may stay reusable.  Each entry is decref'd leaf-most first; a
        block whose last reference drops is **destroyed** — published
        leaves are purged from the prefix index and returned to the free
        list rather than staying cached.  A published *interior* block
        with cached descendants from other prompts cannot be removed
        without orphaning their (intact) content, so it degrades to a
        plain cached unpin — it was computed by an earlier publisher and
        its canonical content is not the part this session lost.  Blocks
        still referenced by other sessions are left pinned untouched
        (shared prefix heads live in replicated-safe cache state, not on
        the failed replica's private pages).  Returns the number of
        physical blocks destroyed.
        """
        if session_id not in self._tables:
            raise KeyError(
                f"session {session_id} holds no KV blocks "
                "(unknown or already released)"
            )
        table = self._tables.pop(session_id)
        del self._tokens[session_id]
        self._cached.pop(session_id, None)
        destroyed = 0
        for block_id in reversed(table):  # leaf-most first
            refs = self._ref[block_id] - 1
            if refs > 0:
                self._ref[block_id] = refs
                continue
            del self._ref[block_id]
            self.used_blocks -= 1
            if self.prefix is not None and block_id in self.prefix:
                if self.prefix.purge(block_id):
                    self._free.append(block_id)
                    destroyed += 1
                else:
                    self._tick += 1
                    self.prefix.unpin(block_id, self._tick)
            else:
                self._free.append(block_id)
                destroyed += 1
        self.releases += 1
        if self._m_releases is not None:
            self._m_releases.inc()
        return destroyed

    # ------------------------------------------------------------------
    # Invariants and telemetry
    # ------------------------------------------------------------------
    def refcounts_balanced(self) -> bool:
        """True iff no session pins anything (the drain-time invariant)."""
        return not self._tables and not self._ref and self.used_blocks == 0

    def check_invariants(self) -> None:
        """Raise AssertionError if block accounting has been corrupted."""
        pinned = len(self._ref)
        assert pinned == self.used_blocks, (
            f"{pinned} referenced blocks but used_blocks={self.used_blocks}"
        )
        assert pinned + self.cached_blocks + len(self._free) == self.num_blocks, (
            f"pinned {pinned} + cached {self.cached_blocks} + free "
            f"{len(self._free)} != {self.num_blocks} blocks"
        )
        for sid, table in self._tables.items():
            assert len(table) == self.blocks_for(self._tokens[sid]), (
                f"session {sid} table length {len(table)} != "
                f"blocks_for({self._tokens[sid]})"
            )
            for block_id in table:
                assert self._ref.get(block_id, 0) > 0, (
                    f"session {sid} references unpinned block {block_id}"
                )

    def stats(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            "num_blocks": self.num_blocks,
            "block_tokens": self.block_tokens,
            "used_blocks": self.used_blocks,
            "cached_blocks": self.cached_blocks,
            "peak_blocks": self.peak_blocks,
            "peak_occupancy": self.peak_blocks / self.num_blocks,
            "reserves": self.reserves,
            "releases": self.releases,
            "cow_copies": self.cow_copies,
            "prefix_evictions": self.prefix_evictions,
        }
        if self.prefix is not None:
            out["prefix"] = self.prefix.stats()
        return out
