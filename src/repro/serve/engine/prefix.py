"""Radix-tree prefix index over token-block hashes (SGLang-style).

Sessions whose prompts share a head should share the KV blocks that
head occupies instead of each re-prefilling it.  The unit of sharing is
the **full KV block** (``block_tokens`` tokens): every full block of a
prompt gets a *chained* content hash — SHA-1 over the parent block's
digest plus this block's token ids — so a block's identity encodes its
entire prefix path, and equal hashes mean equal token prefixes.

:class:`RadixPrefixIndex` arranges published blocks as a radix tree:
each node is one full block, children are keyed by chained digest, and
a root-to-node path spells out a cached prompt prefix.  The tree serves
three queries for the block manager
(:class:`~repro.serve.engine.kvcache.KVBlockManager`, which owns the
per-block reference counts):

* :meth:`match` — longest-prefix lookup of a prompt: the run of cached
  full blocks from the root, plus the *token-granular* overlap inside
  the first divergent block (the copy-on-write seed: those tokens'
  KV can be copied out of the cached block instead of recomputed);
* :meth:`insert` — publish a prompt's freshly prefilled full blocks so
  later sessions can attach to them;
* :meth:`evict_lru` — reclaim the least-recently-used **unreferenced
  leaf**.  Only ref-0 blocks are evictable (the manager pins/unpins
  them as sessions attach and release), and only leaves: a node's hash
  chains through its parent, so evicting an interior block would orphan
  every cached descendant.

Blocks that merely *partially* overlap a prompt are never attached
directly — the manager copies the overlapping tokens into a fresh
private block (copy-on-write), leaving the cached block untouched for
its other readers.
"""

from __future__ import annotations

import hashlib
import heapq
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "PrefixNode",
    "RadixPrefixIndex",
    "chain_block_hashes",
    "common_prefix_len",
    "full_blocks",
]


def full_blocks(tokens: Sequence[int], block_tokens: int) -> List[Tuple[int, ...]]:
    """The prompt's complete ``block_tokens``-sized chunks (tail dropped).

    Only full blocks are content-addressable: a partial tail block will
    keep growing (rest of the prompt, then decode tokens), so its hash
    would be invalidated by the very next token.
    """
    if block_tokens < 1:
        raise ValueError(f"block_tokens must be >= 1, got {block_tokens}")
    n = len(tokens) // block_tokens
    return [
        tuple(int(t) for t in tokens[i * block_tokens : (i + 1) * block_tokens])
        for i in range(n)
    ]


def _chain(parent_digest: bytes, chunk: Tuple[int, ...]) -> bytes:
    h = hashlib.sha1(parent_digest)
    for t in chunk:
        h.update(int(t).to_bytes(8, "little", signed=True))
    return h.digest()


def chain_block_hashes(
    tokens: Sequence[int], block_tokens: int
) -> List[bytes]:
    """Chained digests of every full block of ``tokens``.

    ``hashes[i]`` commits to tokens ``[0, (i+1) * block_tokens)`` — two
    prompts share ``hashes[i]`` iff they agree on that whole span, which
    is what makes a flat hash lookup equivalent to walking the radix
    tree.
    """
    digests: List[bytes] = []
    parent = b""
    for chunk in full_blocks(tokens, block_tokens):
        parent = _chain(parent, chunk)
        digests.append(parent)
    return digests


def common_prefix_len(a: Sequence[int], b: Sequence[int]) -> int:
    """Length of the longest common head of two token sequences."""
    n = 0
    for x, y in zip(a, b):
        if int(x) != int(y):
            break
        n += 1
    return n


class PrefixNode:
    """One cached full block: its tokens, physical block id, and tree links."""

    __slots__ = ("digest", "tokens", "block_id", "parent", "children", "last_used")

    def __init__(
        self,
        digest: bytes,
        tokens: Tuple[int, ...],
        block_id: int,
        parent: Optional["PrefixNode"],
    ):
        self.digest = digest
        self.tokens = tokens
        self.block_id = block_id
        self.parent = parent
        self.children: Dict[bytes, "PrefixNode"] = {}
        self.last_used = 0


class RadixPrefixIndex:
    """Radix tree of published prompt blocks with LRU over ref-0 leaves.

    The index stores *structure and recency only*; reference counts live
    in the block manager, which calls :meth:`pin` when a cached block
    gains its first reference and :meth:`unpin` when its last reference
    drops — unpinned in-tree blocks form the LRU eviction pool.
    """

    def __init__(self, block_tokens: int):
        if block_tokens < 1:
            raise ValueError(f"block_tokens must be >= 1, got {block_tokens}")
        self.block_tokens = block_tokens
        self.root = PrefixNode(b"", (), -1, None)
        self._by_block: Dict[int, PrefixNode] = {}
        self._idle: Dict[int, int] = {}  # ref-0 block_id -> last_used tick
        # Lazy min-heap of (tick, block_id) eviction candidates: entries
        # are pushed when a block becomes an idle *leaf* (unpin, or its
        # last child evicts) and validated on pop, so eviction is
        # O(log n) amortised instead of a scan over all idle blocks.
        self._evict_heap: List[Tuple[int, int]] = []
        self.lookups = 0
        self.lookup_blocks = 0
        self.hit_blocks = 0
        self.partial_hits = 0
        self.insertions = 0
        self.evictions = 0
        self.purges = 0  # fault-injected removals (corrupted KV)

    # ------------------------------------------------------------------
    def __contains__(self, block_id: int) -> bool:
        return block_id in self._by_block

    def __len__(self) -> int:
        return len(self._by_block)

    @property
    def cached_blocks(self) -> int:
        """Unreferenced blocks retained for reuse (the evictable pool)."""
        return len(self._idle)

    # ------------------------------------------------------------------
    def match(self, tokens: Sequence[int]) -> Tuple[List[PrefixNode], int]:
        """Longest cached prefix of ``tokens`` — a **pure** walk.

        Returns the run of matched full-block nodes from the root and
        the number of tokens shared with the first *divergent* block
        (0 when the walk ends cleanly) — the copy-on-write overlap.
        No counters move and no LRU state is touched, so feasibility
        probes and doomed reservations leave the cache unperturbed;
        the block manager calls :meth:`record_lookup` only when a
        reservation actually attaches.
        """
        node = self.root
        matched: List[PrefixNode] = []
        depth = 0
        for chunk in full_blocks(tokens, self.block_tokens):
            child = node.children.get(_chain(node.digest, chunk))
            if child is None:
                break
            matched.append(child)
            node = child
            depth += 1
        partial = 0
        rest = tuple(int(t) for t in tokens[depth * self.block_tokens :])
        if rest:
            for child in node.children.values():
                partial = max(partial, common_prefix_len(child.tokens, rest))
            partial = min(partial, len(rest))
        return matched, partial

    def record_lookup(
        self,
        tokens: Sequence[int],
        matched: Sequence[PrefixNode],
        partial: int,
        tick: int,
    ) -> None:
        """Account one *committed* lookup (a reservation that attached).

        Counters therefore measure admissions served, not probe or
        retry traffic, and LRU recency moves only for prefixes a
        session really attached to.
        """
        self.lookups += 1
        self.lookup_blocks += len(full_blocks(tokens, self.block_tokens))
        self.hit_blocks += len(matched)
        if partial:
            self.partial_hits += 1
        for node in matched:
            node.last_used = tick
            if node.block_id in self._idle:
                self._idle[node.block_id] = tick
                heapq.heappush(self._evict_heap, (tick, node.block_id))

    def insert(
        self, tokens: Sequence[int], block_ids: Sequence[int], tick: int
    ) -> int:
        """Publish the prompt's full blocks along ``block_ids``.

        ``block_ids[i]`` is the physical block holding the prompt's
        *i*-th full block (a session's block table, truncated or not —
        extra entries past the full-block count are ignored).  A
        position already in the tree keeps its **canonical** block:
        two sessions that prefilled the same prompt concurrently (each
        admitted before the other published) computed duplicate KV, and
        the loser's private copies stay unpublished — they free at
        release while future lookups attach the canonical path.  The
        walk *stops* at the first such position: publishing the loser's
        deeper blocks under a path it does not reference would hang a
        pinned child below an unpinned ancestor, breaking the
        leaves-first eviction invariant (every idle block reclaimable).
        Returns the number of newly published nodes.
        """
        node = self.root
        added = 0
        for i, chunk in enumerate(full_blocks(tokens, self.block_tokens)):
            if i >= len(block_ids):
                break
            digest = _chain(node.digest, chunk)
            child = node.children.get(digest)
            if child is None:
                block_id = int(block_ids[i])
                if block_id in self._by_block:
                    raise ValueError(
                        f"block {block_id} is already published at a "
                        "different tree position"
                    )
                child = PrefixNode(digest, chunk, block_id, node)
                child.last_used = tick
                node.children[digest] = child
                self._by_block[block_id] = child
                self.insertions += 1
                added += 1
            elif child.block_id != int(block_ids[i]):
                break  # duplicate prefill: canonical path wins, stop here
            node = child
        return added

    # ------------------------------------------------------------------
    # Refcount notifications (driven by the block manager)
    # ------------------------------------------------------------------
    def pin(self, block_id: int) -> None:
        """Block gained its first reference — no longer evictable."""
        self._idle.pop(block_id, None)

    def unpin(self, block_id: int, tick: int) -> None:
        """Block's last reference dropped — cached and evictable (LRU)."""
        node = self._by_block.get(block_id)
        if node is None:
            return
        node.last_used = tick
        self._idle[block_id] = tick
        if not node.children:
            heapq.heappush(self._evict_heap, (tick, block_id))

    # ------------------------------------------------------------------
    def evict_lru(self) -> Optional[int]:
        """Remove and return the LRU unreferenced **leaf** block.

        Interior nodes are never evicted, even when idle: their
        descendants' digests chain through them, so the leaf-most block
        always leaves first (repeated eviction peels a cold path from
        the tail up — evicting a just-emptied parent pushes it onto the
        candidate heap).  Stale heap entries (re-pinned, re-touched, or
        grown-children blocks) are dropped lazily on pop.  Returns None
        when nothing is evictable.
        """
        while self._evict_heap:
            tick, block_id = heapq.heappop(self._evict_heap)
            if self._idle.get(block_id) != tick:
                continue  # re-pinned or touched since this entry
            node = self._by_block[block_id]
            if node.children:
                continue  # gained children since; re-pushed when empty
            del self._by_block[block_id]
            del self._idle[block_id]
            parent = node.parent
            del parent.children[node.digest]
            self.evictions += 1
            if not parent.children and parent.block_id in self._idle:
                heapq.heappush(
                    self._evict_heap,
                    (self._idle[parent.block_id], parent.block_id),
                )
            return block_id
        return None

    def purge(self, block_id: int) -> bool:
        """Forcibly drop a published **leaf** block (corrupted KV).

        Unlike :meth:`evict_lru` the block need not be idle-LRU-best —
        fault injection destroyed its content, so it must leave the tree
        immediately; the caller (the block manager's ``discard``) then
        returns the physical block to the free list.  Interior nodes are
        refused (False): their descendants' digests chain through them,
        so removal would orphan cached blocks whose content is fine —
        the caller degrades those to a plain unpin instead, and the
        session-table's leaf-first iteration purges each session's own
        chain tail-up cleanly.
        """
        node = self._by_block.get(block_id)
        if node is None or node.children:
            return False
        del self._by_block[block_id]
        self._idle.pop(block_id, None)
        parent = node.parent
        del parent.children[node.digest]
        self.purges += 1
        if not parent.children and parent.block_id in self._idle:
            heapq.heappush(
                self._evict_heap,
                (self._idle[parent.block_id], parent.block_id),
            )
        return True

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        return {
            "published_blocks": len(self._by_block),
            "cached_blocks": self.cached_blocks,
            "lookups": self.lookups,
            "lookup_blocks": self.lookup_blocks,
            "hit_blocks": self.hit_blocks,
            "block_hit_rate": (
                self.hit_blocks / self.lookup_blocks if self.lookup_blocks else 0.0
            ),
            "partial_hits": self.partial_hits,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "purges": self.purges,
        }
