"""Deterministic simulated clock for the serving runtime.

All serving-time quantities (arrivals, batching deadlines, service
latencies from the analytic hardware model) advance a single
:class:`SimulatedClock` — wall-clock time never enters the simulation, so
every scenario is exactly reproducible from its seed.
"""

from __future__ import annotations

__all__ = ["SimulatedClock"]


class SimulatedClock:
    """A monotonically advancing simulated time source (seconds)."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> float:
        """Move time forward to ``t``; rejects travel into the past."""
        if t < self._now - 1e-15:
            raise ValueError(
                f"clock cannot move backwards: {t} < {self._now}"
            )
        self._now = max(self._now, float(t))
        return self._now

    def advance_by(self, dt: float) -> float:
        if dt < 0:
            raise ValueError(f"negative time step {dt}")
        self._now += float(dt)
        return self._now
