"""Deterministic simulated clock for the serving runtime.

All serving-time quantities (arrivals, batching deadlines, service
latencies from the analytic hardware model) advance a single
:class:`SimulatedClock` — wall-clock time never enters the simulation, so
every scenario is exactly reproducible from its seed.

Timestamp comparisons across the serving stack go through
:func:`time_at_or_before`, which uses a tolerance *relative* to the
magnitude of the timestamps being compared.  An absolute epsilon (the old
``1e-15``) underflows double-precision spacing once simulated time grows
past ~1 s — at ``t = 1e9`` the representable spacing is ~1.2e-7 s, so an
absolute 1e-15 slack can never absorb the rounding of ``t + service_s``
and "free at exactly now" workers would read as busy forever.
"""

from __future__ import annotations

import sys

__all__ = ["SimulatedClock", "time_tolerance", "time_at_or_before"]

_EPS = sys.float_info.epsilon  # 2**-52


def time_tolerance(*ts: float) -> float:
    """Comparison slack for simulated timestamps: a few ulps, scaled.

    ``4 * eps * max(1, |t|...)`` matches the old absolute ``1e-15`` for
    sub-second simulations (where ``max(...)`` clamps to 1) and scales
    with the floating-point spacing for large timestamps.
    """
    scale = 1.0
    for t in ts:
        scale = max(scale, abs(t))
    return 4.0 * _EPS * scale


def time_at_or_before(t: float, now: float) -> bool:
    """True when ``t <= now`` up to relative timestamp tolerance."""
    return t <= now + time_tolerance(t, now)


class SimulatedClock:
    """A monotonically advancing simulated time source (seconds)."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> float:
        """Move time forward to ``t``; rejects travel into the past."""
        if t < self._now - time_tolerance(t, self._now):
            raise ValueError(
                f"clock cannot move backwards: {t} < {self._now}"
            )
        self._now = max(self._now, float(t))
        return self._now

    def advance_by(self, dt: float) -> float:
        if dt < 0:
            raise ValueError(f"negative time step {dt}")
        self._now += float(dt)
        return self._now
