"""Deterministic fault injection and fleet health monitoring.

Serving fleets fail: replicas crash, workers wedge or slow down, and —
this being a *photonic RRNS* accelerator — compute itself suffers
transient residue-channel faults at rates the paper's redundant-RNS
machinery (:mod:`repro.rns.rrns`, :mod:`repro.core.fault_tolerant`)
detects and mostly corrects.  This module makes all of that a
first-class, **replayable** part of the simulation:

* :class:`FaultEvent` — one scheduled fault: a replica crash, a wedged
  (stuck) worker, a temporarily slow worker, a transient RRNS compute
  fault (corrected or uncorrectable), or the loss of one session's KV
  blocks.
* :class:`FaultPlan` — an immutable, time-sorted schedule of events.
  Plans are built either **scripted** (explicit kill times — the bench
  storm) or **drawn** from a seeded generator
  (:meth:`FaultPlan.transient_storm`), optionally at rates derived from
  the RRNS code's analytic fault probabilities
  (:func:`repro.core.fault_tolerant.rrns_fault_rates`).  The same seed
  always yields the identical timeline (:meth:`FaultPlan.signature`),
  which is what makes fault runs regression-testable.
* :class:`FaultInjector` — the replay cursor a runtime polls: events
  due at-or-before the simulated ``now`` fire exactly once, in order.
* :class:`HealthPolicy` + :class:`FleetMonitor` — heartbeat-style
  failure detection on the simulated clock.  A crashed or stuck worker
  stops responding; the monitor moves it ``healthy → suspect`` after
  ``suspect_after_s`` without a heartbeat and ``suspect → dead`` after
  ``dead_after_s``, emitting transitions the runtime reacts to (hedged
  re-dispatch on *suspect*, session recovery + replica replacement on
  *dead*).  Detection latency is therefore an explicit, tunable part of
  every unavailability window rather than an implementation accident.

Nothing here touches wall-clock time or global RNG state: fault draws
come from ``np.random.default_rng(seed)`` at plan-build time, so a plan
is data, not behaviour, and two runs over the same plan and traffic are
bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .clock import time_at_or_before

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FleetMonitor",
    "HealthPolicy",
    "WorkerHealth",
]


class FaultKind:
    """Canonical fault kinds (plain strings, cheap to log)."""

    REPLICA_CRASH = "replica_crash"  # worker dies; its KV / in-flight work is lost
    WORKER_STUCK = "worker_stuck"  # worker wedges: unresponsive, work never completes
    WORKER_SLOW = "worker_slow"  # worker degrades: service times inflate for a while
    TRANSIENT = "transient_fault"  # RRNS-detected compute fault on one session's step
    KV_LOSS = "kv_loss"  # one session's KV blocks are corrupted/lost

    ALL = (REPLICA_CRASH, WORKER_STUCK, WORKER_SLOW, TRANSIENT, KV_LOSS)
    WORKER_KINDS = (REPLICA_CRASH, WORKER_STUCK, WORKER_SLOW)
    SESSION_KINDS = (TRANSIENT, KV_LOSS)


class WorkerHealth:
    """Health states of the replica state machine (see :class:`FleetMonitor`)."""

    HEALTHY = "healthy"
    SUSPECT = "suspect"
    DEAD = "dead"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``target`` is a deterministic *selector*, not a raw id: worker-kind
    events index the pool's live workers modulo their count, and
    session-kind events index the engine's running sessions modulo
    theirs — so a plan stays meaningful (and replayable) whatever ids
    the run assigns.  ``severity`` is the slowdown factor for
    ``WORKER_SLOW`` and the corrected/uncorrectable flag for
    ``TRANSIENT`` (``>= 1.0`` means uncorrectable, i.e. past the RRNS
    ``floor(r/2)`` correction bound); ``duration_s`` only applies to
    ``WORKER_SLOW``.
    """

    t: float
    kind: str
    target: int = 0
    severity: float = 0.0
    duration_s: float = 0.0

    def __post_init__(self):
        if self.kind not in FaultKind.ALL:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; pick from {FaultKind.ALL}"
            )
        if not np.isfinite(self.t) or self.t < 0:
            raise ValueError(f"fault time must be finite and >= 0, got {self.t}")
        if self.target < 0:
            raise ValueError(f"target selector must be >= 0, got {self.target}")
        if self.kind == FaultKind.WORKER_SLOW:
            if self.severity <= 1.0:
                raise ValueError(
                    "a slow worker needs a slowdown factor > 1, got "
                    f"{self.severity}"
                )
            if self.duration_s <= 0:
                raise ValueError(
                    f"duration_s must be > 0 for {self.kind}, got "
                    f"{self.duration_s}"
                )
        elif self.duration_s:
            raise ValueError(f"duration_s only applies to worker_slow events")

    @property
    def uncorrectable(self) -> bool:
        """For ``TRANSIENT`` events: past the RRNS correction bound."""
        return self.severity >= 1.0

    def key(self) -> Tuple[float, str, int, float, float]:
        return (self.t, self.kind, self.target, self.severity, self.duration_s)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, time-sorted fault schedule.

    Build scripted plans from explicit events, storms from a seed, or
    merge several (:meth:`merge`); :meth:`signature` is the replayable
    identity two same-seed plans must share.
    """

    events: Tuple[FaultEvent, ...] = ()
    seed: Optional[int] = None

    def __post_init__(self):
        ordered = tuple(
            sorted(self.events, key=lambda e: (e.t, e.kind, e.target))
        )
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def signature(self) -> Tuple[Tuple[float, str, int, float, float], ...]:
        """A hashable identity of the full timeline (the replay check)."""
        return tuple(e.key() for e in self.events)

    def merge(self, *others: "FaultPlan") -> "FaultPlan":
        events: List[FaultEvent] = list(self.events)
        for other in others:
            events.extend(other.events)
        return FaultPlan(tuple(events), seed=self.seed)

    def kinds(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def replica_kills(
        cls,
        kills: Iterable[Tuple[float, int]],
        kind: str = FaultKind.REPLICA_CRASH,
    ) -> "FaultPlan":
        """Scripted replica failures: ``(time, live-worker selector)`` pairs."""
        if kind not in (FaultKind.REPLICA_CRASH, FaultKind.WORKER_STUCK):
            raise ValueError(
                f"replica kills must be crash or stuck events, got {kind!r}"
            )
        return cls(
            tuple(FaultEvent(float(t), kind, int(sel)) for t, sel in kills)
        )

    @classmethod
    def slow_worker(
        cls, t: float, selector: int, factor: float, duration_s: float
    ) -> "FaultPlan":
        """One worker serving ``factor`` times slower for ``duration_s``."""
        return cls(
            (
                FaultEvent(
                    float(t),
                    FaultKind.WORKER_SLOW,
                    int(selector),
                    severity=float(factor),
                    duration_s=float(duration_s),
                ),
            )
        )

    @classmethod
    def transient_storm(
        cls,
        start: float,
        stop: float,
        rate_per_s: float,
        p_uncorrectable: float,
        seed: int,
        kv_loss_share: float = 0.0,
    ) -> "FaultPlan":
        """A seeded Poisson burst of transient compute faults.

        Events arrive at ``rate_per_s`` in ``[start, stop)``; each is an
        uncorrectable RRNS fault with probability ``p_uncorrectable``
        (otherwise the redundant residues absorb it — corrected, cost
        free) and, with probability ``kv_loss_share``, escalates to a
        KV-block-loss event instead (a corrupted cache line the decode
        path cannot repair in place).  The draw is fully determined by
        ``seed``: same arguments, same timeline, always — see
        :meth:`signature`.
        """
        if stop < start:
            raise ValueError(f"need start <= stop, got [{start}, {stop})")
        if rate_per_s < 0:
            raise ValueError(f"rate_per_s must be >= 0, got {rate_per_s}")
        if not 0.0 <= p_uncorrectable <= 1.0:
            raise ValueError(
                f"p_uncorrectable must be in [0, 1], got {p_uncorrectable}"
            )
        if not 0.0 <= kv_loss_share <= 1.0:
            raise ValueError(
                f"kv_loss_share must be in [0, 1], got {kv_loss_share}"
            )
        rng = np.random.default_rng(seed)
        events: List[FaultEvent] = []
        t = float(start)
        if rate_per_s > 0:
            while True:
                t += float(rng.exponential(1.0 / rate_per_s))
                if t >= stop:
                    break
                target = int(rng.integers(2**31))
                escalate = float(rng.random()) < kv_loss_share
                hard = float(rng.random()) < p_uncorrectable
                if escalate:
                    events.append(FaultEvent(t, FaultKind.KV_LOSS, target))
                else:
                    events.append(
                        FaultEvent(
                            t,
                            FaultKind.TRANSIENT,
                            target,
                            severity=1.0 if hard else 0.0,
                        )
                    )
        return cls(tuple(events), seed=seed)

    @classmethod
    def from_rrns_rates(
        cls,
        rates: Dict[str, float],
        op_rate_per_s: float,
        start: float,
        stop: float,
        seed: int,
        kv_loss_share: float = 0.0,
    ) -> "FaultPlan":
        """A transient storm at the RRNS code's analytic fault rates.

        ``rates`` is the dict returned by
        :func:`repro.core.fault_tolerant.rrns_fault_rates` (per-output
        detection/correction probabilities for a given per-channel error
        rate); ``op_rate_per_s`` is how many protected outputs the fleet
        produces per simulated second.  Detected faults arrive at
        ``detected * op_rate_per_s`` and are uncorrectable with the
        code's conditional probability — so the storm's composition is
        *derived from the paper's fault model*, not hand-tuned.
        """
        for key in ("detected", "uncorrectable"):
            if key not in rates:
                raise ValueError(f"rates dict is missing {key!r}")
        if op_rate_per_s < 0:
            raise ValueError(f"op_rate_per_s must be >= 0, got {op_rate_per_s}")
        detected = float(rates["detected"])
        p_unc = float(rates["uncorrectable"]) / detected if detected > 0 else 0.0
        return cls.transient_storm(
            start,
            stop,
            rate_per_s=detected * op_rate_per_s,
            p_uncorrectable=p_unc,
            seed=seed,
            kv_loss_share=kv_loss_share,
        )


class FaultInjector:
    """Replay cursor over a :class:`FaultPlan`.

    The runtime polls :meth:`due` with its simulated ``now``; every
    event fires exactly once, in timeline order.  ``applied`` keeps the
    fired prefix for telemetry and the replay test.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._idx = 0
        self.applied: List[FaultEvent] = []

    @property
    def exhausted(self) -> bool:
        return self._idx >= len(self.plan.events)

    def next_time(self) -> Optional[float]:
        """Timestamp of the next unfired event (None when exhausted)."""
        if self.exhausted:
            return None
        return self.plan.events[self._idx].t

    def due(self, now: float) -> List[FaultEvent]:
        """Events with ``t <= now`` (up to clock tolerance), fired once."""
        fired: List[FaultEvent] = []
        events = self.plan.events
        while self._idx < len(events) and time_at_or_before(
            events[self._idx].t, now
        ):
            fired.append(events[self._idx])
            self._idx += 1
        self.applied.extend(fired)
        return fired

    def applied_signature(self) -> Tuple[Tuple[float, str, int, float, float], ...]:
        return tuple(e.key() for e in self.applied)


# ----------------------------------------------------------------------
# Heartbeat-style failure detection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HealthPolicy:
    """Failure-detection knobs of the fleet health state machine.

    A worker that has not responded for ``suspect_after_s`` of simulated
    time becomes *suspect* (no new dispatches; in-flight work is hedged
    elsewhere); after ``dead_after_s`` it is declared *dead* (sessions
    recovered, replica replaced).  Both are measured from the moment the
    worker stopped responding, so the unavailability a crash causes is
    at least the detection delay — the price of not having an oracle.
    """

    suspect_after_s: float = 1e-7
    dead_after_s: float = 3e-7

    def __post_init__(self):
        if self.suspect_after_s <= 0:
            raise ValueError(
                f"suspect_after_s must be > 0, got {self.suspect_after_s}"
            )
        if self.dead_after_s < self.suspect_after_s:
            raise ValueError(
                "need dead_after_s >= suspect_after_s, got "
                f"{self.dead_after_s} < {self.suspect_after_s}"
            )


class FleetMonitor:
    """Drives the ``healthy → suspect → dead`` state machine over a pool.

    :meth:`observe` is the heartbeat sweep: responsive workers refresh
    their lease; unresponsive ones age toward *suspect* then *dead*
    against :class:`HealthPolicy` thresholds.  Transitions are returned
    to the caller (the serving loop reacts: hedge on suspect, recover +
    replace on dead) and kept in :attr:`transitions` for telemetry.
    ``observe`` is idempotent per state — a worker transitions each way
    exactly once.
    """

    def __init__(self, pool, policy: Optional[HealthPolicy] = None):
        self.pool = pool
        self.policy = policy or HealthPolicy()
        self.transitions: List[Dict[str, float]] = []
        # Observability hook (set by the engine/runtime when tracing):
        # each transition also lands as an instant on the worker track.
        self.tracer = None

    def next_transition_time(self) -> Optional[float]:
        """Earliest future suspect/dead declaration among failed workers."""
        times: List[float] = []
        for w in self.pool.workers:
            if w.responsive or w.fail_time is None:
                continue
            if w.health == WorkerHealth.HEALTHY:
                times.append(w.fail_time + self.policy.suspect_after_s)
            if w.health != WorkerHealth.DEAD:
                times.append(w.fail_time + self.policy.dead_after_s)
        return min(times) if times else None

    def observe(self, now: float) -> List[Dict[str, float]]:
        """One heartbeat sweep at simulated time ``now``."""
        out: List[Dict[str, float]] = []
        for w in self.pool.workers:
            if w.responsive:
                w.last_seen = now
                continue
            if w.health == WorkerHealth.DEAD or w.fail_time is None:
                continue
            silent_for = now - w.fail_time
            if (
                time_at_or_before(self.policy.dead_after_s, silent_for)
                and w.health != WorkerHealth.DEAD
            ):
                if w.health == WorkerHealth.HEALTHY:
                    # A coarse observation cadence can leap straight past
                    # the suspect window; record both hops.
                    out.append(self._transition(w, WorkerHealth.SUSPECT, now))
                out.append(self._transition(w, WorkerHealth.DEAD, now))
            elif (
                time_at_or_before(self.policy.suspect_after_s, silent_for)
                and w.health == WorkerHealth.HEALTHY
            ):
                out.append(self._transition(w, WorkerHealth.SUSPECT, now))
        return out

    def _transition(self, worker, to: str, now: float) -> Dict[str, float]:
        record = {
            "t": now,
            "worker_id": worker.worker_id,
            "from": worker.health,
            "to": to,
            "silent_for_s": now - worker.fail_time,
        }
        worker.health = to
        self.transitions.append(record)
        if self.tracer is not None:
            self.tracer.instant(
                "control",
                worker.worker_id,
                f"health:{to}",
                now,
                args={"from": record["from"], "silent_for_s": record["silent_for_s"]},
            )
        return record
