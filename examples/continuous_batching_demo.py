"""Continuous batching demo: token serving with paged KV and preemption.

Quickstart::

    from repro.nn import KVCacheSpec, Linear, Sequential, Tanh
    from repro.serve import (DecodeModelProfile, EngineConfig,
                             ExecutorPool, TokenServingEngine,
                             decode_scenario)

    profile = DecodeModelProfile(
        "chat",
        Sequential(Linear(48, 96), Tanh(), Linear(96, 48)),  # surrogate
        KVCacheSpec(num_layers=4, num_heads=8, head_dim=16), # KV geometry
        ttft_slo_s=2e-3,
    )
    engine = TokenServingEngine(
        ExecutorPool(2), profile,
        EngineConfig(max_batch_size=16, block_tokens=16, kv_fraction=0.25),
    )
    scenario = decode_scenario("chat", rate=1e9, duration=2e-7)
    engine.run(scenario, seed=5)
    report = engine.report(scenario)   # TTFT, TPOT, tokens/s, KV, …

The engine re-forms the running batch at **every decode step**
(Orca-style iteration-level scheduling): prefills are admitted as soon
as a slot and KV blocks exist, finished sessions retire immediately,
and when the block pool runs dry the youngest lowest-class session is
preempted — its blocks are freed and it re-prefills when readmitted
(vLLM-style recompute-on-resume).  Step costs come from the analytic
``arch.inference`` decode model; execution is functional, so every
session's token stream is bit-exact against decoding it alone.

This script runs one mixed-length session trace through the continuous
engine and the static request-level baseline, prints the throughput
gap, then starves the KV pool to show priority-preemptive eviction.
"""

import numpy as np

from repro.nn import KVCacheSpec, Linear, Sequential, Tanh
from repro.serve import (
    DecodeModelProfile,
    EngineConfig,
    ExecutorPool,
    Priority,
    TokenServingEngine,
    decode_scenario,
    sequential_decode_outputs,
)


def build_profile() -> DecodeModelProfile:
    rng = np.random.default_rng(0)
    model = Sequential(
        Linear(48, 96, rng=rng), Tanh(), Linear(96, 48, rng=rng)
    )
    return DecodeModelProfile(
        "chat",
        model,
        KVCacheSpec(num_layers=4, num_heads=8, head_dim=16),
        ttft_slo_s=2e-3,
    )


def run_mode(scenario, continuous: bool, kv_fraction: float = 0.25):
    engine = TokenServingEngine(
        ExecutorPool(2),
        build_profile(),
        EngineConfig(
            max_batch_size=16,
            block_tokens=16,
            kv_fraction=kv_fraction,
            continuous=continuous,
        ),
    )
    telemetry = engine.run(scenario, seed=5)
    return engine, telemetry, engine.report(scenario)


def main() -> None:
    profile = build_profile()
    scenario = decode_scenario(
        "chat",
        rate=8e8,
        duration=2e-7,
        prompt_median=24,
        prompt_sigma=0.6,
        decode_mean=16,
        class_mix={Priority.BATCH: 4, Priority.INTERACTIVE: 1},
        prompt_max=96,
        decode_max=96,
        seed=11,
    )
    print(
        f"decode trace: {scenario.num_requests} sessions, "
        f"mixed prompts/decodes, classes {scenario.priorities()}"
    )

    print("\n== continuous vs static request-level batching ==")
    reports = {}
    telemetries = {}
    for mode, continuous in (("continuous", True), ("static", False)):
        engine, telemetries[mode], reports[mode] = run_mode(scenario, continuous)
        rep = reports[mode]
        print(
            f"  {mode:11s} tokens/s={rep['tokens_per_s']:.3e} "
            f"batch~{rep['mean_batch_size']:.1f} "
            f"ttft_p99={rep['ttft']['p99_s']:.2e}s "
            f"tpot={rep['tpot_s']:.2e}s "
            f"kv_peak={rep['kv']['peak_occupancy']:.2f}"
        )
    gain = reports["continuous"]["tokens_per_s"] / reports["static"]["tokens_per_s"]
    print(f"  continuous batching sustained {gain:.2f}x the token throughput")

    reference = sequential_decode_outputs(profile, scenario, seed=5)
    exact = all(
        np.array_equal(out, ref)
        for s in telemetries["continuous"].sessions
        for out, ref in zip(s.outputs, reference[s.session_id])
    )
    check = reports["continuous"]["analytic_consistency"]
    print(
        f"  per-token outputs bit-exact vs batch-1 decode: {exact}; "
        f"analytic cross-check max drift {check['max_abs_error_s']:.1e}s "
        f"over {check['checked_steps']} steps"
    )

    print("\n== KV pressure: priority-preemptive eviction ==")
    _, _, pressured = run_mode(scenario, True, kv_fraction=0.0625)
    print(
        f"  starved block pool: {pressured['preemptions']} preemptions, "
        f"kv_peak={pressured['kv']['peak_occupancy']:.2f}"
    )
    for cls, row in sorted(pressured.get("per_class", {}).items()):
        label = {0: "batch", 1: "standard", 2: "interactive"}.get(int(cls), cls)
        print(
            f"    class {cls} ({label:11s}) sessions={row['sessions']:4d} "
            f"preempted={row['preemptions']:3d} "
            f"ttft_p99={row['ttft_p99_s']:.2e}s "
            f"slo={row['ttft_slo_attainment']:.3f}"
        )
    print(
        "  interactive sessions evict batch-class KV blocks, so their "
        "first token stays fast under memory pressure"
    )


if __name__ == "__main__":
    main()
