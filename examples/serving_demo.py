"""Serving-runtime demo: queue → scheduler → pool wiring in ~20 lines.

Quickstart::

    import numpy as np
    from repro.nn import Linear, ReLU, Sequential
    from repro.serve import (BatchPolicy, ExecutorPool, ModelProfile,
                             ServingRuntime, poisson_scenario)

    model = Sequential(Linear(64, 128), ReLU(), Linear(128, 10))

    pool = ExecutorPool(4, policy="cache_affinity")   # 4 photonic cores
    runtime = ServingRuntime(                          # admission queue +
        pool,                                          # micro-batcher on top
        BatchPolicy(max_batch_size=32, max_wait_s=2e-7),
        queue_capacity=256,
    )
    runtime.register_model(                            # shard 4 replicas,
        ModelProfile("mlp", model, replicas=4, slo_s=2e-6)  # prewarm caches
    )

    scenario = poisson_scenario("mlp", rate=1e9, duration=2e-6, seed=0)
    runtime.run(scenario, seed=1)                      # simulated clock
    report = runtime.report(scenario)                  # p50/p95/p99, SLO, …

Requests flow: the scenario's arrivals enter the bounded
``AdmissionQueue``; the ``MicroBatcher`` coalesces same-model requests
until the batch fills or the oldest request's ``max_wait_s`` deadline
expires; the ``ExecutorPool`` routes each micro-batch to a free replica
core, which executes it *functionally* (one batched GEMM stream through
the weight-programmed photonic core) while simulated time advances by
the analytic ``repro.arch`` hardware latency.

This script runs the quickstart against micro-batching AND batch-1
serving at the same offered load and prints both reports side by side.
"""

import numpy as np

from repro.nn import Linear, ReLU, Sequential
from repro.serve import (
    BatchPolicy,
    ExecutorPool,
    ModelProfile,
    ServingRuntime,
    poisson_scenario,
)


def build_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        Linear(64, 128, rng=rng), ReLU(), Linear(128, 10, rng=rng)
    )


def serve(policy: BatchPolicy, scenario):
    pool = ExecutorPool(4, policy="cache_affinity")
    runtime = ServingRuntime(pool, policy, queue_capacity=256)
    runtime.register_model(
        ModelProfile("mlp", build_model(), replicas=4, slo_s=2e-6)
    )
    runtime.run(scenario, seed=1)
    return runtime.report(scenario)


def main():
    scenario = poisson_scenario("mlp", rate=1e9, duration=1e-6, seed=0)
    print(
        f"Poisson traffic: {scenario.num_requests} requests over "
        f"{scenario.duration_s * 1e6:.1f} us "
        f"({scenario.offered_rate:.2e} req/s offered)\n"
    )

    batched = serve(BatchPolicy(max_batch_size=32, max_wait_s=2e-7), scenario)
    single = serve(BatchPolicy(max_batch_size=1, max_wait_s=0.0), scenario)

    header = f"{'':24s} {'micro-batched':>15s} {'batch-1':>15s}"
    print(header)
    print("-" * len(header))
    rows = [
        ("completed", "completed", "{:d}"),
        ("rejected", "rejected", "{:d}"),
        ("throughput (req/s)", "throughput_rps", "{:.3e}"),
        ("mean batch size", "mean_batch_size", "{:.1f}"),
        ("SLO attainment", "slo_attainment", "{:.3f}"),
    ]
    for label, key, fmt in rows:
        print(
            f"{label:24s} {fmt.format(batched[key]):>15s} "
            f"{fmt.format(single[key]):>15s}"
        )
    for pct in ("p50_s", "p95_s", "p99_s"):
        print(
            f"latency {pct:16s} {batched['latency'][pct]:>15.3e} "
            f"{single['latency'][pct]:>15.3e}"
        )
    cache_b = batched["programmed_cache"]["hit_rate"]
    cache_s = single["programmed_cache"]["hit_rate"]
    print(f"{'cache hit rate':24s} {cache_b:>15.3f} {cache_s:>15.3f}")

    gain = batched["throughput_rps"] / single["throughput_rps"]
    print(
        f"\nmicro-batching sustained {gain:.1f}x the batch-1 throughput "
        "at equal offered load"
    )
    check = batched["analytic_consistency"]["max_abs_error_s"]
    print(f"telemetry vs analytic arch model: max drift {check:.1e} s")


if __name__ == "__main__":
    main()
