"""Performance comparison: Mirage vs systolic arrays (Fig. 8 flavour).

Sizes iso-energy and iso-area systolic baselines for every Table II data
format and compares training runtime, EDP and power on two workloads,
then prints the Table III inference comparison.

Run:  python examples/performance_comparison.py
"""

from repro.analysis import print_table
from repro.arch import MirageAccelerator, compare_workload, table3_rows

def main():
    acc = MirageAccelerator()
    print(f"Mirage: {acc.config.num_arrays} RNS-MMVMUs of "
          f"{acc.config.g}x{acc.config.v}, k={acc.config.k} "
          f"(moduli {acc.config.moduli.moduli})")
    print(f"energy/MAC = {acc.energy_per_mac * 1e12:.3f} pJ, "
          f"total area = {acc.total_area / 1e-6:.1f} mm2\n")

    for name in ("ResNet50", "Transformer"):
        res = compare_workload(name, acc)
        mirage = res["mirage"]
        print(f"=== {name}: Mirage step {mirage.runtime_s * 1e3:.2f} ms, "
              f"{mirage.energy_j:.3f} J, power {mirage.power_w:.1f} W ===")
        rows = [
            (r.fmt, r.scenario, r.num_arrays, r.runtime_ratio, r.edp_ratio,
             1.0 / r.power_ratio)
            for r in res["rows"]
        ]
        print_table(
            ["format", "scenario", "#SA arrays", "runtime SA/Mirage",
             "EDP SA/Mirage", "power Mirage/SA"],
            rows,
            float_fmt="{:.3g}",
        )
        print()

    print("Inference (Table III):")
    print_table(
        ["accelerator", "model", "IPS", "IPS/W", "IPS/mm2"],
        [(a, m, i, w, mm if mm is not None else float("nan"))
         for a, m, i, w, mm in table3_rows(acc)],
        float_fmt="{:.5g}",
    )


if __name__ == "__main__":
    main()
