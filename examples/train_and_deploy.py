"""Train under the Mirage accuracy model, deploy on the photonic core.

The paper's workflow end to end, in one script:

1. **Train** a small classifier with every GEMM quantised to BFP
   (bm=4, g=8) in forward and backward passes, FP32 master weights —
   the Section V-A accuracy model.
2. **Deploy** the trained weights on the functional photonic core: every
   inference GEMM executes through the full Fig. 2 dataflow (BFP
   encode → RNS residues → optical phases → I/Q detection → CRT →
   exponent path).  Ideal devices reproduce the training-time accuracy
   *exactly*, because the analog path is lossless.
3. **Deploy on fabricated silicon**: the same GEMMs on process-varied
   devices — garbage when uncalibrated, and back to the ideal-device
   accuracy once each MDPU is calibrated (Section VI-E).

Run:  python examples/train_and_deploy.py   (~1 minute)
"""

import numpy as np

from repro.core import CoreConfig, FabricatedTensorCore, PhotonicRnsTensorCore
from repro.nn import Flatten, ReLU, Sequential, make_shape_images, train_classifier
from repro.nn.quantized import QuantizedLinear
from repro.photonic import VariationModel
from repro.quant import make_quantizer

BM, G = 4, 8
CORE = CoreConfig(bm=BM, g=G, v=8, k=5)

# ----------------------------------------------------------------------
# 1. Train with quantised GEMMs (the Mirage accuracy model).
# ----------------------------------------------------------------------
def main():
    rng = np.random.default_rng(0)
    train_set, test_set = make_shape_images(num_classes=4, samples_per_class=24,
                                            image_size=12, seed=0)
    quantizer = make_quantizer("mirage", bm=BM, g=G,
                               rng=np.random.default_rng(1))
    model = Sequential(
        Flatten(),
        QuantizedLinear(144, 32, quantizer=quantizer, rng=rng),
        ReLU(),
        QuantizedLinear(32, 4, quantizer=quantizer, rng=rng),
    )
    result = train_classifier(model, train_set, test_set, epochs=3, seed=0)
    print(f"trained with BFP(bm={BM}, g={G}) GEMMs: "
          f"val accuracy {result.final_metric:.1%}")

    # ----------------------------------------------------------------------
    # 2. Deploy: run the test set through the photonic core, layer by layer.
    # ----------------------------------------------------------------------
    linears = [m for m in model.layers if isinstance(m, QuantizedLinear)]
    test_x = test_set.inputs.reshape(len(test_set.inputs), -1).T  # (features, N)
    test_y = test_set.targets


    def deploy(core) -> float:
        """Forward pass where every GEMM runs on the given tensor core."""
        act = test_x
        for i, lin in enumerate(linears):
            out = core.matmul(np.asarray(lin.weight.data), act)
            out = out + np.asarray(lin.bias.data)[:, None]
            act = np.maximum(out, 0.0) if i < len(linears) - 1 else out
        return float(np.mean(np.argmax(act, axis=0) == test_y))


    ideal = PhotonicRnsTensorCore(CORE)
    print(f"deployed on ideal photonic core:       accuracy {deploy(ideal):.1%}")

    # ----------------------------------------------------------------------
    # 3. Deploy on fabricated (process-varied) devices.
    # ----------------------------------------------------------------------
    variation = VariationModel(dac_bits=8, mrr_rel_error=0.01,
                               ps_rel_bias_std=0.02, seed=5)
    raw = FabricatedTensorCore(CORE, variation, calibrate=None)
    print(f"deployed on fabricated, uncalibrated:  accuracy {deploy(raw):.1%}")

    calibrated = FabricatedTensorCore(CORE, variation, calibrate="per_digit",
                                      measurement_noise=0.002, repeats=2,
                                      refine_iters=1)
    print(f"deployed on fabricated, calibrated:    accuracy {deploy(calibrated):.1%} "
          f"({calibrated.calibration_probes} probe reads)")

    print("""
The ideal photonic core reproduces the quantised-training accuracy exactly
(the analog path is lossless); raw fabrication errors destroy it; per-digit
calibration restores it — train once, calibrate the silicon, deploy.""")


if __name__ == "__main__":
    main()
