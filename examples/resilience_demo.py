"""Resilience demo: deterministic fault injection and fleet recovery.

Quickstart::

    from repro.serve import (FaultPlan, HealthPolicy, TokenServingEngine,
                             EngineConfig, ExecutorPool)

    plan = FaultPlan.replica_kills([(1e-7, 0)]).merge(
        FaultPlan.transient_storm(
            start=1.5e-7, stop=3e-7, rate_per_s=2e7,
            p_uncorrectable=0.2, seed=7, kv_loss_share=0.1,
        )
    )
    engine = TokenServingEngine(
        ExecutorPool(3), profile,
        EngineConfig(recovery=True),
        health=HealthPolicy(suspect_after_s=1e-8, dead_after_s=3e-8),
    )
    engine.run(scenario, seed=5, faults=plan)   # replayable timeline

A :class:`~repro.serve.FaultPlan` is a sorted, seeded schedule of
fault events — replica crashes, stuck/slow workers, RRNS transient
compute faults, KV-block loss — replayed against the simulated clock,
so every failure timeline is exactly reproducible.  The pool tracks
two health planes: ground truth (``responsive``, flipped the instant a
replica dies) and the *detected* state (``healthy → suspect → dead``),
advanced by heartbeat sweeps under a :class:`~repro.serve.HealthPolicy`
— the gap between the two is detection latency, and sessions homed on
a silently-dead replica stall through it.

On a ``dead`` declaration the engine rescues the replica's sessions:
KV released, head-of-class requeue, resume on a surviving replica
re-prefilling only what the shared-prefix cache cannot supply — and
the dead replica is replaced, paying the photonic weight-reprogram
charge.  Transient faults use the paper's RRNS arithmetic: rates come
from :func:`repro.core.rrns_fault_rates`, correctable faults are fixed
in-line by the redundant residues, and uncorrectable verdicts void the
step's commit for the victim session, which recomputes it
bit-identically next step.

This script runs one session trace fault-free, then replays a storm
(crash + slow worker + transient burst) with recovery on and off, and
prints the health timeline, the recovery ledger, and the proof that
completed sessions' token streams never drift.
"""

import numpy as np

from repro.core import FaultTolerantCore, rrns_fault_rates
from repro.nn import KVCacheSpec, Linear, Sequential, Tanh
from repro.serve import (
    DecodeModelProfile,
    EngineConfig,
    ExecutorPool,
    FaultPlan,
    HealthPolicy,
    TokenServingEngine,
    decode_scenario,
)


def build_profile():
    rng = np.random.default_rng(0)
    return DecodeModelProfile(
        "chat",
        Sequential(Linear(16, 32, rng=rng), Tanh(), Linear(32, 16, rng=rng)),
        KVCacheSpec(num_layers=4, num_heads=8, head_dim=16),
        replicas=3,
        ttft_slo_s=2e-3,
    )


def build_engine(recovery, health):
    return TokenServingEngine(
        ExecutorPool(3),
        build_profile(),
        EngineConfig(
            max_batch_size=8,
            block_tokens=16,
            kv_fraction=0.25,
            recovery=recovery,
        ),
        health=health,
    )


def main():
    scenario = decode_scenario(
        "chat",
        rate=6e8,
        duration=2e-7,
        prompt_median=10,
        decode_mean=8,
        class_mix={0: 3, 2: 1},
        seed=11,
    )

    print("=== fault-free baseline ===")
    baseline = build_engine(recovery=True, health=None)
    tel_free = baseline.run(scenario, seed=5)
    makespan = tel_free.makespan()
    print(
        f"  {len(tel_free.sessions)} sessions, makespan {makespan:.3e}s, "
        f"{tel_free.tokens_generated()} tokens"
    )

    # The storm, in fractions of the fault-free makespan: one replica
    # dies mid-ramp, another degrades 3x, and an RRNS transient burst
    # (rates from the paper's fault tolerant core at p_channel=0.02,
    # including a KV-loss share) lands on the survivors.
    rates = rrns_fault_rates(FaultTolerantCore().codec, 0.02)
    print("\n=== RRNS analytic fault rates (p_channel=0.02) ===")
    for key in ("detected", "correctable", "uncorrectable"):
        print(f"  {key:14s} {rates[key]:.4e} per op")
    plan = (
        FaultPlan.replica_kills([(0.2 * makespan, 0)])
        .merge(
            FaultPlan.slow_worker(
                0.3 * makespan, 1, factor=3.0, duration_s=0.2 * makespan
            )
        )
        .merge(
            FaultPlan.from_rrns_rates(
                rates,
                op_rate_per_s=60.0 / rates["detected"] / makespan,
                start=0.35 * makespan,
                stop=0.7 * makespan,
                seed=23,
                kv_loss_share=0.2,
            )
        )
    )
    health = HealthPolicy(
        suspect_after_s=makespan / 100.0, dead_after_s=makespan / 40.0
    )
    print(f"\n=== storm plan ({len(plan.events)} events) ===")
    for event in plan.events:
        extra = ""
        if event.severity:
            extra = f" severity={event.severity:.3g}"
        if event.duration_s:
            extra += f" for {event.duration_s:.2e}s"
        print(f"  t={event.t:.3e}s {event.kind:15s} target={event.target}{extra}")

    print("\n=== recovering run ===")
    engine = build_engine(recovery=True, health=health)
    tel = engine.run(scenario, seed=5, faults=plan)
    for tr in tel.health_transitions:
        print(
            f"  t={tr['t']:.3e}s worker {tr['worker_id']} "
            f"{tr['from']} -> {tr['to']} (silent {tr['silent_for_s']:.2e}s)"
        )
    for window in tel.unavailability_windows():
        print(
            f"  worker {window['worker_id']}: failed {window['failed_at_s']:.3e}s, "
            f"declared dead {window['dead_at_s']:.3e}s "
            f"(detection latency {window['detection_s']:.2e}s)"
        )
    stats = tel.fault_stats()
    print(f"  injected: {stats['injected']}")
    print(
        f"  transients: {stats['transient_corrected']} corrected in-line, "
        f"{stats['transient_uncorrectable']} uncorrectable "
        f"({stats['tokens_retried']} tokens recomputed)"
    )
    print(
        f"  recovery: {stats['sessions_recovered']} sessions rescued, "
        f"{stats['recovery_reprefill_tokens']} tokens re-prefilled, "
        f"{stats['kv_blocks_lost']} KV blocks lost, "
        f"{stats['replicas_replaced']} replicas replaced, "
        f"stall {stats['stall_s']:.2e}s on the degraded worker"
    )
    print(
        f"  completed {len(tel.sessions)}/{len(tel_free.sessions)} sessions, "
        f"failed {tel.sessions_failed}, refcounts balanced: "
        f"{engine.kv.refcounts_balanced()}"
    )

    free_outputs = {s.session_id: s.outputs for s in tel_free.sessions}
    drift = sum(
        1
        for s in tel.sessions
        for got, want in zip(s.outputs, free_outputs[s.session_id])
        if not np.array_equal(got, want)
    )
    print(f"  token-stream drift vs fault-free: {drift} rows (must be 0)")

    print("\n=== same storm, recovery disabled ===")
    bare = build_engine(recovery=False, health=health)
    tel_bare = bare.run(scenario, seed=5, faults=plan)
    print(
        f"  completed {len(tel_bare.sessions)}, "
        f"failed {tel_bare.sessions_failed}, replacements "
        f"{tel_bare.replicas_replaced} — the storm costs real sessions "
        "when nobody re-dispatches them"
    )


if __name__ == "__main__":
    main()
