"""Design-space exploration: the Section VI-A sensitivity analysis.

Sweeps the BFP configuration (bm, g) against the Eq. 13 moduli constraint
and the energy model (Fig. 5b), then the array geometry against spatial
utilisation (Fig. 6), arriving at the paper's chosen design point:
bm=4, g=16, 16x32 MMVMUs, 8 RNS-MMVMUs.

Run:  python examples/design_space_exploration.py
"""

from repro.analysis import print_table
from repro.arch import mac_energy_breakdown, workload, workload_names, workload_utilization
from repro.rns import choose_k_min, required_output_bits, special_moduli_set

def main():
    # ----------------------------------------------------------------------
    # 1. Eq. 13: which special moduli set does each (bm, g) need?
    # ----------------------------------------------------------------------
    rows = []
    for bm in (3, 4, 5):
        for g in (8, 16, 32, 64):
            k = choose_k_min(bm, g)
            mset = special_moduli_set(k)
            rows.append((bm, g, required_output_bits(bm, g), k,
                         str(mset.moduli), f"{mset.dynamic_range_bits:.2f}"))
    print_table(
        ["bm", "g", "output bits (Eq.13)", "k_min", "moduli", "log2 M"],
        rows,
        title="Moduli sizing: smallest {2^k-1, 2^k, 2^k+1} satisfying Eq. 13",
    )

    # ----------------------------------------------------------------------
    # 2. Fig. 5b: energy per MAC across the (bm, g) plane.
    # ----------------------------------------------------------------------
    print()
    rows = []
    for bm in (3, 4, 5):
        for g in (8, 16, 32):
            parts = mac_energy_breakdown(bm, g)
            total = sum(parts.values()) * 1e12
            rows.append((bm, g, total, parts["laser"] * 1e12, parts["tia"] * 1e12))
    print_table(
        ["bm", "g", "total pJ/MAC", "laser pJ", "TIA pJ"],
        rows,
        title="Energy per MAC (paper picks bm=4, g=16 as the accurate minimum)",
    )

    # ----------------------------------------------------------------------
    # 3. Fig. 6: utilisation vs geometry; the 16x32 x 8-array choice.
    # ----------------------------------------------------------------------
    print()
    rows = []
    for v in (16, 32, 64, 128):
        row = [f"16x{v}"]
        for name in workload_names():
            row.append(100.0 * workload_utilization(workload(name), v, 16, 1))
        rows.append(tuple(row))
    print_table(
        ["MMVMU size"] + workload_names(),
        rows,
        title="Spatial utilisation (%) vs MDPU count (utilisation drops past 32)",
        float_fmt="{:.0f}",
    )

    print()
    rows = []
    for arrays in (4, 8, 16, 32):
        row = [arrays]
        for name in workload_names():
            row.append(100.0 * workload_utilization(workload(name), 32, 16, arrays))
        rows.append(tuple(row))
    print_table(
        ["#arrays"] + workload_names(),
        rows,
        title="Spatial utilisation (%) vs RNS-MMVMU count (drops past 8)",
        float_fmt="{:.0f}",
    )

    print("\nchosen design point: bm=4, g=16, MMVMU 16x32, 8 RNS-MMVMUs "
          "(matches the paper's Section VI-A conclusion)")


if __name__ == "__main__":
    main()
