"""Quickstart: run a GEMM through the full photonic RNS dataflow.

Demonstrates the library's core loop (Fig. 2 of the paper):

1. a float GEMM is tiled and BFP-encoded,
2. mantissae are forward-converted to RNS residues,
3. modular MVMs execute on the photonic device model (optical phases,
   2π wrap, I/Q detection, ADCs),
4. residues are CRT-reconstructed, rescaled by the shared exponents and
   accumulated.

The result is bit-exact against the pure-integer BFP reference — the
paper's central claim that RNS makes analog computing lossless.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.bfp import BFPConfig, bfp_matmul_exact
from repro.core import CoreConfig, PhotonicRnsTensorCore
from repro.rns import RnsTensor, special_moduli_set

def main():
    rng = np.random.default_rng(42)

    # ------------------------------------------------------------------
    # 1. Plain RNS arithmetic: integers decompose into residues and back.
    # ------------------------------------------------------------------
    mset = special_moduli_set(5)  # {31, 32, 33}, M = 32736
    print(f"moduli = {mset.moduli}, dynamic range M = {mset.dynamic_range}, "
          f"signed range = [-{mset.psi}, {mset.dynamic_range - 1 - mset.psi}]")

    # Operands must keep the dot products inside [-psi, psi] (Eq. 13 is
    # this constraint specialised to BFP mantissae): 6 products of
    # |a|,|b| <= 20 stay below 6 * 400 = 2400 << 16367.
    a = rng.integers(-20, 21, size=(4, 6))
    b = rng.integers(-20, 21, size=(6, 3))
    ra, rb = RnsTensor.from_signed(a, mset), RnsTensor.from_signed(b, mset)
    assert np.array_equal((ra @ rb).to_signed(), a @ b)
    print("integer GEMM in residue space matches plain integer GEMM\n")

    # ------------------------------------------------------------------
    # 2. The photonic tensor core: float GEMM through the device model.
    # ------------------------------------------------------------------
    core = PhotonicRnsTensorCore(CoreConfig(bm=4, g=16, v=32, k=5))
    w = rng.normal(size=(48, 70))
    x = rng.normal(size=(70, 5))

    y_photonic = core.matmul(w, x)
    y_reference = bfp_matmul_exact(w, x, BFPConfig(bm=4, g=16))
    y_fp64 = w @ x

    assert np.array_equal(y_photonic, y_reference), "photonic path is bit-exact"
    rel = np.abs(y_photonic - y_fp64).max() / np.abs(y_fp64).max()
    print("photonic GEMM == BFP integer reference (bit-exact)")
    print(f"tiles programmed: {core.tiles_programmed}, "
          f"MVM cycles: {core.mvm_cycles}")
    print(f"BFP(bm=4, g=16) quantisation error vs FP64: {rel:.3%} "
          f"(this is the *only* error source — the analog path adds none)")


if __name__ == "__main__":
    main()
