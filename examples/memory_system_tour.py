"""Why Mirage's digital side is sized the way it is (Section IV-C).

The photonic core retires one modular MVM every 0.1 ns; SRAM banks and
conversion circuits run at 1 GHz.  The paper bridges the gap with ten
interleaved copies of every digital resource and claims the result is
exactly balanced.  This tour checks that sizing from three independent
directions:

1. a **roofline**: arithmetic intensity of the tiled training GEMMs vs
   the interleaved SRAM bandwidth;
2. a **cycle-level simulation**: every vector pushed through the 8-stage
   pipeline, with reprogram stalls, vs the closed-form latency model;
3. the **knobs around the design point**: interleave factor and batch
   size, showing where the balance breaks.

Run:  python examples/memory_system_tour.py
"""

import numpy as np

from repro.arch import (
    MirageConfig,
    gemm_intensity,
    mirage_bandwidth,
    simulate_gemm,
    validate_closed_form,
    workload,
    workload_roofline,
)
from repro.arch.memory import MemorySystemModel
from repro.arch.workloads import GemmShape

def main():
    config = MirageConfig()

    # ----------------------------------------------------------------------
    # 1. Roofline: partial-output read-accumulate-write caps intensity.
    # ----------------------------------------------------------------------
    ridge = config.peak_macs_per_s / mirage_bandwidth(config)
    print(f"peak compute   : {config.peak_macs_per_s / 1e12:.1f} TMAC/s")
    print(f"SRAM bandwidth : {mirage_bandwidth(config) / 1e12:.1f} TB/s "
          f"(8 arrays x 10 copies x 3 SRAM types x 1 GHz, vector-wide)")
    print(f"ridge point    : {ridge:.2f} MACs/byte\n")

    big = GemmShape(2048, 4096, 2048)
    print(f"a large conv-like GEMM runs at {gemm_intensity(big, config.v, config.g):.2f} "
          f"MACs/byte — pinned near g/8 = {config.g / 8:.0f} by the FP32 "
          "read-accumulate-write of partials (the Fig. 9 SRAM share).\n")

    for name in ("AlexNet", "ResNet18", "MobileNet", "Transformer"):
        points = workload_roofline(workload(name), config)
        bound = sum(p.memory_bound for p in points)
        eff = sum(p.attainable for p in points) / sum(p.peak_macs_per_s
                                                      for p in points)
        print(f"  {name:<12} {len(points):>3} training GEMMs, "
              f"{bound} memory-bound, permitted efficiency {eff:.2f}")

    # ----------------------------------------------------------------------
    # 2. Cycle-level simulation agrees with the closed form.
    # ----------------------------------------------------------------------
    print("\ndiscrete-event simulation vs closed-form latency:")
    for shape in ((64, 64, 256), (256, 363, 1024)):
        v = validate_closed_form(GemmShape(*shape))
        print(f"  {shape[0]}x{shape[1]}x{shape[2]}: simulated/analytic = "
              f"{v['ratio']:.3f} (constant {v['gap_cycles']:.0f}-cycle "
              "pipeline fill)")

    # ----------------------------------------------------------------------
    # 3. Break the balance: fewer copies starve the optics.
    # ----------------------------------------------------------------------
    print("\ninterleave factor vs sustained photonic utilisation (simulated):")
    for il in (10, 5, 2):
        cfg = MirageConfig(interleave_factor=il)
        secs, stats = simulate_gemm(GemmShape(256, 363, 1024), cfg)
        makespan = round(secs / cfg.cycle_time_s)
        static = MemorySystemModel(cfg).throughput_bound()
        print(f"  {il:>2} copies: MVM stage busy "
              f"{stats['mvm'].utilisation(makespan, 1):.0%} "
              f"(static model predicts {static:.0%})")

    print("""
Ten copies keep the optics at ~1 MVM per 0.1 ns — the paper's sizing —
and the static demand/capacity model, the roofline and the cycle-level
simulation all agree on where the balance sits and how it degrades.""")


if __name__ == "__main__":
    main()
