"""Design-space sweep: regenerate the paper's design-point selection.

Walks the (bm, g, v, #arrays) grid of Section VI-A, filters by the Eq. 13
moduli constraint and the Fig. 5a accuracy bar, and prints the Pareto
frontier under (energy/MAC, area, effective throughput).  The paper's
chosen configuration — bm=4, g=16, 16x32 MMVMUs — leads the frontier.

Run:  python examples/pareto_sweep.py
"""

from repro.analysis import print_table
from repro.arch import default_design_space, pareto_frontier, sweep_designs

def main():
    space = default_design_space()
    print(f"sweeping bm={space['bm']}, g={space['g']}, v={space['v']}, "
          f"arrays={space['num_arrays']} over all seven workloads...\n")

    points = sweep_designs(space)
    accurate = [p for p in points if p.accurate]
    frontier = pareto_frontier(points)

    print(f"{len(points)} feasible configurations, {len(accurate)} meet the "
          f"Fig. 5a accuracy bar, {len(frontier)} on the Pareto frontier:\n")

    print_table(
        ["bm", "g", "v", "#arrays", "k", "pJ/MAC", "area mm2", "peak W",
         "utilisation", "eff. TMAC/s"],
        [
            (p.bm, p.g, p.v, p.num_arrays, p.k,
             p.energy_per_mac * 1e12, p.area / 1e-6, p.peak_power,
             p.utilization, p.effective_macs_per_s / 1e12)
            for p in frontier
        ],
        title="Pareto frontier (energy/MAC v, area v, effective throughput ^)",
        float_fmt="{:.3g}",
    )

    paper = [p for p in frontier if (p.bm, p.g, p.v, p.num_arrays) == (4, 16, 32, 8)]
    print(f"\npaper design point bm=4, g=16, 16x32, 8 arrays on frontier: "
          f"{'yes' if paper else 'no'}")


if __name__ == "__main__":
    main()
