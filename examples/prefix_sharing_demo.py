"""Prefix sharing demo: shared system-prompt fleet vs cold prefill.

Quickstart::

    from repro.nn import KVCacheSpec, Linear, Sequential, Tanh
    from repro.serve import (DecodeModelProfile, EngineConfig,
                             ExecutorPool, TokenServingEngine,
                             shared_prefix_scenario)

    profile = DecodeModelProfile(
        "chat",
        Sequential(Linear(48, 96), Tanh(), Linear(96, 48)),  # surrogate
        KVCacheSpec(num_layers=4, num_heads=8, head_dim=16), # KV geometry
        ttft_slo_s=2e-3,
    )
    engine = TokenServingEngine(
        ExecutorPool(2), profile,
        EngineConfig(prefix_caching=True, prefill_chunk_tokens=16),
    )
    scenario = shared_prefix_scenario(   # 90% share one system prompt
        "chat", rate=1e9, duration=2e-7, prefix_len=64,
    )
    engine.run(scenario, seed=5)
    report = engine.report(scenario)   # report["prefix"]: hit rate, …

Sessions whose prompts share a head — a common system prompt, a
few-shot template, a re-submitted conversation history — attach to the
same cached KV blocks instead of each re-prefilling them: admission
walks a radix tree of chained token-block hashes, increfs the cached
head, and schedules only the uncached suffix as chunked prefill work
(``arch.inference.chunked_prefill_latency``).  Blocks free only at
refcount zero; unreferenced cached prefixes are evicted LRU, leaves
first.

This script runs one 90 %-shared-prefix fleet through the engine twice
— prefix cache on vs off — and prints the hit rate, prefill tokens
saved, and TTFT p99, then shows multi-turn re-submissions hitting
their warm history.
"""

import numpy as np

from repro.nn import KVCacheSpec, Linear, Sequential, Tanh
from repro.serve import (
    DecodeModelProfile,
    EngineConfig,
    ExecutorPool,
    TokenServingEngine,
    multiturn_scenario,
    sequential_decode_outputs,
    shared_prefix_scenario,
)


def build_profile() -> DecodeModelProfile:
    rng = np.random.default_rng(0)
    model = Sequential(
        Linear(48, 96, rng=rng), Tanh(), Linear(96, 48, rng=rng)
    )
    return DecodeModelProfile(
        "chat",
        model,
        KVCacheSpec(num_layers=4, num_heads=8, head_dim=16),
        ttft_slo_s=2e-3,
    )


def run_fleet(scenario, prefix_caching: bool):
    engine = TokenServingEngine(
        ExecutorPool(2),
        build_profile(),
        EngineConfig(
            max_batch_size=16,
            block_tokens=16,
            kv_fraction=0.25,
            prefix_caching=prefix_caching,
            prefill_chunk_tokens=16,
        ),
    )
    telemetry = engine.run(scenario, seed=5)
    return engine, telemetry, engine.report(scenario)


def main() -> None:
    profile = build_profile()
    scenario = shared_prefix_scenario(
        "chat",
        rate=8e8,
        duration=2e-7,
        prefix_len=64,
        shared_fraction=0.9,
        suffix_median=8,
        decode_mean=12,
        suffix_max=32,
        decode_max=48,
        seed=11,
    )
    print(
        f"shared-prefix fleet: {scenario.num_requests} sessions, 90% open "
        "with one 64-token system prompt"
    )

    print("\n== prefix cache on vs cold prefill ==")
    reports = {}
    telemetries = {}
    for mode, caching in (("shared", True), ("cold", False)):
        _, telemetries[mode], reports[mode] = run_fleet(scenario, caching)
        rep = reports[mode]
        pre = rep["prefix"]
        print(
            f"  {mode:7s} hit_rate={pre['hit_rate']:.2f} "
            f"tokens_saved={pre['prefill_tokens_saved']:6d} "
            f"prefill_priced={pre['prefill_tokens_priced']:6d} "
            f"ttft_p99={rep['ttft']['p99_s']:.2e}s "
            f"tokens/s={rep['tokens_per_s']:.3e}"
        )
    shared_pre = reports["shared"]["prefix"]
    reduction = (
        reports["cold"]["prefix"]["prefill_tokens_priced"]
        / shared_pre["prefill_tokens_priced"]
    )
    print(
        f"  prefix reuse cut prefill work {reduction:.2f}x "
        f"({shared_pre['cached_token_fraction']:.0%} of context tokens "
        "served from cache)"
    )

    reference = sequential_decode_outputs(profile, scenario, seed=5)
    exact = all(
        np.array_equal(out, ref)
        for s in telemetries["shared"].sessions
        for out, ref in zip(s.outputs, reference[s.session_id])
    )
    check = reports["shared"]["analytic_consistency"]
    print(
        f"  per-token outputs bit-exact vs batch-1 decode: {exact}; "
        f"analytic cross-check max drift {check['max_abs_error_s']:.1e}s "
        f"over {check['checked_steps']} steps"
    )

    print("\n== multi-turn re-submission (warm prefix) ==")
    conversations = multiturn_scenario(
        "chat",
        rate=2e8,
        duration=2e-7,
        turns=3,
        think_time_s=4e-9,
        prompt_median=32,
        turn_tokens_median=16,
        decode_mean=12,
        seed=7,
    )
    engine, _, warm = run_fleet(conversations, True)
    pre = warm["prefix"]
    print(
        f"  {warm['sessions']} turn submissions: hit_rate={pre['hit_rate']:.2f}, "
        f"tokens_saved={pre['prefill_tokens_saved']}, "
        f"cached_frac={pre['cached_token_fraction']:.2f}"
    )
    print(
        f"  refcounts balanced at drain: {engine.kv.refcounts_balanced()} "
        f"(cached blocks retained: {engine.kv.cached_blocks})"
    )
    print(
        "  each turn re-presents the conversation so far, so only the "
        "newest turn's tokens pay prefill GEMMs"
    )


if __name__ == "__main__":
    main()
