"""Calibrating a fabricated MDPU (Section VI-E) + choosing the actuation
technology (Section II-E1).

Part 1 fabricates an MDPU instance with deliberately coarse process
variations (VpiL biases, MRR detuning, finite weight DACs), measures its
residue error rate, then characterises and corrects it through phase
probes only — the claim that fabrication errors "can be calibrated away",
executed.  Part 2 prints the quantified device-technology trade-off that
motivates NOEMS shifters + MRR switches.

Run:  python examples/calibration_demo.py
"""

import numpy as np

from repro.photonic import (
    CalibratedMDPU,
    VariationModel,
    VariedMDPU,
    characterize,
    technology_comparison,
)

MODULUS, G = 33, 16
def main():
    rng = np.random.default_rng(3)

    # ----------------------------------------------------------------------
    # Part 1: fabricate -> measure -> calibrate -> measure again.
    # ----------------------------------------------------------------------
    variation = VariationModel(dac_bits=8, mrr_rel_error=0.01,
                               ps_rel_bias_std=0.02, seed=11)
    mdpu = VariedMDPU(MODULUS, G, variation)
    x = rng.integers(0, MODULUS, size=(400, G))
    w = rng.integers(0, MODULUS, size=(400, G))
    exact = mdpu.exact(x, w)

    print(f"fabricated MDPU (m={MODULUS}, g={G}): "
          f"{np.mean(mdpu.dot(x, w) != exact):.1%} of dot products wrong")

    for mode, label in (("per_mmu", "per-MMU voltage correction only"),
                        ("per_digit", "per-digit trim + closed-loop refine")):
        table = characterize(mdpu, mode=mode, measurement_noise=0.005,
                             repeats=3, seed=1)
        err = np.mean(CalibratedMDPU(mdpu, table).dot(x, w) != exact)
        print(f"  {label:<38}: {err:.1%} wrong  ({table.probes} probe reads)")

    # End to end: a whole tensor core built from varied devices, calibrated.
    from repro.bfp import BFPConfig
    from repro.bfp.gemm import bfp_matmul_exact
    from repro.core import CoreConfig, FabricatedTensorCore

    cfg = CoreConfig(bm=4, g=8, v=8, k=5)
    w_mat, x_mat = rng.normal(size=(20, 40)), rng.normal(size=(40, 3))
    reference = bfp_matmul_exact(w_mat, x_mat, BFPConfig(cfg.bm, cfg.g))
    raw_core = FabricatedTensorCore(cfg, variation, calibrate=None)
    cal_core = FabricatedTensorCore(cfg, variation, calibrate="per_digit",
                                    measurement_noise=0.002, repeats=2,
                                    refine_iters=1)
    raw_err = np.abs(raw_core.matmul(w_mat, x_mat) - reference).max()
    print(f"\nfull tensor core on these devices, uncalibrated: "
          f"GEMM max error {raw_err:.1f}")
    print(f"same core, calibrated: bit-exact vs BFP reference = "
          f"{np.array_equal(cal_core.matmul(w_mat, x_mat), reference)} "
          f"({cal_core.calibration_probes} probe reads)")

    print("""
The shared-voltage knob cannot remove per-digit MRR detuning; per-digit
trimmers plus a closed-loop pass at full drive push the error to zero.
The refinement stage matters because a segment's unwrapped drive reaches
~(m-1)*2^d * 2pi/m ~ 30 turns: small-signal probes cannot pin the drive
gain to the 1e-4 relative accuracy the phase budget needs, but probing
*through* the corrections at full drive can (the residual is already
inside +-pi).\n""")

    # ----------------------------------------------------------------------
    # Part 2: which phase-shifter technology can host this design?
    # ----------------------------------------------------------------------
    print(f"{'technology':<13} {'MMU mm':>7} {'loss dB':>8} {'tile ovh':>9} "
          f"{'heater mW':>10} {'xtalk err':>10}")
    for row in technology_comparison(modulus=MODULUS, g=G, trials=200):
        print(f"{row['technology']:<13} {row['mmu_length_mm']:>7.2f} "
              f"{row['mmu_loss_db']:>8.2f} {row['tile_load_overhead']:>9.1%} "
              f"{row['static_power_mw_per_mmu']:>10.0f} "
              f"{row['crosstalk_error_rate']:>10.1%}")

    print("""
Thermo-optic heaters stall every tile load (KHz bandwidth) and leak
phase into neighbours; free-carrier shifters reprogram in nanoseconds
but cost tens of mm and tens of dB per MMU.  NOEMS + MRR gating keeps
the MMU at 0.57 mm / <1 dB with negligible static power — the paper's
Section II-E1 design choice.""")


if __name__ == "__main__":
    main()
