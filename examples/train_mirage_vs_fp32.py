"""Train a CNN with the Mirage accuracy model and compare against FP32.

Reproduces the Section V-A methodology at laptop scale: every GEMM
(convolution and linear, forward and both backward passes) runs through
the BFP(bm, g) quantiser; weights stay FP32 master copies; updates happen
in FP32.  A bm=3 configuration is included to show the accuracy collapse
the paper's Fig. 5a reports.

Run:  python examples/train_mirage_vs_fp32.py
"""

import numpy as np

from repro.nn import build_resnet18_small, make_shape_images, train_classifier
from repro.quant import make_quantizer

EPOCHS = 4
SEED = 0


def main():
    train_set, test_set = make_shape_images(
        num_classes=8, samples_per_class=40, image_size=16, seed=SEED
    )
    print(f"synthetic ImageNet stand-in: {len(train_set)} train / "
          f"{len(test_set)} test images, 8 classes\n")

    results = {}
    for label, fmt, bm in (
        ("FP32", None, None),
        ("Mirage bm=4, g=16", "mirage", 4),
        ("Mirage bm=3, g=16", "mirage", 3),
    ):
        rng = np.random.default_rng(SEED)
        quantizer = make_quantizer(fmt, bm=bm, g=16) if fmt else None
        model = build_resnet18_small(8, quantizer=quantizer, rng=rng)
        result = train_classifier(
            model, train_set, test_set, epochs=EPOCHS, batch_size=32, seed=SEED
        )
        results[label] = result
        losses = ", ".join(f"{l:.3f}" for l in result.history)
        print(f"{label:22s} val acc = {100 * result.final_metric:5.1f}%   "
              f"(train loss per epoch: {losses})")

    fp32 = results["FP32"].final_metric
    mir4 = results["Mirage bm=4, g=16"].final_metric
    print(f"\nMirage(bm=4) - FP32 accuracy gap: {100 * (mir4 - fp32):+.1f} "
          f"points (paper: comparable accuracy; bm=3 degrades)")


if __name__ == "__main__":
    main()
