"""Observability demo: trace a fault storm, export it, attribute it.

Quickstart::

    from repro.serve import (Observability, SLOSpec, SLOTracker,
                             TokenServingEngine, default_windows)

    obs = Observability(
        tracing=True,
        slo=SLOTracker(SLOSpec("ttft", 0.95, default_windows(horizon))),
    )
    engine = TokenServingEngine(pool, profile, config, observability=obs)
    telemetry = engine.run(scenario, seed=5, faults=storm)

    obs.tracer.chrome_trace()          # -> Perfetto-loadable JSON
    obs.registry.prometheus_text()     # -> lossless text exposition
    obs.profiler().attribute_engine(engine.profile, telemetry)

One :class:`~repro.serve.Observability` instance wires the whole plane
through the engine: every session gets a gap-free span timeline on the
simulated clock (enqueue -> queue_wait -> prefill/decode -> stall ->
retire), the pool emits dispatch/reprogram spans, the fleet monitor
emits health-transition instants, and telemetry records through a typed
metrics registry.  The hardware-attribution profiler then re-prices
every recorded engine step with the analytic ``arch.inference`` model
and splits the busy time into reprogram/stream/attention components —
asserting the reconstruction matches the recorded floats *bit-for-bit*.

The analysis layer then turns the recorded run into artifacts::

    obs.export()                       # -> diffable run snapshot
    diff_runs(a, b)                    # -> leaf-by-leaf regression diff
    obs.flight_report(...)             # -> deterministic flight report

This script replays a small replica-kill + RRNS-transient storm with
tracing on, writes the Chrome trace (load it at https://ui.perfetto.dev)
and the Prometheus dump to a temp directory, prints the session
timeline of one recovered session plus the top-10 attribution rows,
then builds the critical-path flight report and self-diffs the run's
export against itself (zero deltas — the replay-determinism property
``benchmarks/bench_observability.py`` gates across two real replays).
"""

import json
import tempfile
from pathlib import Path

import numpy as np

from repro.nn import KVCacheSpec, Linear, Sequential, Tanh
from repro.serve import (
    DecodeModelProfile,
    EngineConfig,
    ExecutorPool,
    FaultPlan,
    HealthPolicy,
    Observability,
    SLOSpec,
    SLOTracker,
    TokenServingEngine,
    default_windows,
    diff_runs,
    parse_prometheus_text,
    report_to_markdown,
)
from repro.serve.traffic import Scenario


def build_engine(obs):
    rng = np.random.default_rng(0)
    model = Sequential(
        Linear(12, 24, rng=rng), Tanh(), Linear(24, 12, rng=rng)
    )
    profile = DecodeModelProfile(
        "chat",
        model,
        kv=KVCacheSpec(num_layers=2, num_heads=2, head_dim=4),
        replicas=3,
        ttft_slo_s=1e-5,
    )
    config = EngineConfig(
        max_batch_size=4, block_tokens=4, kv_fraction=0.5, recovery=True
    )
    return TokenServingEngine(
        ExecutorPool(3),
        profile,
        config,
        health=HealthPolicy(suspect_after_s=1e-8, dead_after_s=3e-8),
        observability=obs,
    )


def main():
    arrivals = tuple(
        (i * 1e-7, "chat", i % 3, 6, 8) for i in range(16)
    )
    scenario = Scenario("storm_demo", arrivals, 16 * 1e-7)
    storm = FaultPlan.replica_kills([(4e-7, 0)]).merge(
        FaultPlan.transient_storm(
            start=5e-7,
            stop=9e-7,
            rate_per_s=2e6,
            p_uncorrectable=0.3,
            seed=7,
            kv_loss_share=0.2,
        )
    )

    obs = Observability(
        tracing=True,
        slo=SLOTracker(SLOSpec("ttft", 0.95, default_windows(2e-6))),
    )
    engine = build_engine(obs)
    telemetry = engine.run(scenario, seed=1, faults=storm)

    print("=== traced fault storm ===")
    print(
        f"sessions completed: {len(telemetry.sessions)}, "
        f"recovered: {telemetry.sessions_recovered}, "
        f"replica crashes: {telemetry.replica_crashes}"
    )
    summary = obs.tracer.summary()
    print(
        f"trace: {summary['spans']} spans, {summary['instants']} instants, "
        f"by track {summary['spans_by_track']}"
    )

    gap_free = sum(
        obs.tracer.gap_free(s.session_id, start=s.arrival_time,
                            end=s.finish_time)
        for s in telemetry.sessions
    )
    print(f"gap-free session timelines: {gap_free}/{len(telemetry.sessions)}")

    # One session's life, phase by phase (pick one that got preempted if
    # the storm produced any — its timeline shows the recovery seam).
    preempted = {
        i.track_id
        for i in obs.tracer.instants(track="session", name="preempt")
    }
    victim = min(preempted) if preempted else telemetry.sessions[0].session_id
    print(f"\nsession {victim} timeline (simulated us):")
    for span in obs.tracer.session_timeline(victim):
        print(
            f"  {span.t0 * 1e6:9.4f} .. {span.t1 * 1e6:9.4f}  "
            f"{span.name} ({span.category or 'phase'})"
        )

    # Hardware attribution: re-price every step, assert bit-exactness.
    result = obs.profiler(engine.service.accelerator).attribute_engine(
        engine.profile, telemetry
    )
    print(
        f"\nattribution over {result['checked_spans']} engine steps "
        f"(max abs error {result['max_abs_error_s']:.1e} s — exact):"
    )
    print(f"{'component':30s} {'seconds':>12s} {'share':>7s} {'spans':>6s}")
    for row in result["components"][:10]:
        print(
            f"{row['path']:30s} {row['seconds']:12.3e} "
            f"{row['share']:6.1%} {row['spans']:6d}"
        )

    # Export both artifacts; the Prometheus dump round-trips exactly.
    out_dir = Path(tempfile.mkdtemp(prefix="repro_obs_"))
    trace_path = out_dir / "storm_trace.json"
    prom_path = out_dir / "metrics.prom"
    trace_path.write_text(obs.tracer.chrome_trace())
    prom_text = obs.registry.prometheus_text()
    prom_path.write_text(prom_text)
    events = json.loads(trace_path.read_text())["traceEvents"]
    round_trip = parse_prometheus_text(prom_text) == obs.registry.samples()
    print(f"\nwrote Perfetto trace ({len(events)} events) -> {trace_path}")
    print(
        f"wrote Prometheus dump ({len(obs.registry.samples())} samples, "
        f"round-trip exact: {round_trip}) -> {prom_path}"
    )

    slo = obs.slo.summary(telemetry.makespan())
    print(
        f"SLO '{slo['slo']}' (objective {slo['objective']}): "
        f"{slo['alerts_fired']} burn alerts, per-class error rates "
        + str({
            k: round(v["error_rate"], 3) if v["error_rate"] is not None else None
            for k, v in slo["keys"].items()
        })
    )

    # Critical-path flight report: every completed session's phase sums
    # telescope to its enqueue->retire interval bit-exactly.
    report = obs.flight_report(
        name="storm demo",
        config={"scenario": scenario.name, "seed": 1, "replicas": 3},
        telemetry=telemetry,
        profile=engine.profile,
        accelerator=engine.service.accelerator,
        now=telemetry.makespan(),
    )
    rollup = report["critical_path"]
    report_path = out_dir / "flight_report.md"
    report_path.write_text(report_to_markdown(report))
    print(
        f"\nflight report: {rollup['sessions']} sessions, "
        f"{rollup['exact_sessions']} bit-exact phase decompositions, "
        f"dominant phases by share "
        + str({
            p: round(rollup["phase_shares"][p], 3)
            for p in ("prefill", "decode", "stall")
        })
        + f" -> {report_path}"
    )

    # Self-diff: a run export diffed against itself is all-zero — the
    # property the bench checks across two genuinely separate replays.
    export = obs.export(
        config={"scenario": scenario.name, "seed": 1},
        sessions=telemetry.sessions,
    )
    self_diff = diff_runs(export, export)
    print(
        f"self-diff: {len(self_diff['changes'])} change(s) over "
        f"{self_diff['compared']} compared leaves, "
        f"regression={self_diff['regression']}"
    )


if __name__ == "__main__":
    main()
