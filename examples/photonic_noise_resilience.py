"""Noise resilience: analog imperfections and RRNS error correction.

Exercises the Section VI-E machinery:

1. a trained classifier runs on the photonic executor at decreasing
   detector SNR — accuracy holds until phase levels merge, then collapses;
2. Eq. 14 sizes the DAC precision needed to keep encoding errors inside
   the phase-level budget;
3. a redundant-RNS codec corrects injected residue-channel errors.

Run:  python examples/photonic_noise_resilience.py
"""

import numpy as np

from repro.core import CoreConfig, compare_with_reference
from repro.nn import Linear, ReLU, Sequential, Tensor, cross_entropy, SGD
from repro.photonic import NoiseModel, min_dac_bits
from repro.rns import RRNSCodec

def main():
    rng = np.random.default_rng(1)

    # ----------------------------------------------------------------------
    # 1. Train a small MLP, then run it on the noisy photonic core.
    # ----------------------------------------------------------------------
    n, dim, classes = 240, 24, 4
    centers = rng.normal(scale=2.0, size=(classes, dim))
    labels = rng.integers(0, classes, size=n)
    inputs = centers[labels] + rng.normal(scale=0.8, size=(n, dim))

    model = Sequential(Linear(dim, 32, rng=rng), ReLU(), Linear(32, classes, rng=rng))
    opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
    for _ in range(60):
        opt.zero_grad()
        loss = cross_entropy(model(Tensor(inputs)), labels)
        loss.backward()
        opt.step()
    digital_acc = float(np.mean(model(Tensor(inputs)).data.argmax(-1) == labels))
    print(f"digital FP accuracy: {100 * digital_acc:.1f}%\n")

    print("detector SNR sweep (amplitude SNR at the I/Q detectors):")
    for snr in (1000.0, 200.0, 60.0, 40.0, 25.0, 15.0):
        noise = NoiseModel.from_snr(snr)
        stats = compare_with_reference(
            model, inputs, CoreConfig(), noise, np.random.default_rng(7)
        )
        print(f"  SNR {snr:7.0f}: prediction agreement vs digital = "
              f"{100 * stats['prediction_agreement']:5.1f}%,  "
              f"max rel output error = {stats['max_rel_error']:.3f}")
    print("  (the paper sizes laser power for SNR > m = 33; below that, "
          "phase levels merge)\n")

    # ----------------------------------------------------------------------
    # 2. Eq. 14: minimum DAC bits per modulus (paper: 8 bits suffice).
    # ----------------------------------------------------------------------
    for m in (31, 32, 33):
        bits = min_dac_bits(h=16, modulus=m, b_out=5)
        print(f"modulus {m}: minimum DAC precision for 5-bit output = {bits} bits")
    print()

    # ----------------------------------------------------------------------
    # 3. RRNS: detect and correct corrupted residue channels.
    # ----------------------------------------------------------------------
    codec = RRNSCodec(info_moduli=(31, 32, 33), redundant_moduli=(37, 41))
    values = rng.integers(0, codec.legal_range, size=8)
    encoded = codec.encode(values)
    # Corrupt one random channel per element.
    corrupted = encoded.copy()
    for j in range(encoded.shape[1]):
        ch = rng.integers(0, encoded.shape[0])
        corrupted[ch, j] = (corrupted[ch, j] + rng.integers(1, 5)) % codec.full_set.moduli[ch]
    decoded, details = codec.decode(corrupted)
    fixed = sum(1 for d in details if d.ok and d.corrected_channels)
    print(f"RRNS({codec.info_moduli} + {codec.redundant_moduli}): corrected "
          f"{fixed}/{len(values)} single-channel errors; "
          f"values recovered exactly: {np.array_equal(decoded, values)}")


if __name__ == "__main__":
    main()
