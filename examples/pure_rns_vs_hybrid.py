"""Stay-in-RNS inference vs Mirage's hybrid arithmetic (Section VII).

Res-DNN and RNSnet keep the whole network in residue form to avoid
reverse conversions; Mirage converts back to BFP/FP32 after every GEMM.
This example runs the same float-trained MLP through both pipelines and
prints what each buys and pays:

* the pure pipeline performs ONE reverse conversion (at the output) but
  needs in-RNS rescales after every GEMM, sign detections for ReLU, and
  polynomial fits for smooth activations — and silently wraps when a
  layer outgrows the moduli set;
* the hybrid pipeline converts at every layer boundary but every rescale
  and activation is exact.

Run:  python examples/pure_rns_vs_hybrid.py
"""

import numpy as np

from repro.arch import (
    DenseLayer,
    HybridRnsNetwork,
    PureRnsConfig,
    PureRnsNetwork,
    float_reference_forward,
)

def main():
    rng = np.random.default_rng(7)

    # A small float-"trained" MLP (random weights suffice to show the
    # numeric behaviour; the benchmark harness uses trained ones).
    layers = [
        DenseLayer(rng.normal(0, 0.3, (32, 16)), rng.normal(0, 0.05, 32)),
        DenseLayer(rng.normal(0, 0.3, (32, 32)), rng.normal(0, 0.05, 32)),
        DenseLayer(rng.normal(0, 0.3, (8, 32)), rng.normal(0, 0.05, 8),
                   apply_activation=False),
    ]
    x = rng.normal(0, 1.0, (16, 64))
    reference = float_reference_forward(layers, x)

    print(f"{'config':<26} {'pure err':>9} {'hybrid err':>10} "
          f"{'rescales':>9} {'sign det.':>9} {'conversions':>11} {'wraps':>6}")
    for k, f in ((6, 5), (8, 7), (10, 9)):
        cfg = PureRnsConfig(k=k, activation_frac_bits=f, weight_frac_bits=f)
        pure_out, pure_ops = PureRnsNetwork(layers, cfg).forward(x)
        hybrid_out, hybrid_ops = HybridRnsNetwork(layers, cfg).forward(x)
        pure_err = np.abs(pure_out - reference).max()
        hybrid_err = np.abs(hybrid_out - reference).max()
        conv = hybrid_ops.forward_conversions + hybrid_ops.reverse_conversions
        print(f"k={k} ({cfg.operand_bits}-bit residues)    "
              f"{pure_err:>9.4f} {hybrid_err:>10.4f} {pure_ops.rescales:>9} "
              f"{pure_ops.sign_detections:>9} {conv:>11} "
              f"{pure_ops.overflows:>6}")

    # Push the activations past the k=5 set's range: the pure path wraps
    # silently and the answer is garbage, with no error flag anywhere.
    narrow = PureRnsConfig(k=5, activation_frac_bits=5, weight_frac_bits=5)
    hot_x = x * 8.0
    pure_out, pure_ops = PureRnsNetwork(layers, narrow).forward(hot_x)
    wrapped_err = np.abs(
        pure_out - float_reference_forward(layers, hot_x)
    ).max()
    print(f"\nk=5 with 8x hotter activations: {pure_ops.overflows} silent "
          f"wraps, max output error {wrapped_err:.1f} (vs ~0.5 above)")

    print("""
Reading the table:
* the hybrid path tracks FP64 more closely at every width — its rescale
  is a real division, the pure path floors in fixed point;
* pure-RNS trades ~10x fewer conversions for thousands of in-RNS
  rescales/sign detections, each an O(n^2) mixed-radix circuit;
* shrink k below the layers' dynamic range and the pure path wraps
  silently (the 'wraps' column) — the hybrid path cannot, because it
  re-ranges in float after every GEMM.  This is why Mirage pairs narrow
  residues with per-GEMM conversions (Section VII).""")


if __name__ == "__main__":
    main()
