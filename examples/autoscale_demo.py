"""Autoscaling + priority demo: SLO-driven replicas under a diurnal ramp.

Quickstart::

    from repro.serve import (AutoscalerPolicy, BatchPolicy, ExecutorPool,
                             ModelProfile, Priority, ServingRuntime,
                             diurnal_scenario, priority_scenario)

    pool = ExecutorPool(4, policy="cache_affinity")
    runtime = ServingRuntime(
        pool,
        BatchPolicy(max_batch_size=32, max_wait_s=1e-7,
                    aging_rate_per_s=1e6),          # low classes age upward
        queue_capacity=256,
        autoscaler=AutoscalerPolicy(                # control loop cadence,
            interval_s=1e-7, window_s=4e-7,         # p99 window, and replica
            min_replicas=1, max_replicas=4,         # bounds
        ),
    )
    runtime.register_model(
        ModelProfile("mlp", model, replicas=1, slo_s=2e-6)
    )
    runtime.run(diurnal_scenario("mlp", 2e8, 3.2e9, 8e-6, seed=0), seed=1)
    report = runtime.report(scenario)   # report["autoscaler"]["events"], …

The autoscaler watches each model's windowed p99 against its SLO and its
queue depth every ``interval_s`` of *simulated* time.  Scale-ups prewarm
the new replica's programmed-weight tiles — the phase-shifter
reprogramming latency from ``repro.arch.latency`` is charged to the
replica's busy window before it serves its first batch.  Scale-downs
drain: the retired worker finishes its in-flight batch, then simply
stops receiving work.

This script runs a compressed day/night ramp through an autoscaled
deployment and a peak-provisioned static one, prints the replica
timeline, then replays a mixed-priority overload showing class-aware
shedding (interactive traffic evicts batch traffic at admission, and the
per-class SLO attainment splits accordingly).
"""

import numpy as np

from repro.nn import Linear, ReLU, Sequential
from repro.serve import (
    AutoscalerPolicy,
    BatchPolicy,
    ExecutorPool,
    ModelProfile,
    Priority,
    ServingRuntime,
    diurnal_scenario,
    priority_scenario,
)

BASE_RATE, PEAK_RATE, DURATION = 2e8, 3.2e9, 8e-6
SLO_S = 2e-6


def build_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        Linear(64, 128, rng=rng), ReLU(), Linear(128, 10, rng=rng)
    )


def deploy(replicas, autoscaler=None, aging=0.0, queue_capacity=512):
    pool = ExecutorPool(4, policy="cache_affinity")
    runtime = ServingRuntime(
        pool,
        BatchPolicy(
            max_batch_size=32, max_wait_s=1e-7, aging_rate_per_s=aging
        ),
        queue_capacity=queue_capacity,
        autoscaler=autoscaler,
    )
    runtime.register_model(
        ModelProfile("mlp", build_model(), replicas=replicas, slo_s=SLO_S)
    )
    return runtime


def main():
    scenario = diurnal_scenario(
        "mlp", BASE_RATE, PEAK_RATE, DURATION, seed=21
    )
    print(
        f"diurnal ramp: {scenario.num_requests} requests over "
        f"{DURATION * 1e6:.0f} us ({BASE_RATE:.1e} night -> "
        f"{PEAK_RATE:.1e} req/s midday)\n"
    )

    policy = AutoscalerPolicy(
        interval_s=1e-7, window_s=4e-7, min_replicas=1, max_replicas=4,
        queue_high_per_replica=16.0, scale_down_cooldown_s=4e-7,
    )
    auto = deploy(1, autoscaler=policy)
    auto.run(scenario, seed=1)
    auto_rep = auto.report(scenario)

    static = deploy(4)
    static.run(scenario, seed=1)
    static_rep = static.report(scenario)

    print("replica timeline (autoscaled):")
    for e in auto_rep["autoscaler"]["events"]:
        arrow = "^" if e["to"] > e["from"] else "v"
        print(
            f"  t={e['t'] * 1e6:6.2f} us  {e['from']} -> {e['to']} {arrow}"
            + (
                f"  (prewarm {e['prewarm_s'] * 1e9:.0f} ns)"
                if e["prewarm_s"]
                else ""
            )
        )

    rs_auto = auto_rep["autoscaler"]["replica_seconds"]["mlp"]
    rs_static = 4 * max(scenario.duration_s, static.telemetry.makespan())
    print(
        f"\n{'':16s} {'autoscaled':>12s} {'static peak':>12s}\n"
        f"{'p99 latency':16s} {auto_rep['latency']['p99_s']:>12.3e} "
        f"{static_rep['latency']['p99_s']:>12.3e}\n"
        f"{'SLO attainment':16s} {auto_rep['slo_attainment']:>12.3f} "
        f"{static_rep['slo_attainment']:>12.3f}\n"
        f"{'replica-seconds':16s} {rs_auto:>12.3e} {rs_static:>12.3e}"
    )
    print(
        f"autoscaling served the ramp with "
        f"{rs_auto / rs_static:.0%} of peak provisioning "
        f"(p99 {auto_rep['latency']['p99_s'] / static_rep['latency']['p99_s']:.2f}x)"
    )

    # ------------------------------------------------------------------
    # Priority classes under overload: interactive evicts batch.
    # ------------------------------------------------------------------
    print("\nmixed-priority overload (interactive vs batch, tiny queue):")
    rt = deploy(1, aging=1e6, queue_capacity=64)
    prio = priority_scenario(
        "mlp", rate=4e9, duration=1e-6,
        class_mix={Priority.BATCH: 3.0, Priority.INTERACTIVE: 1.0}, seed=5,
    )
    rt.run(prio, seed=6)
    rep = rt.report(prio, slo_s=SLO_S)
    for cls, label in ((Priority.BATCH, "batch"), (Priority.INTERACTIVE,
                                                   "interactive")):
        stats = rep["per_class"][str(cls)]
        print(
            f"  {label:12s} completed={stats['completed']:5d} "
            f"shed={stats['rejected']:5d} "
            f"slo={stats['slo_attainment']:.3f} "
            f"p99={stats['p99_s']:.3e}s"
        )
    print(f"  evictions (batch shed for interactive): {rep['evicted']}")
    check = max(
        auto_rep["analytic_consistency"]["max_abs_error_s"],
        static_rep["analytic_consistency"]["max_abs_error_s"],
        rep["analytic_consistency"]["max_abs_error_s"],
    )
    print(f"telemetry vs analytic arch model: max drift {check:.1e} s")


if __name__ == "__main__":
    main()
