"""Editable-install shim: all metadata lives in pyproject.toml.

The baked toolchain pins setuptools 65.5, whose PEP 517/660 hooks still
delegate to the ``wheel`` package (``dist_info`` and ``editable_wheel``
both resolve the ``bdist_wheel`` command), but ``wheel`` is not
installed in the active interpreter and there is no network for build
isolation.  The container *does* ship wheel 0.38.4 with the system
python; when the active environment lacks it, borrow that copy via
``sys.path`` and hand the command class to setuptools directly so

    pip install -e . --no-build-isolation

works end to end.  With a modern toolchain (setuptools >= 70, or wheel
installed) the fallback never triggers and this file is a plain
``setup()`` passthrough.
"""

import sys

from setuptools import setup

_SYSTEM_DIST_PACKAGES = "/usr/lib/python3/dist-packages"

try:
    from wheel.bdist_wheel import bdist_wheel
except ImportError:
    if _SYSTEM_DIST_PACKAGES not in sys.path:
        sys.path.append(_SYSTEM_DIST_PACKAGES)
    try:
        from wheel.bdist_wheel import bdist_wheel
    except ImportError:
        bdist_wheel = None

setup(cmdclass={} if bdist_wheel is None else {"bdist_wheel": bdist_wheel})
