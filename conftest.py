"""Repo-wide pytest configuration.

Registers the ``slow`` marker and skips slow-marked tests by default so
the tier-1 suite stays fast.  Run them with ``--runslow`` or
``REPRO_FULL=1``; the explicit benchmark modules under ``benchmarks/``
additionally honour ``REPRO_SMOKE=1`` for a tiny-shape fast pass.
"""

import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="run tests marked @pytest.mark.slow",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running test, skipped unless --runslow/REPRO_FULL=1"
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow") or os.environ.get("REPRO_FULL") == "1":
        return
    skip_slow = pytest.mark.skip(reason="slow: pass --runslow or REPRO_FULL=1")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
