"""Repo-wide pytest configuration.

Registers the ``slow`` marker and skips slow-marked tests by default so
the tier-1 suite stays fast.  Run them with ``--runslow`` or
``REPRO_FULL=1``; the explicit benchmark modules under ``benchmarks/``
additionally honour ``REPRO_SMOKE=1`` for a tiny-shape fast pass.

The serving benchmark scripts (``bench_serving`` / ``bench_autoscale`` /
``bench_continuous``) are also collected **into the default test tier in
smoke mode**: ``bench_*.py`` files do not match pytest's default test
patterns, so without this the scripts only ever ran when someone invoked
them explicitly — an easy way for them to silently rot.  The default
(no-flag) run forces ``REPRO_SMOKE=1`` and pulls the three modules into
collection; committed ``BENCH_*.json`` regeneration stays gated behind
``REPRO_FULL=1`` (which disables the smoke forcing).

The tier-1 suite also carries the static-analysis gate
(``tests/test_checks_gate.py``): ``repro.checks`` runs strict over
``src/`` and relaxed over ``tests/`` + ``benchmarks/``, so determinism /
layering / clock-discipline / hygiene violations fail the plain run —
see ``[tool.repro-checks]`` in ``pyproject.toml``.
"""

import os

import pytest

# Bench scripts exercised (in smoke mode) by the plain test tier.
SMOKE_BENCHES = (
    "bench_serving.py",
    "bench_autoscale.py",
    "bench_continuous.py",
    "bench_prefix.py",
    "bench_resilience.py",
    "bench_observability.py",
    "bench_obs_scale.py",
)


def pytest_addoption(parser):
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="run tests marked @pytest.mark.slow",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running test, skipped unless --runslow/REPRO_FULL=1"
    )
    # Default tier = smoke mode for the bench scripts.  REPRO_FULL=1 (the
    # documented regeneration path) and an explicit REPRO_SMOKE value both
    # take precedence; this only fills the unset default.
    if os.environ.get("REPRO_FULL") != "1":
        os.environ.setdefault("REPRO_SMOKE", "1")


def pytest_collect_file(file_path, parent):
    """Collect the serving bench scripts when smoke mode is active."""
    if (
        file_path.name in SMOKE_BENCHES
        and file_path.parent.name == "benchmarks"
        and os.environ.get("REPRO_SMOKE") == "1"
    ):
        # A bench file named explicitly on the command line is already
        # collected by pytest's own arg handling; collecting it here too
        # would run every test twice.
        explicit = {
            os.path.realpath(a.split("::", 1)[0])
            for a in parent.config.invocation_params.args
            if not str(a).startswith("-")
        }
        if os.path.realpath(str(file_path)) in explicit:
            return None
        return pytest.Module.from_parent(parent, path=file_path)
    return None


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow") or os.environ.get("REPRO_FULL") == "1":
        return
    skip_slow = pytest.mark.skip(reason="slow: pass --runslow or REPRO_FULL=1")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
